"""Tests for the telemetry subsystem.

Covers the counter/gauge/timer registry and its no-op twin, the decision
trace recorder and its canonical JSONL encoding, the acceptance property
that traces are byte-deterministic across serial, sharded, and streaming
executions, trace publication/loading through the integrity envelope and
gc pinning, the instrumented store wrapper (request counts, byte totals,
latency percentiles, retry observation), the ``--log-level`` logging
wiring, and the ``repro-sdpolicy trace`` CLI surface.
"""

from __future__ import annotations

import logging
import pickle

import pytest

from repro.cli import main as cli_main
from repro.experiments.runner import run_workload
from repro.experiments.sweep import (
    ShardedExecutor,
    SweepRunner,
    SweepTask,
    task_cache_key,
)
from repro.store import MemoryStore, StoreError, gc, open_store, unwrap_blob
from repro.store.http_store import HTTPObjectStore
from repro.telemetry import (
    NULL,
    InstrumentedStore,
    NullTelemetry,
    Telemetry,
    TraceError,
    TraceRecorder,
    load_trace,
    publish_trace,
    setup_logging,
    trace_key,
    trace_manifest_name,
)
from repro.telemetry.core import TIMER_STAT_FIELDS, percentile
from repro.telemetry.logs import ENV_LOG_LEVEL
from repro.telemetry.trace import PHASE_FIELDS, parse_trace
from repro.workloads.cirne import CirneWorkloadModel


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=60, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.0, median_runtime_s=1800.0, seed=7, name="telemetry_test",
    ).generate()


# --------------------------------------------------------------------- #
# Registry core
# --------------------------------------------------------------------- #
class TestTelemetryRegistry:
    def test_counters_gauges_timers(self):
        telemetry = Telemetry()
        telemetry.count("requests")
        telemetry.count("requests", 2)
        telemetry.gauge("depth", 4.0)
        telemetry.observe("read", 0.25)
        with telemetry.time("read"):
            pass
        snap = telemetry.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["gauges"] == {"depth": 4.0}
        assert set(snap["timers"]["read"]) == set(TIMER_STAT_FIELDS)
        assert snap["timers"]["read"]["count"] == 2
        assert snap["timers"]["read"]["max"] >= snap["timers"]["read"]["p50"]

    def test_percentile_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile([1.0], 99) == 1.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_null_telemetry_records_nothing(self):
        assert isinstance(NULL, NullTelemetry)
        assert not NULL.enabled
        NULL.count("requests")
        NULL.gauge("depth", 1.0)
        NULL.observe("read", 1.0)
        with NULL.time("read"):
            pass
        snap = NULL.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "timers": {}}
        # the disabled timer is one shared instance — no per-call allocation
        assert NULL.time("a") is NULL.time("b")


# --------------------------------------------------------------------- #
# Recorder + canonical encoding
# --------------------------------------------------------------------- #
class TestTraceRecorder:
    def test_canonical_lines_and_counts(self):
        recorder = TraceRecorder()
        recorder.emit("job_submit", 1.5, job=3, nodes=2, cpus=16, malleable=True)
        recorder.emit("job_end", 9.0, job=3, wait=0.0)
        assert len(recorder) == 2
        assert recorder.counts == {"job_submit": 1, "job_end": 1}
        # sorted keys, no whitespace
        assert recorder.lines[0] == (
            '{"cpus":16,"event":"job_submit","job":3,'
            '"malleable":true,"nodes":2,"t":1.5}'
        )

    def test_non_finite_floats_become_tokens(self):
        recorder = TraceRecorder()
        recorder.emit("backfill_hole", 0.0, job=1, nodes=2, ahead=1,
                      est_start=float("inf"))
        recorder.emit("mate_rejected", 0.0, guest=2, reason="estimate",
                      static_end=float("-inf"), mall_end=float("nan"))
        assert '"est_start":"inf"' in recorder.lines[0]
        assert '"static_end":"-inf"' in recorder.lines[1]
        assert '"mall_end":"nan"' in recorder.lines[1]

    def test_round_trip_through_parse(self):
        recorder = TraceRecorder()
        recorder.meta["label"] = "x"
        recorder.emit("job_end", 2.0, job=1, wait=None)
        meta, events = parse_trace(recorder.to_bytes())
        assert meta == {"label": "x"}
        assert events == [{"event": "job_end", "t": 2.0, "job": 1, "wait": None}]

    def test_parse_rejects_bad_blobs(self):
        with pytest.raises(TraceError, match="empty"):
            parse_trace(b"")
        with pytest.raises(TraceError, match="trace_header"):
            parse_trace(b'{"event":"job_end"}\n')
        with pytest.raises(TraceError, match="not supported"):
            parse_trace(b'{"event":"trace_header","format":99}\n')
        with pytest.raises(TraceError, match="JSONL"):
            parse_trace(b"not json\n")

    def test_recorder_survives_pickle(self):
        recorder = TraceRecorder()
        recorder.emit("job_submit", 0.0, job=1, nodes=1, cpus=8, malleable=False)
        clone = pickle.loads(pickle.dumps(recorder))
        assert clone.to_bytes() == recorder.to_bytes()


# --------------------------------------------------------------------- #
# Emission sites
# --------------------------------------------------------------------- #
class TestTraceEmission:
    def test_lifecycle_events_cover_every_job(self, workload):
        run = run_workload(workload, "static_backfill", trace=True)
        counts = run.trace.counts
        jobs = run.result.num_jobs
        assert counts["job_submit"] == jobs
        assert counts["job_start"] == jobs
        assert counts["job_end"] == jobs

    def test_sd_policy_emits_mate_decisions(self, workload):
        run = run_workload(workload, "sd_policy", trace=True, max_slowdown=10.0)
        counts = run.trace.counts
        stats = run.scheduler_stats
        assert counts.get("mate_selected", 0) == stats["malleable_starts"]
        assert counts.get("mate_rejected", 0) == (
            stats["rejected_by_estimate"] + stats["rejected_no_mates"]
        )
        assert counts.get("mate_candidate", 0) > 0
        # shared starts name their mates
        shared = [
            event for event in parse_trace(run.trace.to_bytes())[1]
            if event["event"] == "job_start" and event["kind"] == "shared"
        ]
        assert shared and all(event["mates"] for event in shared)

    def test_trace_off_by_default(self, workload):
        run = run_workload(workload, "sd_policy", max_slowdown=10.0)
        assert run.trace is None

    def test_phases_populated_either_way(self, workload):
        traced = run_workload(workload, "static_backfill", trace=True)
        plain = run_workload(workload, "static_backfill")
        assert set(traced.phases) == set(plain.phases) == {"simulate", "metrics"}


# --------------------------------------------------------------------- #
# Acceptance: byte determinism across execution modes
# --------------------------------------------------------------------- #
class TestTraceDeterminism:
    def test_serial_sharded_and_streaming_traces_are_byte_identical(
        self, workload
    ):
        tasks = [
            SweepTask(workload=workload, policy="sd_policy", key="sd", seed=0,
                      kwargs={"max_slowdown": 10.0}),
            SweepTask(workload=workload, policy="static_backfill", key="static",
                      seed=0),
        ]
        serial_store = MemoryStore()
        SweepRunner(max_workers=1, store=serial_store, trace=True).run(tasks)
        sharded_store = MemoryStore()
        for i in range(2):
            SweepRunner(
                max_workers=1, store=sharded_store, trace=True,
                executor=ShardedExecutor(i, 2),
            ).run(tasks)
        streaming_store = MemoryStore()
        SweepRunner(max_workers=1, store=streaming_store, trace=True).run(
            [SweepTask(**{**task.__dict__, "kwargs": {**task.kwargs,
                                                      "retain_jobs": False}})
             for task in tasks]
        )
        for task in tasks:
            key = task_cache_key(task)
            serial = unwrap_blob(serial_store.get(trace_key(key)))[0]
            sharded = unwrap_blob(sharded_store.get(trace_key(key)))[0]
            assert serial == sharded
        # retain_jobs changes the cache key but must not change the trace
        # bytes: compare via each store's single manifest per policy label.
        by_label_default = _traces_by_label(serial_store)
        by_label_streaming = _traces_by_label(streaming_store)
        assert by_label_default == by_label_streaming

    def test_run_blob_is_byte_identical_with_and_without_trace(self, workload):
        task = SweepTask(workload=workload, policy="sd_policy", key="sd",
                         seed=0, kwargs={"max_slowdown": 10.0})
        plain_store, traced_store = MemoryStore(), MemoryStore()
        SweepRunner(max_workers=1, store=plain_store).run([task])
        SweepRunner(max_workers=1, store=traced_store, trace=True).run([task])
        key = task_cache_key(task)
        plain_run = pickle.loads(unwrap_blob(plain_store.get(key))[0])["run"]
        traced_run = pickle.loads(unwrap_blob(traced_store.get(key))[0])["run"]
        plain_run.wall_clock_seconds = traced_run.wall_clock_seconds = 0.0
        plain_run.phases = traced_run.phases = {}
        assert pickle.dumps(plain_run) == pickle.dumps(traced_run)
        assert traced_run.trace is None  # stripped before pickling
        # a plain runner consumes the traced runner's entry as a hit
        rerun = SweepRunner(max_workers=1, store=traced_store).run([task])
        assert rerun.cache_hits == 1


def _traces_by_label(store):
    from repro.telemetry import iter_trace_manifests

    out = {}
    for _name, manifest in iter_trace_manifests(store):
        payload = unwrap_blob(store.get(manifest["trace_key"]))[0]
        out[manifest["meta"]["label"]] = payload
    return out


# --------------------------------------------------------------------- #
# Storage: envelopes, discovery, gc pinning, phases
# --------------------------------------------------------------------- #
class TestTraceStorage:
    def test_publish_and_load_round_trip(self):
        store = MemoryStore()
        recorder = TraceRecorder()
        recorder.meta["label"] = "x"
        recorder.emit("job_end", 1.0, job=1, wait=0.0)
        digest = publish_trace(store, "k" * 16, recorder,
                               phases={"simulate": 0.5})
        meta, events = load_trace(store, "k" * 16)
        assert meta == {"label": "x"}
        assert len(events) == 1
        manifest = store.read_manifest(trace_manifest_name("k" * 16))
        assert manifest["kind"] == "trace"
        assert manifest["events"] == 1
        assert manifest["trace_digest"] == digest
        assert manifest["phases"] == {"simulate": 0.5}

    def test_missing_trace_error_suggests_flag(self):
        with pytest.raises(TraceError, match="--trace"):
            load_trace(MemoryStore(), "m" * 16)

    def test_corrupt_trace_blob_is_a_trace_error(self):
        store = MemoryStore()
        recorder = TraceRecorder()
        recorder.emit("job_end", 1.0, job=1, wait=0.0)
        publish_trace(store, "c" * 16, recorder)
        blob = bytearray(store.get(trace_key("c" * 16)))
        blob[-1] ^= 0xFF
        store.put(trace_key("c" * 16), bytes(blob))
        with pytest.raises(TraceError, match="integrity envelope"):
            load_trace(store, "c" * 16)

    def test_gc_keeps_trace_pinned_blobs(self, workload):
        store = MemoryStore()
        task = SweepTask(workload=workload, policy="static_backfill",
                         key="pinned", seed=0)
        SweepRunner(max_workers=1, store=store, trace=True).run([task])
        key = task_cache_key(task)
        gc(store, grace_seconds=0.0)
        assert store.get(key) is not None
        assert store.get(trace_key(key)) is not None

    def test_sweep_entries_carry_phase_timers(self, workload):
        store = MemoryStore()
        task = SweepTask(workload=workload, policy="static_backfill",
                         key="phases", seed=0)
        result = SweepRunner(max_workers=1, store=store, trace=True).run([task])
        assert set(result.entries[0].phases) == set(PHASE_FIELDS)
        assert all(v >= 0.0 for v in result.entries[0].phases.values())
        # cache hits did no work: no phase timings for this invocation
        rerun = SweepRunner(max_workers=1, store=store).run([task])
        assert rerun.entries[0].phases == {}

    def test_trace_requires_store(self):
        with pytest.raises(ValueError, match="result store"):
            SweepRunner(max_workers=1, trace=True)


# --------------------------------------------------------------------- #
# Instrumented store wrapper
# --------------------------------------------------------------------- #
class TestInstrumentedStore:
    def test_counts_requests_bytes_and_latency(self):
        store = InstrumentedStore(MemoryStore())
        store.put("k" * 16, b"payload")
        store.get("k" * 16)
        store.list()
        snap = store.snapshot()
        assert snap["counters"]["requests"] == 3
        assert snap["counters"]["bytes_written"] == len(b"payload")
        assert snap["counters"]["bytes_read"] == len(b"payload")
        assert {"read", "write", "list"} <= set(snap["timers"])
        assert snap["timers"]["read"]["count"] == 1

    def test_wrapper_preserves_store_semantics(self):
        inner = MemoryStore()
        store = InstrumentedStore(inner)
        assert store.url == inner.url
        store.put("k" * 16, b"x")
        assert store.exists("k" * 16)
        assert store.list() == ["k" * 16]
        stats = store.stats()
        assert stats.blobs == 1
        assert store.delete("k" * 16)
        assert store.get("k" * 16) is None

    def test_observes_http_retries(self):
        # Nothing listens on this port: every attempt fails, each retry is
        # observed through the on_retry hook before the backoff sleep.
        inner = HTTPObjectStore("s3+http://127.0.0.1:9/none", timeout=0.2,
                                retries=1)
        store = InstrumentedStore(inner)
        with pytest.raises(StoreError):
            store.get("k" * 16)
        assert store.snapshot()["counters"]["retries"] == 1


# --------------------------------------------------------------------- #
# Logging wiring
# --------------------------------------------------------------------- #
class TestLogging:
    def teardown_method(self):
        setup_logging("warning")

    def test_explicit_level_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG_LEVEL, "error")
        assert setup_logging("debug") == logging.DEBUG
        assert setup_logging(None) == logging.ERROR
        monkeypatch.delenv(ENV_LOG_LEVEL)
        assert setup_logging(None) == logging.WARNING

    def test_unknown_level_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown log level"):
            setup_logging("loud")

    def test_reconfiguring_does_not_stack_handlers(self):
        setup_logging("info")
        setup_logging("info")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert not root.propagate

    def test_cache_hit_logged_at_debug(self, workload, capsys):
        store = MemoryStore()
        task = SweepTask(workload=workload, policy="static_backfill",
                         key="logged", seed=0)
        SweepRunner(max_workers=1, store=store).run([task])
        setup_logging("debug")
        SweepRunner(max_workers=1, store=store).run([task])
        assert "cache hit" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
class TestTraceCLI:
    @pytest.fixture()
    def traced_store(self, workload):
        MemoryStore.reset("tracecli")
        store = open_store("memory://tracecli")
        tasks = [
            SweepTask(workload=workload, policy="sd_policy", key="sd", seed=0,
                      label="MAXSD 10", kwargs={"max_slowdown": 10.0}),
            SweepTask(workload=workload, policy="static_backfill",
                      key="static", seed=0, label="static_backfill"),
        ]
        SweepRunner(max_workers=1, store=store, trace=True).run(tasks)
        yield store
        MemoryStore.reset("tracecli")

    def test_summary_reports_decisions_and_phases(self, traced_store, capsys):
        assert cli_main(["trace", "summary", "--store", traced_store.url]) == 0
        out = capsys.readouterr().out
        assert "decision traces (2 runs" in out
        assert "malleable pairings" in out
        assert "simulate" in out and "store_put" in out

    def test_grep_filters_by_event_and_job(self, traced_store, capsys):
        assert cli_main(["trace", "grep", "--event", "mate_selected",
                         "--store", traced_store.url]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and all('"event":"mate_selected"' in line for line in lines)

    def test_timeline_mentions_job(self, traced_store, capsys):
        assert cli_main(["trace", "timeline", "--job", "1",
                         "--store", traced_store.url]) == 0
        out = capsys.readouterr().out
        assert "job 1" in out
        assert "run " in out

    def test_query_phases_table(self, traced_store, capsys):
        assert cli_main(["query", "--phases",
                         "--store", traced_store.url]) == 0
        out = capsys.readouterr().out
        assert "phase timers (2 runs)" in out
        assert "simulate" in out

    def test_empty_store_is_a_clean_error(self, capsys):
        MemoryStore.reset("tracecli-empty")
        code = cli_main(["trace", "summary", "--store", "memory://tracecli-empty"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no decision traces" in captured.err
        MemoryStore.reset("tracecli-empty")

    def test_store_stats_reports_requests(self, traced_store, capsys):
        assert cli_main(["store", "stats", traced_store.url]) == 0
        out = capsys.readouterr().out
        assert "requests:    1" in out
        assert "latency:     list" in out
