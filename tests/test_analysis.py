"""Tests for comparisons, table formatting and text figures."""

from __future__ import annotations

import math

import pytest

from repro.analysis.comparison import improvement_percent, normalize_to_baseline
from repro.analysis.figures import render_bar_chart, render_heatmap, render_series
from repro.analysis.tables import format_table, metrics_table
from repro.metrics.aggregates import compute_metrics
from repro.metrics.heatmap import category_heatmap
from tests.test_metrics import finished_job


@pytest.fixture
def sample_metrics():
    fast = compute_metrics([finished_job(1, submit=0.0, start=0.0, runtime=100.0)])
    slow = compute_metrics([finished_job(1, submit=0.0, start=100.0, runtime=100.0)])
    return fast, slow


class TestComparison:
    def test_normalize(self, sample_metrics):
        fast, slow = sample_metrics
        normalized = normalize_to_baseline(fast, slow)
        assert normalized["avg_slowdown"] == pytest.approx(0.5)
        assert normalized["avg_response_time"] == pytest.approx(0.5)

    def test_improvement_percent(self, sample_metrics):
        fast, slow = sample_metrics
        improvements = improvement_percent(fast, slow, keys=("avg_slowdown",))
        assert improvements["avg_slowdown"] == pytest.approx(50.0)

    def test_zero_baseline_gives_nan(self, sample_metrics):
        fast, _ = sample_metrics
        normalized = normalize_to_baseline(fast, {"makespan": 0.0}, keys=("makespan",))
        assert math.isnan(normalized["makespan"])

    def test_dict_inputs_accepted(self):
        normalized = normalize_to_baseline({"makespan": 50.0}, {"makespan": 100.0},
                                           keys=("makespan",))
        assert normalized["makespan"] == 0.5


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_nan_rendered_as_dash(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_metrics_table(self):
        metrics = compute_metrics([finished_job(1)])
        text = metrics_table({"static": metrics, "sd": metrics})
        assert "static" in text and "sd" in text
        assert "avg_slowdown" in text


class TestFigures:
    def test_bar_chart_contains_labels_and_baseline(self):
        chart = render_bar_chart({"MAXSD 10": 0.5, "DynAVGSD": 0.8}, title="fig")
        assert "MAXSD 10" in chart
        assert "baseline" in chart
        assert "#" in chart

    def test_bar_chart_handles_nan(self):
        chart = render_bar_chart({"x": float("nan")})
        assert "(n/a)" in chart

    def test_bar_chart_empty(self):
        assert "(no data)" in render_bar_chart({}, title="empty")

    def test_heatmap_render_skips_empty_rows(self):
        grid = category_heatmap([finished_job(1, nodes=1, runtime=100.0)])
        text = render_heatmap(grid, title="hm")
        assert "hm" in text
        assert "1 nodes" in text
        # Only one populated node-bin row plus header lines.
        assert len(text.splitlines()) == 4

    def test_series_render(self):
        rows = [{"day": 0, "a": 1.0, "b": 2.0}, {"day": 1, "a": 3.0, "b": 4.0}]
        text = render_series(rows, x_key="day", series_keys=("a", "b"), title="s")
        assert "day" in text and "a" in text
        assert len(text.splitlines()) == 5
