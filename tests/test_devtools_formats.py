"""Tests for the format-discipline checker (``repro.devtools.formats``).

The contract under test: every persisted schema is fingerprinted into the
committed ``formats.lock``; changing a schema's field layout without
bumping its paired format-version constant fails the check with
``changed-no-bump``, while a layout change *with* a bump reads as a stale
lock (refresh with ``--update``).  The declared field tuples
(``MANIFEST_FIELDS``, ``CACHE_PAYLOAD_FIELDS``, …) are additionally pinned
against the bytes a real sweep writes, so the fingerprints cannot drift
away from reality.
"""

import copy
import dataclasses
import json
import pickle
from pathlib import Path

import pytest

from repro.analytics.store import ANALYTICS_MANIFEST_FIELDS
from repro.devtools import formats
from repro.experiments.executors import (
    MANIFEST_DIR_NAME,
    MANIFEST_FIELDS,
    MANIFEST_TASK_FIELDS,
    ShardedExecutor,
)
from repro.experiments.sweep import CACHE_PAYLOAD_FIELDS, SweepRunner, SweepTask
from repro.store import unwrap_blob
from repro.workloads.cirne import CirneWorkloadModel

REPO_ROOT = Path(__file__).resolve().parent.parent
LOCK_PATH = REPO_ROOT / "formats.lock"


# --------------------------------------------------------------------- #
# The committed lock matches the tree
# --------------------------------------------------------------------- #
class TestCommittedLock:
    def test_lock_exists_and_passes(self):
        locked = formats.load_lock(LOCK_PATH)
        problems = formats.check_lock(locked, formats.snapshot())
        assert problems == [], "\n".join(p["message"] for p in problems)

    def test_lock_covers_every_registered_schema(self):
        locked = formats.load_lock(LOCK_PATH)
        assert set(locked) == {spec.name for spec in formats.SCHEMAS}

    def test_cli_check_passes(self, capsys):
        assert formats.main(["--lock", str(LOCK_PATH)]) == 0
        assert "ok" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Drift semantics
# --------------------------------------------------------------------- #
class TestCheckSemantics:
    def test_layout_change_without_bump_fails(self):
        locked = formats.load_lock(LOCK_PATH)
        current = copy.deepcopy(formats.snapshot())
        current["cache/PolicyRun"]["fingerprint"] = "sha256:deadbeefdeadbeef"
        problems = formats.check_lock(locked, current)
        assert [p["kind"] for p in problems] == ["changed-no-bump"]
        assert "bump the version constant" in problems[0]["message"]

    def test_layout_change_with_bump_is_stale_lock(self):
        locked = formats.load_lock(LOCK_PATH)
        current = copy.deepcopy(formats.snapshot())
        entry = current["cache/PolicyRun"]
        entry["fingerprint"] = "sha256:deadbeefdeadbeef"
        entry["version"] = entry["version"] + 1
        problems = formats.check_lock(locked, current)
        assert [p["kind"] for p in problems] == ["stale-lock"]
        assert "--update" in problems[0]["message"]

    def test_registry_lock_disagreement(self):
        locked = formats.load_lock(LOCK_PATH)
        current = copy.deepcopy(formats.snapshot())
        current["records/brand-new"] = dict(current["cache/PolicyRun"])
        extra = copy.deepcopy(locked)
        extra["records/retired"] = dict(locked["cache/PolicyRun"])
        kinds = {p["kind"] for p in formats.check_lock(extra, current)}
        assert kinds == {"new-schema", "removed-schema"}

    def test_dataclass_field_change_changes_fingerprint(self):
        @dataclasses.dataclass
        class Before:
            alpha: int
            beta: str

        @dataclasses.dataclass
        class After:
            alpha: int
            beta: str
            gamma: float

        @dataclasses.dataclass
        class Retyped:
            alpha: int
            beta: bytes

        before = formats.fingerprint_schema("dataclass", Before)
        assert before != formats.fingerprint_schema("dataclass", After)
        assert before != formats.fingerprint_schema("dataclass", Retyped)

    def test_field_tuple_order_matters(self):
        first = formats.fingerprint_schema("fields", ("a", "b"))
        assert first != formats.fingerprint_schema("fields", ("b", "a"))

    def test_update_roundtrip(self, tmp_path, capsys):
        lock = tmp_path / "formats.lock"
        assert formats.main(["--lock", str(lock), "--update"]) == 0
        assert formats.main(["--lock", str(lock)]) == 0
        capsys.readouterr()

    def test_missing_lock_is_invocation_error(self, tmp_path, capsys):
        assert formats.main(["--lock", str(tmp_path / "absent.lock")]) == 2
        assert "--update" in capsys.readouterr().err

    def test_json_report(self, capsys):
        assert formats.main(["--lock", str(LOCK_PATH), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["problems"] == []


# --------------------------------------------------------------------- #
# Declared field tuples match the bytes a real sweep writes
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def sharded_sweep(tmp_path_factory):
    cache = tmp_path_factory.mktemp("formats_cache")
    workload = CirneWorkloadModel(
        num_jobs=12, system_nodes=8, cpus_per_node=4, max_job_nodes=4,
        target_load=1.0, median_runtime_s=600.0, seed=3, name="formats_test",
    ).generate()
    tasks = [
        SweepTask(workload=workload, policy="static_backfill", key="static",
                  seed=0, kwargs={"runtime_model": "ideal"}),
        SweepTask(workload=workload, policy="sd_policy", key="MAXSD 10",
                  seed=0, kwargs={"runtime_model": "ideal",
                                  "max_slowdown": 10.0,
                                  "sharing_factor": 0.5}),
    ]
    runner = SweepRunner(
        max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 1)
    )
    runner.run(tasks)
    return cache


class TestDeclaredFieldsMatchReality:
    def test_manifest_fields_match_real_manifest(self, sharded_sweep):
        manifest_files = sorted(
            (sharded_sweep / MANIFEST_DIR_NAME).glob("*.json")
        )
        assert manifest_files
        manifest = json.loads(manifest_files[0].read_text(encoding="utf-8"))
        assert set(manifest) == set(MANIFEST_FIELDS)
        for record in manifest["tasks"]:
            assert set(record) <= set(MANIFEST_TASK_FIELDS)
            # everything except the optional local cache_path is mandatory
            assert set(record) >= set(MANIFEST_TASK_FIELDS) - {"cache_path"}

    def test_cache_payload_fields_match_real_blob(self, sharded_sweep):
        blobs = sorted(sharded_sweep.glob("*.pkl"))
        assert blobs
        payload_bytes, _ = unwrap_blob(blobs[0].read_bytes())
        payload = pickle.loads(payload_bytes)
        assert tuple(payload) == CACHE_PAYLOAD_FIELDS

    def test_analytics_manifest_fields_are_registered(self):
        spec = {s.name: s for s in formats.SCHEMAS}[
            "records/analytics-manifest-fields"
        ]
        assert spec.kind == "fields"
        assert formats.fingerprint_schema(
            "fields", ANALYTICS_MANIFEST_FIELDS
        ) == formats.snapshot()[spec.name]["fingerprint"]
