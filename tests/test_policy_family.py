"""Tests for the pluggable co-scheduling policy family.

Covers the promoted profile/contention layer (and its parity with the
historical ``realrun`` import path), the policy registry, the
contention-aware UB-Policy — including the pinned regression that it
refuses bandwidth-oversubscribed pairings, visible through the decision
trace — and the ``policy_faceoff`` built-in scenario's determinism across
serial and sharded execution.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.contention import (
    DEFAULT_CONTENTION_COEFFICIENT,
    DEFAULT_NODE_BANDWIDTH_CAPACITY,
    ApplicationAwareRuntimeModel,
    ContentionModel,
    co_run_slowdown,
)
from repro.core.policy import (
    CoSchedulingPolicy,
    available_policies,
    make_policy,
    policy_accepts_profiles,
    resolve_policy_name,
)
from repro.core.profiles import (
    APPLICATIONS,
    DEFAULT_APPLICATION,
    PROFILE_SET_NAMES,
    get_profile_set,
    lookup_application,
)
from repro.core.runtime_model import get_model
from repro.core.sd_policy import SDPolicyScheduler
from repro.core.ub_policy import UBPolicyConfig, UBPolicyScheduler
from repro.experiments.runner import make_scheduler, run_workload
from repro.experiments.scenario import (
    ScenarioError,
    WorkloadRef,
    builtin_scenario,
    render_report,
)
from repro.experiments.sweep import (
    MergeExecutor,
    ShardedExecutor,
    SweepRunner,
    fingerprint_workload,
)
from repro.workloads.applications import assign_applications
from repro.workloads.presets import build_workload


# --------------------------------------------------------------------- #
# Parity: the realrun import path IS the promoted core layer
# --------------------------------------------------------------------- #
class TestRealrunParity:
    def test_apps_shim_reexports_core_objects(self):
        from repro.realrun import apps

        assert apps.APPLICATIONS is APPLICATIONS
        assert apps.DEFAULT_APPLICATION is DEFAULT_APPLICATION
        from repro.core.profiles import ApplicationModel, get_application

        assert apps.ApplicationModel is ApplicationModel
        assert apps.get_application is get_application

    def test_interference_shim_reexports_core_objects(self):
        from repro.realrun import interference

        assert interference.co_run_slowdown is co_run_slowdown
        assert interference.ContentionModel is ContentionModel
        assert (
            interference.ApplicationAwareRuntimeModel is ApplicationAwareRuntimeModel
        )
        assert (
            interference.DEFAULT_CONTENTION_COEFFICIENT
            is DEFAULT_CONTENTION_COEFFICIENT
        )

    @given(
        name=st.sampled_from(sorted(APPLICATIONS) + ["generic", "unknown"]),
        intensities=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=6
        ),
        coeff=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_dilation_parity_bit_identical(self, name, intensities, coeff):
        """Emulator-path and core-path dilations agree bit-for-bit."""
        from repro.realrun.apps import get_application as emulator_lookup
        from repro.realrun.interference import co_run_slowdown as emulator_slowdown

        app = emulator_lookup(name)
        emulated = emulator_slowdown(app, intensities, coeff)
        promoted = ContentionModel(contention_coefficient=coeff).slowdown(
            lookup_application(name), intensities
        )
        assert emulated == promoted  # bit-identical, not approx

    def test_emulator_model_is_core_model(self):
        # The emulator's runtime model consults the same ContentionModel
        # class the schedulers do; defaults agree with the realrun-era ones.
        model = ApplicationAwareRuntimeModel()
        assert isinstance(model.contention, ContentionModel)
        assert model.contention_coefficient == DEFAULT_CONTENTION_COEFFICIENT
        assert (
            model.contention.node_bandwidth_capacity
            == DEFAULT_NODE_BANDWIDTH_CAPACITY
        )


# --------------------------------------------------------------------- #
# Profiles and profile sets
# --------------------------------------------------------------------- #
class TestProfileSets:
    def test_table2_set_is_the_applications_table(self):
        assert get_profile_set("table2") is APPLICATIONS

    def test_uniform_set_neutralises_every_label(self):
        uniform = get_profile_set("uniform")
        assert lookup_application("STREAM", uniform) is DEFAULT_APPLICATION

    def test_unknown_set_error_names_candidates(self):
        with pytest.raises(ValueError, match="available: table2, uniform"):
            get_profile_set("mystery")

    def test_set_names_fingerprint_stable(self):
        assert PROFILE_SET_NAMES == ("table2", "uniform")


# --------------------------------------------------------------------- #
# The policy registry
# --------------------------------------------------------------------- #
class TestPolicyRegistry:
    def test_available_policies(self):
        assert available_policies() == (
            "fcfs",
            "sd_policy",
            "static_backfill",
            "ub_policy",
        )

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("backfill", "static_backfill"),
            ("static", "static_backfill"),
            ("sd", "sd_policy"),
            ("sdpolicy", "sd_policy"),
            ("ub", "ub_policy"),
            ("uberun", "ub_policy"),
            ("sd_policy", "sd_policy"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_policy_name(alias) == canonical

    def test_unknown_policy_error_names_available(self):
        with pytest.raises(ValueError, match="available: fcfs, sd_policy"):
            make_policy("slurm")

    def test_only_ub_accepts_profiles(self):
        flagged = [n for n in available_policies() if policy_accepts_profiles(n)]
        assert flagged == ["ub_policy"]

    def test_malleable_policies_satisfy_protocol(self):
        # The protocol is the *co-scheduling* surface: SD/UB implement it,
        # while the rigid schedulers are registry members without it.
        assert isinstance(make_policy("sd_policy"), CoSchedulingPolicy)
        assert isinstance(make_policy("ub_policy"), CoSchedulingPolicy)
        assert not isinstance(make_policy("fcfs"), CoSchedulingPolicy)

    def test_make_scheduler_delegates_to_registry(self):
        scheduler = make_scheduler("uberun", max_slowdown=10.0)
        assert isinstance(scheduler, UBPolicyScheduler)

    def test_unknown_runtime_model_error_names_available(self):
        with pytest.raises(ValueError, match="available:.*ideal.*worst_case"):
            get_model("quantum")


# --------------------------------------------------------------------- #
# UB-Policy behaviour
# --------------------------------------------------------------------- #
class TestUBPolicy:
    def test_config_builds_contention_model(self):
        config = UBPolicyConfig(node_bandwidth_capacity=1.1)
        contention = config.build_contention()
        assert isinstance(contention, ContentionModel)
        assert contention.node_bandwidth_capacity == 1.1

    def test_is_an_sd_policy_refinement(self):
        scheduler = make_policy("ub_policy")
        assert isinstance(scheduler, SDPolicyScheduler)
        assert scheduler.name.startswith("ub_policy[")
        assert "BW=1.4" in scheduler.name

    def test_selector_carries_contention(self):
        scheduler = make_policy("ub_policy")
        assert scheduler.selector.contention is not None
        assert make_policy("sd_policy").selector.contention is None

    def test_uniform_profiles_neutralise_bandwidth_check(self):
        # Under the uniform set every job demands 0.3: no pair (0.6) can
        # oversubscribe the 1.4 node, so UB degenerates to SD.
        scheduler = make_policy("ub_policy", profiles="uniform")
        contention = scheduler.selector.contention
        stream = contention.application("STREAM")
        assert contention.bandwidth_feasible([stream, stream])


class TestUBPolicyRefusalRegression:
    """Pinned regression: UB-Policy refuses oversubscribed pairings.

    Workload 3 (scale 0.01, seed 0) with the Table 2 application mix is
    deterministic, so the decision counts are exact pins, not tolerances.
    """

    @pytest.fixture(scope="class")
    def workload(self):
        return assign_applications(build_workload(3, scale=0.01, seed=0))

    @pytest.fixture(scope="class")
    def runs(self, workload):
        return {
            policy: run_workload(
                workload,
                policy,
                runtime_model="application_aware",
                power_model=None,
                seed=0,
                trace=True,
            )
            for policy in ("sd_policy", "ub_policy")
        }

    def test_ub_refuses_bandwidth_oversubscribed_pairings(self, runs):
        stats = runs["ub_policy"].scheduler_stats
        assert stats["rejected_bandwidth"] == 84
        assert stats["malleable_starts"] == 8
        # SD-Policy has no bandwidth notion and pairs more aggressively.
        sd_stats = runs["sd_policy"].scheduler_stats
        assert "rejected_bandwidth" not in sd_stats
        assert sd_stats["malleable_starts"] == 15

    def test_bandwidth_reason_lands_in_trace(self, runs):
        reasons = {}
        for line in runs["ub_policy"].trace.lines:
            record = json.loads(line)
            if record["event"] == "mate_rejected":
                reasons[record["reason"]] = reasons.get(record["reason"], 0) + 1
        assert reasons == {"no_mates": 14, "estimate": 5, "bandwidth": 84}

    def test_refusals_visible_in_trace_summary(self, workload):
        from repro.experiments.sweep import SweepTask
        from repro.store import open_store
        from repro.telemetry.report import trace_summary

        store = open_store("memory://ub-refusal")
        task = SweepTask(
            workload=workload,
            policy="ub_policy",
            key="w3::ub",
            label="ub",
            kwargs={"runtime_model": "application_aware", "power_model": None},
        )
        SweepRunner(max_workers=1, store=store, trace=True).run([task])
        summary = trace_summary(store)
        assert "rejected:" in summary
        assert "bandwidth 84" in summary


# --------------------------------------------------------------------- #
# The policy_faceoff scenario
# --------------------------------------------------------------------- #
class TestPolicyFaceoff:
    def test_workload_ref_applications_round_trip(self):
        ref = WorkloadRef(preset=3, scale=0.01, applications="table2")
        data = ref.to_dict()
        assert data["applications"] == "table2"
        assert WorkloadRef.from_dict(data) == ref
        assert "applications" not in WorkloadRef(preset=3).to_dict()

    def test_unknown_mix_rejected(self):
        ref = WorkloadRef(preset=3, scale=0.01, applications="table3")
        with pytest.raises(ScenarioError, match="unknown application mix"):
            ref.build()

    def test_stamped_mix_changes_the_workload_fingerprint(self):
        plain = build_workload(3, scale=0.01, seed=0)
        stamped = assign_applications(plain)
        assert fingerprint_workload(stamped) != fingerprint_workload(plain)

    def test_spec_round_trips_through_json(self):
        spec = builtin_scenario("policy_faceoff", scale=0.01)
        again = type(spec).from_json(spec.to_json())
        assert again.to_dict() == spec.to_dict()
        assert [ref.applications for ref in again.workloads] == ["table2"] * 4

    def test_serial_and_sharded_reports_byte_identical(self, tmp_path):
        spec = builtin_scenario("policy_faceoff", scale=0.005, workload_ids=(3,))
        store = f"file://{tmp_path / 'store'}"
        serial = spec.execute(runner=SweepRunner(max_workers=1, store=store))
        assert serial.complete
        report = render_report(serial)
        assert "Who wins where" in report
        assert "ub_policy" in report
        assert "rejected_bandwidth" in report

        shard_store = f"file://{tmp_path / 'shards'}"
        for i in range(2):
            spec.execute(
                runner=SweepRunner(
                    max_workers=1, store=shard_store, executor=ShardedExecutor(i, 2)
                )
            )
        merged = spec.execute(
            runner=SweepRunner(
                max_workers=1, store=shard_store, executor=MergeExecutor()
            )
        )
        assert merged.complete
        assert render_report(merged) == report
