"""Tests for the SharingFactor node-splitting rules."""

from __future__ import annotations

import pytest

from repro.core.sharing import (
    guest_fraction_of_request,
    guest_share_of_node,
    plan_node_sharing,
)
from repro.simulator.node import Node
from tests.conftest import make_job


@pytest.fixture
def node():
    return Node(0, sockets=2, cores_per_socket=24)  # 48-core MN4-like node


class TestGuestShare:
    def test_half_of_node(self):
        assert guest_share_of_node(48, 0.5) == 24

    def test_quarter_of_node(self):
        assert guest_share_of_node(48, 0.25) == 12

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            guest_share_of_node(48, 0.0)
        with pytest.raises(ValueError):
            guest_share_of_node(48, 1.0)


class TestPlanNodeSharing:
    def test_even_split_at_half(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        plan = plan_node_sharing(node, mate, guest, 0.5)
        assert plan is not None
        assert plan.mate_cpus == 24
        assert plan.guest_cpus == 24
        assert plan.total == 48

    def test_sharing_factor_limits_take(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        plan = plan_node_sharing(node, mate, guest, 0.25)
        assert plan.guest_cpus == 12
        assert plan.mate_cpus == 36

    def test_mate_keeps_one_cpu_per_rank(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, tasks_per_node=30)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        plan = plan_node_sharing(node, mate, guest, 0.5)
        # The mate can only give up 18 CPUs (48 - 30 ranks).
        assert plan.mate_cpus == 30
        assert plan.guest_cpus == 18

    def test_infeasible_when_mate_cannot_shrink(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, tasks_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        assert plan_node_sharing(node, mate, guest, 0.5) is None

    def test_infeasible_when_mate_not_on_node(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        assert plan_node_sharing(node, mate, guest, 0.5) is None

    def test_free_cpus_top_up_guest(self, node):
        # The mate only holds half the node; the free half also goes to the guest.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 24)
        plan = plan_node_sharing(node, mate, guest, 0.5)
        assert plan.guest_cpus == 24 + 23  # 23 taken from mate (keeps 1 rank) + 24 free
        assert plan.mate_cpus == 1

    def test_guest_rank_minimum_respected(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, tasks_per_node=47)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48, tasks_per_node=8)
        node.allocate(1, 48)
        # Mate can give only 1 CPU, guest needs at least 8.
        assert plan_node_sharing(node, mate, guest, 0.5) is None


class TestGuestFraction:
    def test_fraction_of_request(self):
        guest = make_job(nodes=2, cpus_per_node=48)
        assert guest_fraction_of_request(guest, 48) == pytest.approx(0.5)

    def test_fraction_capped_at_one(self):
        guest = make_job(nodes=1, cpus_per_node=48)
        assert guest_fraction_of_request(guest, 96) == 1.0
