"""Tests for the SharingFactor node-splitting rules."""

from __future__ import annotations

import pytest

from repro.core.contention import ContentionModel
from repro.core.sharing import (
    guest_fraction_of_request,
    guest_share_of_node,
    plan_node_sharing,
)
from repro.simulator.node import Node
from tests.conftest import make_job


@pytest.fixture
def node():
    return Node(0, sockets=2, cores_per_socket=24)  # 48-core MN4-like node


class TestGuestShare:
    def test_half_of_node(self):
        assert guest_share_of_node(48, 0.5) == 24

    def test_quarter_of_node(self):
        assert guest_share_of_node(48, 0.25) == 12

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            guest_share_of_node(48, 0.0)
        with pytest.raises(ValueError):
            guest_share_of_node(48, 1.0)


class TestPlanNodeSharing:
    def test_even_split_at_half(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        plan = plan_node_sharing(node, mate, guest, 0.5)
        assert plan is not None
        assert plan.mate_cpus == 24
        assert plan.guest_cpus == 24
        assert plan.total == 48

    def test_sharing_factor_limits_take(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        plan = plan_node_sharing(node, mate, guest, 0.25)
        assert plan.guest_cpus == 12
        assert plan.mate_cpus == 36

    def test_mate_keeps_one_cpu_per_rank(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, tasks_per_node=30)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        plan = plan_node_sharing(node, mate, guest, 0.5)
        # The mate can only give up 18 CPUs (48 - 30 ranks).
        assert plan.mate_cpus == 30
        assert plan.guest_cpus == 18

    def test_infeasible_when_mate_cannot_shrink(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, tasks_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        assert plan_node_sharing(node, mate, guest, 0.5) is None

    def test_infeasible_when_mate_not_on_node(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        assert plan_node_sharing(node, mate, guest, 0.5) is None

    def test_free_cpus_top_up_guest(self, node):
        # The mate only holds half the node; the free half also goes to the guest.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 24)
        plan = plan_node_sharing(node, mate, guest, 0.5)
        assert plan.guest_cpus == 24 + 23  # 23 taken from mate (keeps 1 rank) + 24 free
        assert plan.mate_cpus == 1

    def test_guest_rank_minimum_respected(self, node):
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, tasks_per_node=47)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48, tasks_per_node=8)
        node.allocate(1, 48)
        # Mate can give only 1 CPU, guest needs at least 8.
        assert plan_node_sharing(node, mate, guest, 0.5) is None


class TestPlanNodeSharingEdges:
    def test_zero_cpu_guest_share_infeasible(self, node):
        # A factor small enough that the guest's share truncates to zero
        # CPUs: with the node fully owned there is nothing to top up from,
        # so no plan exists.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        assert guest_share_of_node(48, 0.02) == 0
        assert plan_node_sharing(node, mate, guest, 0.02) is None

    def test_sharing_factor_bounds_rejected(self, node):
        # The open interval (0, 1) is enforced at the bounds themselves.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48)
        node.allocate(1, 48)
        for factor in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                plan_node_sharing(node, mate, guest, factor)


class TestBandwidthFeasibility:
    def test_oversubscribed_pair_rejected(self, node):
        # STREAM + CoreNeuron demand 0.95 + 0.55 = 1.5 > 1.4 capacity.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, application="STREAM")
        guest = make_job(
            job_id=2, nodes=1, cpus_per_node=48, application="CoreNeuron"
        )
        node.allocate(1, 48)
        assert plan_node_sharing(node, mate, guest, 0.5) is not None
        assert (
            plan_node_sharing(node, mate, guest, 0.5, contention=ContentionModel())
            is None
        )

    def test_feasible_pair_matches_no_contention_plan(self, node):
        # STREAM + PILS demand 0.95 + 0.10 = 1.05 <= 1.4: the plan must be
        # identical to the historical no-contention split.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, application="STREAM")
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48, application="PILS")
        node.allocate(1, 48)
        plain = plan_node_sharing(node, mate, guest, 0.5)
        checked = plan_node_sharing(node, mate, guest, 0.5, contention=ContentionModel())
        assert checked == plain
        assert checked.mate_cpus == 24 and checked.guest_cpus == 24

    def test_capacity_override_admits_pair(self, node):
        # STREAM + STREAM (1.9) fits a node with 2.0 bandwidth capacity.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48, application="STREAM")
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48, application="STREAM")
        node.allocate(1, 48)
        roomy = ContentionModel(node_bandwidth_capacity=2.0)
        assert plan_node_sharing(node, mate, guest, 0.5, contention=ContentionModel()) is None
        assert plan_node_sharing(node, mate, guest, 0.5, contention=roomy) is not None

    def test_unknown_application_uses_default_profile(self, node):
        # Jobs with no (or unknown) application fall back to the generic
        # profile (memory_intensity 0.3): 0.6 combined, always feasible.
        mate = make_job(job_id=1, nodes=1, cpus_per_node=48)
        guest = make_job(job_id=2, nodes=1, cpus_per_node=48, application="mystery")
        node.allocate(1, 48)
        assert (
            plan_node_sharing(node, mate, guest, 0.5, contention=ContentionModel())
            is not None
        )


class TestGuestFraction:
    def test_fraction_of_request(self):
        guest = make_job(nodes=2, cpus_per_node=48)
        assert guest_fraction_of_request(guest, 48) == pytest.approx(0.5)

    def test_fraction_capped_at_one(self):
        guest = make_job(nodes=1, cpus_per_node=48)
        assert guest_fraction_of_request(guest, 96) == 1.0
