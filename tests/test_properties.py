"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import io
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.runtime_model import IdealRuntimeModel, WorstCaseRuntimeModel
from repro.core.sharing import plan_node_sharing
from repro.metrics.heatmap import category_heatmap
from repro.nodemanager.affinity import distribute_cpus, isolation_score
from repro.simulator.node import Node
from repro.simulator.reservation import ReservationMap
from repro.workloads.job_record import JobRecord, Workload
from repro.workloads.swf import read_swf, write_swf
from tests.conftest import make_job
from tests.test_metrics import finished_job

# --------------------------------------------------------------------- #
# Affinity distribution
# --------------------------------------------------------------------- #
cpu_requests = st.dictionaries(
    keys=st.integers(min_value=1, max_value=20),
    values=st.integers(min_value=1, max_value=16),
    min_size=1,
    max_size=6,
)


@given(requests=cpu_requests, sockets=st.integers(1, 4), cores=st.integers(4, 16))
@settings(max_examples=80, suppress_health_check=[HealthCheck.filter_too_much])
def test_distribute_cpus_exact_and_disjoint(requests, sockets, cores):
    total = sockets * cores
    if sum(requests.values()) > total:
        return  # infeasible request: covered by the explicit error test
    assignments = distribute_cpus(requests, sockets=sockets, cores_per_socket=cores)
    seen = set()
    for job_id, cpus in requests.items():
        assignment = assignments[job_id]
        assert assignment.num_cores == cpus
        assert seen.isdisjoint(assignment.cores)
        assert all(0 <= c < total for c in assignment.cores)
        seen.update(assignment.cores)
    assert 0.0 <= isolation_score(assignments, cores) <= 1.0


@given(sockets=st.integers(1, 4), cores=st.integers(2, 32))
@settings(max_examples=40)
def test_two_half_node_jobs_are_socket_isolated(sockets, cores):
    half = sockets * cores // 2
    if half == 0:
        return
    assignments = distribute_cpus({1: half, 2: sockets * cores - half},
                                  sockets=sockets, cores_per_socket=cores)
    overlap = set(assignments[1].cores) & set(assignments[2].cores)
    assert not overlap


# --------------------------------------------------------------------- #
# Runtime models
# --------------------------------------------------------------------- #
allocations = st.dictionaries(
    keys=st.integers(0, 7), values=st.integers(1, 48), min_size=1, max_size=8
)


@given(cpus=allocations, nodes=st.integers(1, 8))
@settings(max_examples=100)
def test_runtime_model_speed_bounds_and_ordering(cpus, nodes):
    job = make_job(nodes=nodes, cpus_per_node=48)
    ideal = IdealRuntimeModel().speed(job, cpus)
    worst = WorstCaseRuntimeModel().speed(job, cpus)
    assert 0.0 <= worst <= ideal <= 1.0


@given(base=st.floats(1.0, 1e6), fraction=st.floats(0.01, 1.0))
@settings(max_examples=100)
def test_dilated_runtime_never_shorter(base, fraction):
    model = WorstCaseRuntimeModel()
    dilated = model.dilated_runtime(base, fraction)
    assert dilated >= base * 0.999999
    assert model.shrink_increase(base, fraction) >= 0.0


@given(duration=st.floats(0.0, 1e6), kept=st.floats(0.0, 1.0))
@settings(max_examples=100)
def test_mate_increase_bounded_by_duration(duration, kept):
    increase = IdealRuntimeModel().mate_increase(duration, kept)
    assert 0.0 <= increase <= duration + 1e-9


# --------------------------------------------------------------------- #
# Sharing plans
# --------------------------------------------------------------------- #
@given(
    mate_cpus=st.integers(1, 48),
    factor=st.floats(0.05, 0.95),
    mate_ranks=st.integers(1, 8),
    guest_ranks=st.integers(1, 8),
)
@settings(max_examples=100)
def test_sharing_plan_respects_capacity_and_minimums(mate_cpus, factor, mate_ranks, guest_ranks):
    node = Node(0, sockets=2, cores_per_socket=24)
    mate = make_job(job_id=1, cpus_per_node=48, tasks_per_node=mate_ranks)
    guest = make_job(job_id=2, cpus_per_node=48, tasks_per_node=guest_ranks)
    node.allocate(1, mate_cpus)
    plan = plan_node_sharing(node, mate, guest, factor)
    if plan is None:
        return
    assert plan.mate_cpus >= mate.min_cpus_per_node
    assert plan.guest_cpus >= guest.min_cpus_per_node
    assert plan.total <= node.total_cpus
    assert plan.mate_cpus + plan.guest_cpus <= mate_cpus + node.free_cpus


# --------------------------------------------------------------------- #
# Reservation map
# --------------------------------------------------------------------- #
release_lists = st.lists(
    st.tuples(st.floats(0.0, 1e5), st.integers(1, 16)), min_size=0, max_size=12
)


@given(free=st.integers(0, 16), releases=release_lists, needed=st.integers(1, 16),
       duration=st.floats(1.0, 1e4))
@settings(max_examples=100)
def test_reservation_earliest_start_is_consistent(free, releases, needed, duration):
    profile = ReservationMap(total_nodes=16, now=0.0, free_now=free, releases=releases)
    start = profile.earliest_start(needed, duration)
    if math.isfinite(start):
        assert start >= 0.0
        # At the chosen start the profile must actually offer enough nodes.
        assert profile.free_nodes_at(start) >= needed
    # More nodes can never become available earlier.
    bigger = profile.earliest_start(min(16, needed + 1), duration)
    assert bigger >= start


@given(free=st.integers(0, 16), releases=release_lists)
@settings(max_examples=60)
def test_reservation_free_counts_within_bounds(free, releases):
    profile = ReservationMap(total_nodes=16, now=0.0, free_now=free, releases=releases)
    for t, nodes in profile.profile():
        assert 0 <= nodes <= 16


# --------------------------------------------------------------------- #
# SWF round trip
# --------------------------------------------------------------------- #
records_strategy = st.lists(
    st.builds(
        JobRecord,
        job_id=st.integers(1, 10_000),
        submit_time=st.floats(0, 1e6).map(lambda x: float(int(x))),
        run_time=st.floats(1, 1e5).map(lambda x: float(int(x)) or 1.0),
        requested_time=st.floats(1, 1e5).map(lambda x: float(int(x)) or 1.0),
        requested_procs=st.integers(1, 512),
        user_id=st.integers(0, 100),
        group_id=st.integers(0, 50),
    ),
    min_size=1,
    max_size=20,
    unique_by=lambda r: r.job_id,
)


@given(records=records_strategy)
@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
def test_swf_roundtrip_preserves_core_fields(records):
    workload = Workload("prop", records, system_nodes=64, cpus_per_node=8)
    buffer = io.StringIO()
    write_swf(workload, buffer)
    buffer.seek(0)
    back = read_swf(buffer, cpus_per_node=8)
    assert len(back) == len(workload)
    for orig, parsed in zip(workload.records, back.records):
        assert parsed.job_id == orig.job_id
        assert parsed.requested_procs == orig.requested_procs
        assert parsed.run_time == pytest.approx(orig.run_time, abs=1.0)


# --------------------------------------------------------------------- #
# Heatmap binning
# --------------------------------------------------------------------- #
@given(
    jobs=st.lists(
        st.tuples(st.integers(1, 1024), st.floats(60.0, 4 * 86400.0)),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=50)
def test_heatmap_counts_cover_all_jobs(jobs):
    finished = [
        finished_job(i, nodes=1, runtime=runtime)
        for i, (nodes, runtime) in enumerate(jobs, start=1)
    ]
    # Patch requested_nodes to the sampled value (finished_job always uses 1).
    for job, (nodes, _) in zip(finished, jobs):
        job.requested_nodes = nodes
    grid = category_heatmap(finished, metric="slowdown")
    assert int(grid.counts.sum()) == len(finished)
