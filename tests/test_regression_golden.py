"""Golden regression tests against the committed benchmark artifacts.

``benchmarks/output/*.txt`` are the regenerated paper tables/figures at the
benchmark scales committed with the repo.  These tests recompute the Table 1
rows and the Figures 1-3 MAX_SLOWDOWN sweep aggregates and compare them to
the values parsed out of those artifacts, so a hot-path refactor that
silently changes the paper numbers fails loudly here instead of drifting
into the next benchmark regeneration.

Tolerances only absorb the artifacts' print rounding (1 decimal in Table 1,
3 decimals in the figure charts); the computation itself is deterministic.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.experiments.paper import figure_1_to_3_maxsd_sweep, table_1_workloads
from repro.experiments.scenario import load_spec, render_report, run_scenario
from repro.experiments.sweep import SweepRunner
from repro.workloads.presets import build_workload

OUTPUT_DIR = Path(__file__).parent.parent / "benchmarks" / "output"
EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: Benchmark scales the committed artifacts were generated at — keep in sync
#: with ``benchmarks/conftest.BENCH_SCALES`` (raw values, deliberately not
#: honouring REPRO_BENCH_SCALE_FACTOR: the goldens are pinned).
TABLE1_SCALE = 0.02
FIG13_WORKLOAD_ID = 1
FIG13_SCALE = 0.04

MAXSD_LABELS = ("MAXSD 5", "MAXSD 10", "MAXSD 50", "MAXSD inf", "DynAVGSD")


def _require(path: Path) -> str:
    if not path.exists():
        pytest.skip(f"golden artifact {path.name} not committed")
    return path.read_text(encoding="utf-8")


def parse_table1(text: str) -> dict:
    """Parse the Table 1 artifact into ``{workload_id: row dict}``."""
    rows = {}
    for line in text.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if len(cells) != 9 or not cells[0].isdigit():
            continue
        rows[int(cells[0])] = {
            "log_model": cells[1],
            "jobs": int(cells[2]),
            "system_nodes": int(cells[3]),
            "system_cpus": int(cells[4]),
            "max_job_nodes": int(cells[5]),
            "avg_response_time": float(cells[6]),
            "avg_slowdown": float(cells[7]),
            "makespan": float(cells[8]),
        }
    return rows


def parse_fig13(text: str) -> dict:
    """Parse the fig1-3 artifact into ``{metric: {label: normalised value}}``."""
    titles = {
        "Figure 1": "makespan",
        "Figure 2": "avg_response_time",
        "Figure 3": "avg_slowdown",
    }
    values: dict = {}
    metric = None
    bar = re.compile(r"^(.+?)\s*\|\s*#+\s*([0-9.]+)\s*$")
    for line in text.splitlines():
        for title, key in titles.items():
            if line.startswith(title):
                metric = key
                values[metric] = {}
        match = bar.match(line)
        if metric is not None and match:
            values[metric][match.group(1).strip()] = float(match.group(2))
    return values


def assert_close(actual: float, golden: float, rel: float, abs_tol: float, what: str):
    tol = max(abs_tol, rel * abs(golden))
    assert abs(actual - golden) <= tol, (
        f"{what}: regenerated {actual!r} differs from golden {golden!r} "
        f"by more than {tol!r}"
    )


class TestTable1Golden:
    @pytest.fixture(scope="class")
    def golden(self):
        return parse_table1(_require(OUTPUT_DIR / "table1_workloads.txt"))

    @pytest.fixture(scope="class")
    def regenerated(self):
        return table_1_workloads(scale=TABLE1_SCALE, workload_ids=(1, 2, 3, 5)).data["rows"]

    def test_artifact_parses(self, golden):
        assert set(golden) == {1, 2, 3, 5}

    @pytest.mark.parametrize("wid", (1, 2, 3, 5))
    def test_row_matches_golden(self, golden, regenerated, wid):
        gold, new = golden[wid], regenerated[wid]
        # Exact integers: the workload composition itself must not drift.
        assert new["jobs"] == gold["jobs"]
        assert new["system_nodes"] == gold["system_nodes"]
        assert new["system_cpus"] == gold["system_cpus"]
        assert new["max_job_nodes"] == gold["max_job_nodes"]
        # Aggregates within print-rounding tolerance (artifact: 1 decimal).
        for key in ("avg_response_time", "avg_slowdown", "makespan"):
            assert_close(new[key], gold[key], rel=1e-2, abs_tol=0.06,
                         what=f"table1 workload {wid} {key}")


class TestFig13Golden:
    @pytest.fixture(scope="class")
    def golden(self):
        name = f"fig1-3_maxsd_sweep_workload{FIG13_WORKLOAD_ID}.txt"
        return parse_fig13(_require(OUTPUT_DIR / name))

    @pytest.fixture(scope="class")
    def regenerated(self):
        workload = build_workload(FIG13_WORKLOAD_ID, scale=FIG13_SCALE)
        return figure_1_to_3_maxsd_sweep(workload).data["normalized"]

    def test_artifact_parses(self, golden):
        assert set(golden) == {"makespan", "avg_response_time", "avg_slowdown"}
        for metric in golden.values():
            assert set(metric) == set(MAXSD_LABELS)

    @pytest.mark.parametrize("metric", ("makespan", "avg_response_time", "avg_slowdown"))
    def test_normalised_sweep_matches_golden(self, golden, regenerated, metric):
        for label in MAXSD_LABELS:
            assert_close(
                regenerated[label][metric],
                golden[metric][label],
                rel=5e-3,
                abs_tol=2e-3,  # chart prints 3 decimals
                what=f"fig1-3 {metric} {label}",
            )


class TestScenarioGolden:
    """The example scenario specs regenerate the committed Figure 4-6 and
    Figure 7 artifacts *byte for byte* through the declarative scenario
    layer (2 workers, shared on-disk cache).

    Both figures are built from the same static/SD run pair, so the second
    scenario must be served entirely from the cache the first one wrote —
    pinning the cross-scenario cache sharing as well as the rendered text.
    """

    @pytest.fixture(scope="class")
    def outcomes(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("scenario_golden_cache")
        runner = SweepRunner(max_workers=2, cache_dir=cache)
        fig46 = run_scenario(load_spec(EXAMPLES_DIR / "figure4-6_scenario.json"),
                             runner=runner)
        fig7 = run_scenario(load_spec(EXAMPLES_DIR / "figure7_scenario.json"),
                            runner=runner)
        return fig46, fig7

    def test_fig4_to_6_matches_golden_byte_for_byte(self, outcomes):
        golden = _require(OUTPUT_DIR / "fig4-6_heatmaps_workload4.txt")
        assert render_report(outcomes[0]) + "\n" == golden

    def test_fig7_matches_golden_byte_for_byte(self, outcomes):
        golden = _require(OUTPUT_DIR / "fig7_daily_slowdown_workload4.txt")
        assert render_report(outcomes[1]) + "\n" == golden

    def test_fig7_fully_served_from_fig46_cache(self, outcomes):
        assert outcomes[0].sweep_cache_hits == 0
        assert outcomes[1].sweep_cache_hits == 2
