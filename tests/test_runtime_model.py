"""Tests for the ideal (Eq. 5) and worst-case (Eq. 6) runtime models."""

from __future__ import annotations

import math

import pytest

from repro.core.runtime_model import (
    IdealRuntimeModel,
    WorstCaseRuntimeModel,
    get_model,
    runtime_increase_from_history,
)
from repro.simulator.job import ResourceSlot
from tests.conftest import make_job


@pytest.fixture
def two_node_job():
    return make_job(nodes=2, cpus_per_node=8, runtime=100.0, req_time=200.0)


class TestIdealModel:
    def test_full_allocation_speed_is_one(self, two_node_job):
        model = IdealRuntimeModel()
        assert model.speed(two_node_job, {0: 8, 1: 8}) == 1.0

    def test_speed_proportional_to_total_cpus(self, two_node_job):
        model = IdealRuntimeModel()
        assert model.speed(two_node_job, {0: 4, 1: 4}) == pytest.approx(0.5)
        assert model.speed(two_node_job, {0: 8, 1: 4}) == pytest.approx(0.75)

    def test_unbalanced_allocation_does_not_penalise(self, two_node_job):
        # Ideal model: only the total matters, not the distribution.
        model = IdealRuntimeModel()
        assert model.speed(two_node_job, {0: 2, 1: 6}) == pytest.approx(0.5)

    def test_speed_capped_at_one(self, two_node_job):
        model = IdealRuntimeModel()
        two_node_job.requested_nodes = 1
        assert model.speed(two_node_job, {0: 8, 1: 8}) <= 1.0

    def test_empty_allocation_speed_zero(self, two_node_job):
        assert IdealRuntimeModel().speed(two_node_job, {}) == 0.0


class TestWorstCaseModel:
    def test_full_allocation_speed_is_one(self, two_node_job):
        model = WorstCaseRuntimeModel()
        assert model.speed(two_node_job, {0: 8, 1: 8}) == 1.0

    def test_limited_by_most_shrunk_node(self, two_node_job):
        model = WorstCaseRuntimeModel()
        assert model.speed(two_node_job, {0: 8, 1: 4}) == pytest.approx(0.5)
        assert model.speed(two_node_job, {0: 2, 1: 8}) == pytest.approx(0.25)

    def test_worst_case_never_faster_than_ideal(self, two_node_job):
        ideal, worst = IdealRuntimeModel(), WorstCaseRuntimeModel()
        for cpus in ({0: 8, 1: 8}, {0: 4, 1: 8}, {0: 2, 1: 6}, {0: 1, 1: 1}):
            assert worst.speed(two_node_job, cpus) <= ideal.speed(two_node_job, cpus) + 1e-12

    def test_empty_allocation_speed_zero(self, two_node_job):
        assert WorstCaseRuntimeModel().speed(two_node_job, {}) == 0.0


class TestEstimationHelpers:
    def test_dilated_runtime_half(self):
        model = WorstCaseRuntimeModel()
        assert model.dilated_runtime(100.0, 0.5) == pytest.approx(200.0)

    def test_dilated_runtime_full_fraction(self):
        assert IdealRuntimeModel().dilated_runtime(100.0, 1.0) == pytest.approx(100.0)

    def test_dilated_runtime_zero_fraction_is_inf(self):
        assert math.isinf(WorstCaseRuntimeModel().dilated_runtime(100.0, 0.0))

    def test_shrink_increase(self):
        assert WorstCaseRuntimeModel().shrink_increase(100.0, 0.5) == pytest.approx(100.0)

    def test_mate_increase_half_kept(self):
        # Shrunk to half for 200s => falls behind by 100 static-seconds.
        assert WorstCaseRuntimeModel().mate_increase(200.0, 0.5) == pytest.approx(100.0)

    def test_mate_increase_full_kept_is_zero(self):
        assert IdealRuntimeModel().mate_increase(500.0, 1.0) == 0.0

    def test_mate_increase_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            IdealRuntimeModel().mate_increase(-1.0, 0.5)


class TestRuntimeIncreaseFromHistory:
    def test_static_history_has_no_increase(self, two_node_job):
        history = [ResourceSlot(0.0, 100.0, {0: 8, 1: 8}, speed=1.0)]
        assert runtime_increase_from_history(two_node_job, history) == pytest.approx(0.0)

    def test_shrunk_history_matches_equation(self, two_node_job):
        # 100 wall seconds at half speed do 50 static seconds of work:
        # increase = wall - work = 50.
        history = [ResourceSlot(0.0, 100.0, {0: 4, 1: 4}, speed=0.5)]
        assert runtime_increase_from_history(two_node_job, history) == pytest.approx(50.0)

    def test_model_override_recomputes_speeds(self, two_node_job):
        history = [ResourceSlot(0.0, 100.0, {0: 4, 1: 8}, speed=1.0)]
        ideal = runtime_increase_from_history(two_node_job, history, IdealRuntimeModel())
        worst = runtime_increase_from_history(two_node_job, history, WorstCaseRuntimeModel())
        assert worst > ideal

    def test_empty_history(self, two_node_job):
        assert runtime_increase_from_history(two_node_job, []) == 0.0


class TestModelLookup:
    def test_get_ideal(self):
        assert isinstance(get_model("ideal"), IdealRuntimeModel)

    def test_get_worst_case_aliases(self):
        assert isinstance(get_model("worst_case"), WorstCaseRuntimeModel)
        assert isinstance(get_model("worst"), WorstCaseRuntimeModel)
        assert isinstance(get_model("EQ6"), WorstCaseRuntimeModel)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            get_model("quantum")
