"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulator.engine import EventQueue, EventType


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, payload="b")
        q.push(5.0, EventType.JOB_SUBMIT, payload="a")
        q.push(20.0, EventType.JOB_SUBMIT, payload="c")
        assert [e.payload for e in q.drain()] == ["a", "b", "c"]

    def test_tie_break_ends_before_submits(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, payload="submit")
        q.push(10.0, EventType.JOB_END, payload="end")
        assert q.pop().payload == "end"
        assert q.pop().payload == "submit"

    def test_schedule_events_last_at_same_time(self):
        q = EventQueue()
        q.push(1.0, EventType.SCHEDULE, payload="sched")
        q.push(1.0, EventType.JOB_END, payload="end")
        q.push(1.0, EventType.JOB_SUBMIT, payload="submit")
        assert [e.payload for e in q.drain()] == ["end", "submit", "sched"]

    def test_fifo_within_same_time_and_type(self):
        q = EventQueue()
        q.push(3.0, EventType.JOB_SUBMIT, payload=1)
        q.push(3.0, EventType.JOB_SUBMIT, payload=2)
        q.push(3.0, EventType.JOB_SUBMIT, payload=3)
        assert [e.payload for e in q.drain()] == [1, 2, 3]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, EventType.SCHEDULE)
        assert q
        assert len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, EventType.SCHEDULE, payload="x")
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventType.SCHEDULE)

    def test_rejects_nan_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), EventType.SCHEDULE)

    def test_validity_token_carried(self):
        q = EventQueue()
        event = q.push(1.0, EventType.JOB_END, payload=1, validity_token=7)
        assert event.validity_token == 7


class TestEndEventDedup:
    def test_superseded_end_is_dropped(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(20.0, EventType.JOB_END, payload=1, validity_token=1)
        assert len(q) == 1
        event = q.pop()
        assert event.time == 20.0 and event.validity_token == 1
        assert not q

    def test_supersede_after_pop_does_not_overcount(self):
        """Superseding an end event already popped into a batch must not make
        the queue report empty while live events remain (regression)."""
        q = EventQueue()
        q.push(5.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(5.0, EventType.JOB_END, payload=2, validity_token=0)
        assert {q.pop().payload, q.pop().payload} == {1, 2}  # batch of two
        # Job 2 is reconfigured while its old event sits in the batch.
        q.push(7.0, EventType.JOB_END, payload=2, validity_token=1)
        assert q  # the new event is live
        assert len(q) == 1
        assert q.pop().time == 7.0
        assert not q

    def test_stale_from_birth_is_dropped(self):
        q = EventQueue()
        q.push(9.0, EventType.JOB_END, payload=1, validity_token=3)
        q.push(4.0, EventType.JOB_END, payload=1, validity_token=1)
        assert len(q) == 1
        assert q.pop().validity_token == 3
        assert not q

    def test_distinct_payloads_do_not_interfere(self):
        q = EventQueue()
        q.push(1.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(2.0, EventType.JOB_END, payload=2, validity_token=5)
        assert len(q) == 2
        assert [e.payload for e in q.drain()] == [1, 2]


class TestPopBatch:
    def test_empty_queue_returns_empty_batch(self):
        assert EventQueue().pop_batch() == []

    def test_collects_one_instant_only(self):
        q = EventQueue()
        q.push(1.0, EventType.JOB_SUBMIT, payload="a")
        q.push(1.0, EventType.JOB_SUBMIT, payload="b")
        q.push(2.0, EventType.JOB_SUBMIT, payload="c")
        batch = q.pop_batch()
        assert [e.payload for e in batch] == ["a", "b"]
        assert len(q) == 1

    def test_batch_arrives_in_priority_then_fifo_order(self):
        q = EventQueue()
        q.push(5.0, EventType.SCHEDULE, payload="sched")
        q.push(5.0, EventType.JOB_SUBMIT, payload="s1")
        q.push(5.0, EventType.JOB_END, payload=1)
        q.push(5.0, EventType.JOB_SUBMIT, payload="s2")
        batch = q.pop_batch()
        assert [e.payload for e in batch] == [1, "s1", "s2", "sched"]
        keys = [(e.time, e.type_priority, e.serial) for e in batch]
        assert keys == sorted(keys)

    def test_superseded_end_excluded_from_batch(self):
        q = EventQueue()
        q.push(3.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(3.0, EventType.JOB_SUBMIT, payload="s")
        q.push(3.0, EventType.JOB_END, payload=1, validity_token=1)  # supersedes
        batch = q.pop_batch()
        assert [(e.payload, getattr(e, "validity_token", None)) for e in batch] == [
            (1, 1),
            ("s", 0),
        ]
        assert not q

    def test_stale_front_does_not_define_batch_time(self):
        q = EventQueue()
        q.push(1.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(9.0, EventType.JOB_END, payload=1, validity_token=2)  # stale at 1.0
        batch = q.pop_batch()
        assert [e.time for e in batch] == [9.0]


# ---------------------------------------------------------------------- #
# Property tests: stale accounting under reconfiguration storms
# ---------------------------------------------------------------------- #
_ops = st.lists(
    st.tuples(
        st.sampled_from(["end", "submit", "pop"]),
        st.integers(1, 3),                             # payload (job id)
        st.integers(0, 4),                             # validity token
        st.floats(0.0, 100.0, allow_nan=False),        # time
    ),
    max_size=60,
)


def _heap_end_counts(q: EventQueue) -> dict:
    counts: dict = {}
    for event in q._heap:
        if event.event_type is EventType.JOB_END:
            key = (event.payload, event.validity_token)
            counts[key] = counts.get(key, 0) + 1
    return counts


class TestStaleAccountingProperties:
    @given(ops=_ops)
    @settings(max_examples=120, suppress_health_check=[HealthCheck.filter_too_much])
    def test_supersede_storms_never_desync_accounting(self, ops):
        """Arbitrary supersede/re-push/pop interleavings keep ``len`` equal to
        the live event count, ``_stale`` non-negative and exact, and
        ``_end_counts`` in sync with the heap contents."""
        q = EventQueue()
        for op, payload, token, time in ops:
            if op == "end":
                q.push(time, EventType.JOB_END, payload=payload, validity_token=token)
            elif op == "submit":
                q.push(time, EventType.JOB_SUBMIT, payload=payload)
            elif q:
                q.pop()
            live = sum(1 for e in q._heap if not q._is_stale(e))
            assert len(q) == live
            assert q._stale == len(q._heap) - live
            assert q._stale >= 0
            assert _heap_end_counts(q) == q._end_counts

    @given(ops=_ops)
    @settings(max_examples=120, suppress_health_check=[HealthCheck.filter_too_much])
    def test_drain_yields_strictly_increasing_keys(self, ops):
        q = EventQueue()
        newest: dict = {}
        for op, payload, token, time in ops:
            if op == "end":
                q.push(time, EventType.JOB_END, payload=payload, validity_token=token)
                newest[payload] = max(newest.get(payload, token), token)
            elif op == "submit":
                q.push(time, EventType.JOB_SUBMIT, payload=payload)
            elif q:
                q.pop()
        drained = list(q.drain())
        keys = [(e.time, e.type_priority, e.serial) for e in drained]
        assert keys == sorted(keys)
        for a, b in zip(keys, keys[1:]):
            assert a < b  # serial is unique, so strictly increasing
        # Only live (newest-token) end events surface.
        for event in drained:
            if event.event_type is EventType.JOB_END:
                assert event.validity_token == newest[event.payload]
        assert not q and len(q) == 0

    @given(
        times=st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=30),
        storm=st.integers(1, 8),
    )
    @settings(max_examples=60)
    def test_pop_batch_equals_sorted_pops(self, times, storm):
        """pop_batch returns exactly what repeated pop() at the same instant
        would, already in order — the re-sort the driver used to do."""

        def build() -> EventQueue:
            q = EventQueue()
            for i, t in enumerate(times):
                q.push(t, EventType.JOB_SUBMIT, payload=("s", i))
            for token in range(storm):
                q.push(times[0], EventType.JOB_END, payload=99, validity_token=token)
            return q

        q1, q2 = build(), build()
        batch = q1.pop_batch()
        expected = []
        first = q2.pop()
        expected.append(first)
        while q2 and q2.peek().time == first.time:
            expected.append(q2.pop())
        expected.sort(key=lambda e: (e.type_priority, e.serial))
        assert [(e.time, e.type_priority, e.serial, e.payload) for e in batch] == [
            (e.time, e.type_priority, e.serial, e.payload) for e in expected
        ]
        assert len(q1) == len(q2)
