"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Event, EventQueue, EventType


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, payload="b")
        q.push(5.0, EventType.JOB_SUBMIT, payload="a")
        q.push(20.0, EventType.JOB_SUBMIT, payload="c")
        assert [e.payload for e in q.drain()] == ["a", "b", "c"]

    def test_tie_break_ends_before_submits(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, payload="submit")
        q.push(10.0, EventType.JOB_END, payload="end")
        assert q.pop().payload == "end"
        assert q.pop().payload == "submit"

    def test_schedule_events_last_at_same_time(self):
        q = EventQueue()
        q.push(1.0, EventType.SCHEDULE, payload="sched")
        q.push(1.0, EventType.JOB_END, payload="end")
        q.push(1.0, EventType.JOB_SUBMIT, payload="submit")
        assert [e.payload for e in q.drain()] == ["end", "submit", "sched"]

    def test_fifo_within_same_time_and_type(self):
        q = EventQueue()
        q.push(3.0, EventType.JOB_SUBMIT, payload=1)
        q.push(3.0, EventType.JOB_SUBMIT, payload=2)
        q.push(3.0, EventType.JOB_SUBMIT, payload=3)
        assert [e.payload for e in q.drain()] == [1, 2, 3]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, EventType.SCHEDULE)
        assert q
        assert len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, EventType.SCHEDULE, payload="x")
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventType.SCHEDULE)

    def test_rejects_nan_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), EventType.SCHEDULE)

    def test_validity_token_carried(self):
        q = EventQueue()
        event = q.push(1.0, EventType.JOB_END, payload=1, validity_token=7)
        assert event.validity_token == 7
