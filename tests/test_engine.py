"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Event, EventQueue, EventType


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, payload="b")
        q.push(5.0, EventType.JOB_SUBMIT, payload="a")
        q.push(20.0, EventType.JOB_SUBMIT, payload="c")
        assert [e.payload for e in q.drain()] == ["a", "b", "c"]

    def test_tie_break_ends_before_submits(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, payload="submit")
        q.push(10.0, EventType.JOB_END, payload="end")
        assert q.pop().payload == "end"
        assert q.pop().payload == "submit"

    def test_schedule_events_last_at_same_time(self):
        q = EventQueue()
        q.push(1.0, EventType.SCHEDULE, payload="sched")
        q.push(1.0, EventType.JOB_END, payload="end")
        q.push(1.0, EventType.JOB_SUBMIT, payload="submit")
        assert [e.payload for e in q.drain()] == ["end", "submit", "sched"]

    def test_fifo_within_same_time_and_type(self):
        q = EventQueue()
        q.push(3.0, EventType.JOB_SUBMIT, payload=1)
        q.push(3.0, EventType.JOB_SUBMIT, payload=2)
        q.push(3.0, EventType.JOB_SUBMIT, payload=3)
        assert [e.payload for e in q.drain()] == [1, 2, 3]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, EventType.SCHEDULE)
        assert q
        assert len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, EventType.SCHEDULE, payload="x")
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventType.SCHEDULE)

    def test_rejects_nan_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), EventType.SCHEDULE)

    def test_validity_token_carried(self):
        q = EventQueue()
        event = q.push(1.0, EventType.JOB_END, payload=1, validity_token=7)
        assert event.validity_token == 7


class TestEndEventDedup:
    def test_superseded_end_is_dropped(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(20.0, EventType.JOB_END, payload=1, validity_token=1)
        assert len(q) == 1
        event = q.pop()
        assert event.time == 20.0 and event.validity_token == 1
        assert not q

    def test_supersede_after_pop_does_not_overcount(self):
        """Superseding an end event already popped into a batch must not make
        the queue report empty while live events remain (regression)."""
        q = EventQueue()
        q.push(5.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(5.0, EventType.JOB_END, payload=2, validity_token=0)
        assert {q.pop().payload, q.pop().payload} == {1, 2}  # batch of two
        # Job 2 is reconfigured while its old event sits in the batch.
        q.push(7.0, EventType.JOB_END, payload=2, validity_token=1)
        assert q  # the new event is live
        assert len(q) == 1
        assert q.pop().time == 7.0
        assert not q

    def test_stale_from_birth_is_dropped(self):
        q = EventQueue()
        q.push(9.0, EventType.JOB_END, payload=1, validity_token=3)
        q.push(4.0, EventType.JOB_END, payload=1, validity_token=1)
        assert len(q) == 1
        assert q.pop().validity_token == 3
        assert not q

    def test_distinct_payloads_do_not_interfere(self):
        q = EventQueue()
        q.push(1.0, EventType.JOB_END, payload=1, validity_token=0)
        q.push(2.0, EventType.JOB_END, payload=2, validity_token=5)
        assert len(q) == 2
        assert [e.payload for e in q.drain()] == [1, 2]
