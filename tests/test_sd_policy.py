"""Tests for the SD-Policy scheduler (Listing 1 + Listing 3 behaviour)."""

from __future__ import annotations

import math

import pytest

from repro.core.penalties import DynamicAverageMaxSlowdown, StaticMaxSlowdown
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.schedulers.backfill import BackfillScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.simulation import Simulation
from tests.conftest import make_job


def run_jobs(scheduler, jobs, nodes=2, cpus=8, **sim_kwargs):
    cluster = Cluster(num_nodes=nodes, sockets=2, cores_per_socket=cpus // 2)
    sim = Simulation(cluster, scheduler, **sim_kwargs)
    sim.submit_jobs(jobs)
    result = sim.run()
    cluster.validate()
    return {j.job_id: j for j in result.jobs}, result


def saturating_scenario(guest_malleable=True, guest_req=1000.0, guest_runtime=800.0):
    """Two long 1-node jobs fill a 2-node cluster; a short job arrives later."""
    return [
        make_job(job_id=1, submit=0.0, nodes=1, req_time=20000.0, runtime=18000.0),
        make_job(job_id=2, submit=0.0, nodes=1, req_time=20000.0, runtime=18000.0),
        make_job(job_id=3, submit=50.0, nodes=1, req_time=guest_req,
                 runtime=guest_runtime, malleable=guest_malleable),
    ]


class TestConfig:
    def test_static_cutoff_built(self):
        config = SDPolicyConfig(max_slowdown=10.0)
        assert isinstance(config.build_cutoff(), StaticMaxSlowdown)

    def test_dynamic_cutoff_built(self):
        config = SDPolicyConfig(max_slowdown="dynamic")
        assert isinstance(config.build_cutoff(), DynamicAverageMaxSlowdown)

    def test_unknown_cutoff_spec_rejected(self):
        with pytest.raises(ValueError):
            SDPolicyConfig(max_slowdown="bogus").build_cutoff()

    def test_scheduler_name_mentions_cutoff_and_factor(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=10.0, sharing_factor=0.5))
        assert "MAXSD 10" in scheduler.name
        assert "0.5" in scheduler.name


class TestMalleableCoScheduling:
    def test_short_job_starts_immediately_as_guest(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        by_id, result = run_jobs(scheduler, saturating_scenario())
        guest = by_id[3]
        assert guest.scheduled_malleable
        assert guest.start_time == pytest.approx(50.0)
        # Worst-case execution at half the cores -> about twice the runtime.
        assert guest.actual_runtime == pytest.approx(1600.0)
        assert result.malleable_scheduled_jobs == 1
        assert result.mate_jobs == 1

    def test_mate_is_expanded_back_after_guest_ends(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        by_id, _ = run_jobs(scheduler, saturating_scenario())
        guest = by_id[3]
        mate_id = guest.guest_of[0] if guest.guest_of else None
        # Bookkeeping is unlinked at guest end, so look at the mate's history.
        mates = [j for j in by_id.values() if j.was_mate]
        assert len(mates) == 1
        mate = mates[0]
        # Shrunk interval followed by a full-width interval again.
        widths = [min(s.cpus_per_node.values()) for s in mate.resource_history]
        assert widths[0] == 8 and 4 in widths and widths[-1] == 8
        # The mate pays for hosting: it finishes later than its static runtime.
        assert mate.actual_runtime > mate.static_runtime

    def test_non_malleable_job_waits(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        by_id, result = run_jobs(scheduler, saturating_scenario(guest_malleable=False))
        guest = by_id[3]
        assert not guest.scheduled_malleable
        assert guest.start_time >= 18000.0
        assert result.malleable_scheduled_jobs == 0

    def test_malleability_skipped_when_static_is_better(self):
        # The running jobs end soon (short requested time), so waiting is
        # cheaper than running dilated: SD-Policy must not apply malleability.
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=1, req_time=300.0, runtime=250.0),
            make_job(job_id=2, submit=0.0, nodes=1, req_time=300.0, runtime=250.0),
            make_job(job_id=3, submit=50.0, nodes=1, req_time=1000.0, runtime=800.0),
        ]
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        by_id, result = run_jobs(scheduler, jobs)
        assert not by_id[3].scheduled_malleable
        assert result.malleable_scheduled_jobs == 0
        assert scheduler.stats()["rejected_by_estimate"] > 0

    def test_max_slowdown_cutoff_blocks_mates(self):
        # With an extremely tight cut-off no mate is admissible.
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=1.0000001))
        by_id, result = run_jobs(scheduler, saturating_scenario())
        assert result.malleable_scheduled_jobs == 0
        assert scheduler.stats()["rejected_no_mates"] > 0

    def test_requested_times_updated_after_selection(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        by_id, _ = run_jobs(scheduler, saturating_scenario())
        mate = [j for j in by_id.values() if j.was_mate][0]
        guest = by_id[3]
        assert mate.requested_time > 20000.0
        assert guest.requested_time >= 2 * 1000.0

    def test_guest_slowdown_improves_over_static_backfill(self):
        sd_by_id, _ = run_jobs(
            SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf)), saturating_scenario()
        )
        static_by_id, _ = run_jobs(BackfillScheduler(), saturating_scenario())
        assert sd_by_id[3].slowdown < static_by_id[3].slowdown

    def test_mixed_workload_static_jobs_unaffected_structurally(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        by_id, _ = run_jobs(scheduler, saturating_scenario(guest_malleable=False))
        for job in by_id.values():
            for slot in job.resource_history:
                assert all(c == 8 for c in slot.cpus_per_node.values())


class TestMateEndsBeforeGuest:
    def test_guest_takes_over_freed_cores(self):
        # The mate's real runtime is much shorter than requested, so it ends
        # while still hosting; the guest must expand onto the freed cores
        # (Listing 3's distribute_cpu behaviour).
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=1, req_time=20000.0, runtime=1000.0),
            make_job(job_id=2, submit=0.0, nodes=1, req_time=20000.0, runtime=18000.0),
            make_job(job_id=3, submit=50.0, nodes=1, req_time=3000.0, runtime=2500.0),
        ]
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        by_id, _ = run_jobs(scheduler, jobs)
        guest = by_id[3]
        assert guest.scheduled_malleable
        widths = [max(s.cpus_per_node.values()) for s in guest.resource_history]
        assert widths[0] == 4          # shrunk at start
        assert widths[-1] == 8         # expanded to the full node after the mate left
        # Expansion shortens the guest versus staying shrunk the whole time.
        assert guest.actual_runtime < 2 * 2500.0


class TestSchedulerHygiene:
    def test_bind_resets_counters(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
        run_jobs(scheduler, saturating_scenario())
        assert scheduler.malleable_starts > 0
        run_jobs(scheduler, saturating_scenario())
        assert scheduler.malleable_starts == 1  # reset by bind() on the new run

    def test_stats_keys(self):
        scheduler = SDPolicyScheduler()
        stats = scheduler.stats()
        assert set(stats) == {"malleable_starts", "rejected_by_estimate", "rejected_no_mates"}

    def test_dynamic_cutoff_never_blocks_empty_system(self):
        scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown="dynamic"))
        by_id, result = run_jobs(scheduler, saturating_scenario())
        assert result.num_jobs == 3
