"""Tests for the Standard Workload Format parser/writer."""

from __future__ import annotations

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workloads.job_record import JobRecord, Workload
from repro.workloads.swf import SWFFormatError, read_swf, write_swf

SAMPLE_SWF = """\
; Version: 2.2
; MaxNodes: 64
; MaxProcs: 512
1 0 5 100 8 -1 -1 8 200 -1 1 10 2 3 1 1 -1 -1
2 50 -1 60 16 -1 -1 16 120 -1 1 11 2 4 1 1 -1 -1
3 80 0 0 8 -1 -1 8 100 -1 0 12 2 5 1 1 -1 -1
"""


class TestReadSWF:
    def test_parses_jobs_and_header(self):
        wl = read_swf(io.StringIO(SAMPLE_SWF), name="sample", cpus_per_node=8)
        assert wl.name == "sample"
        assert wl.system_nodes == 64
        # Job 3 has run_time 0 (cancelled) and is dropped.
        assert len(wl) == 2
        first = wl.records[0]
        assert first.job_id == 1
        assert first.run_time == 100.0
        assert first.requested_time == 200.0
        assert first.requested_procs == 8
        assert first.user_id == 10

    def test_system_nodes_override(self):
        wl = read_swf(io.StringIO(SAMPLE_SWF), system_nodes=16)
        assert wl.system_nodes == 16

    def test_max_jobs_limit(self):
        wl = read_swf(io.StringIO(SAMPLE_SWF), max_jobs=1)
        assert len(wl) == 1

    def test_short_line_rejected(self):
        with pytest.raises(SWFFormatError):
            read_swf(io.StringIO("1 2 3\n"))

    def test_system_size_inferred_from_jobs_without_header(self):
        text = "1 0 5 100 32 -1 -1 32 200 -1 1 1 1 1 1 1 -1 -1\n"
        wl = read_swf(io.StringIO(text), cpus_per_node=8)
        assert wl.system_nodes == 4

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "log.swf"
        path.write_text(SAMPLE_SWF)
        wl = read_swf(path)
        assert len(wl) == 2
        assert wl.name == "log.swf"


class TestWriteSWF:
    def _workload(self):
        records = [
            JobRecord(job_id=1, submit_time=0.0, run_time=100.0, requested_time=200.0,
                      requested_procs=8, user_id=3, group_id=4),
            JobRecord(job_id=2, submit_time=60.0, run_time=30.0, requested_time=60.0,
                      requested_procs=16, user_id=5, group_id=6),
        ]
        return Workload("out", records, system_nodes=8, cpus_per_node=8)

    def test_roundtrip_preserves_fields(self):
        buffer = io.StringIO()
        write_swf(self._workload(), buffer)
        buffer.seek(0)
        back = read_swf(buffer, cpus_per_node=8)
        assert len(back) == 2
        assert back.system_nodes == 8
        for orig, parsed in zip(self._workload().records, back.records):
            assert parsed.job_id == orig.job_id
            assert parsed.run_time == orig.run_time
            assert parsed.requested_time == orig.requested_time
            assert parsed.requested_procs == orig.requested_procs
            assert parsed.user_id == orig.user_id

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "out.swf"
        write_swf(self._workload(), path, comments=["generated in a test"])
        text = path.read_text()
        assert "; generated in a test" in text
        assert "; MaxNodes: 8" in text

    def test_generator_workload_roundtrip(self, tiny_workload):
        buffer = io.StringIO()
        write_swf(tiny_workload, buffer)
        buffer.seek(0)
        back = read_swf(buffer, cpus_per_node=tiny_workload.cpus_per_node)
        assert len(back) == len(tiny_workload)

    def test_extra_fields_written_out(self):
        """Fields 5/6/9 come from extra, not hard-coded -1 (regression)."""
        record = JobRecord(
            job_id=1, submit_time=0.0, run_time=100.0, requested_time=200.0,
            requested_procs=8,
            extra={"avg_cpu_time": 42.5, "used_memory": 1024.0, "requested_memory": 2048.0},
        )
        buffer = io.StringIO()
        write_swf(Workload("x", [record], system_nodes=8, cpus_per_node=8), buffer)
        line = [l for l in buffer.getvalue().splitlines() if not l.startswith(";")][0]
        fields = line.split()
        assert fields[5] == "42.5"
        assert fields[6] == "1024"
        assert fields[9] == "2048"


# ----------------------------------------------------------------------- #
# Property test: read ↔ write ↔ read round trips over randomized workloads
# ----------------------------------------------------------------------- #
_times = st.floats(min_value=0.0, max_value=1e7, allow_nan=False,
                   allow_infinity=False, width=32)
_positive_times = st.floats(min_value=0.5, max_value=1e7, allow_nan=False,
                            allow_infinity=False, width=32)
_memory = st.one_of(st.just(-1.0), st.floats(min_value=0.0, max_value=1e6,
                                             allow_nan=False, width=32))


@st.composite
def _job_records(draw, job_id):
    run_time = draw(_positive_times)
    return JobRecord(
        job_id=job_id,
        submit_time=draw(_times),
        run_time=run_time,
        requested_time=draw(_positive_times),
        requested_procs=draw(st.integers(min_value=1, max_value=256)),
        user_id=draw(st.integers(min_value=0, max_value=500)),
        group_id=draw(st.integers(min_value=0, max_value=50)),
        executable=draw(st.integers(min_value=0, max_value=99)),
        status=draw(st.integers(min_value=0, max_value=5)),
        wait_time=draw(st.one_of(st.just(-1.0), _times)),
        used_procs=draw(st.integers(min_value=-1, max_value=256)),
        extra={
            "avg_cpu_time": draw(st.one_of(st.just(-1.0), _positive_times)),
            "used_memory": draw(_memory),
            "requested_memory": draw(_memory),
            "queue": float(draw(st.integers(min_value=-1, max_value=9))),
            "partition": float(draw(st.integers(min_value=-1, max_value=9))),
            "preceding_job": float(draw(st.integers(min_value=-1, max_value=100))),
            "think_time": float(draw(st.integers(min_value=-1, max_value=3600))),
        },
    )


@st.composite
def _workloads(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    records = [draw(_job_records(job_id=i + 1)) for i in range(count)]
    return Workload(
        name="prop",
        records=records,
        system_nodes=draw(st.integers(min_value=1, max_value=128)),
        cpus_per_node=draw(st.sampled_from([8, 16, 48])),
    )


class TestRoundTripProperty:
    @given(workload=_workloads())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_read_write_read_round_trip(self, workload):
        """write → read preserves every first-class field and the extras,
        and a second write → read cycle is a fixed point."""
        first = io.StringIO()
        write_swf(workload, first)
        first.seek(0)
        once = read_swf(first, cpus_per_node=workload.cpus_per_node)
        assert len(once) == len(workload)
        assert once.system_nodes == workload.system_nodes
        for orig, parsed in zip(workload.records, once.records):
            assert parsed.job_id == orig.job_id
            assert parsed.submit_time == orig.submit_time
            assert parsed.run_time == orig.run_time
            assert parsed.requested_time == orig.requested_time
            assert parsed.requested_procs == orig.requested_procs
            assert parsed.user_id == orig.user_id
            assert parsed.group_id == orig.group_id
            assert parsed.executable == orig.executable
            # The satellite fix: the archive's optional fields round-trip
            # instead of collapsing to -1.
            for key in ("avg_cpu_time", "used_memory", "requested_memory",
                        "queue", "partition", "preceding_job", "think_time"):
                assert parsed.extra[key] == orig.extra[key], key
        second = io.StringIO()
        write_swf(once, second)
        second.seek(0)
        twice = read_swf(second, cpus_per_node=workload.cpus_per_node)
        assert [r.__dict__ for r in twice.records] == [r.__dict__ for r in once.records]


class TestStreamingSWF:
    """The streaming pass (`iter_swf`/`summarize_swf`) must agree exactly
    with materialising the workload and calling `describe()`."""

    def test_iter_swf_matches_read_swf(self):
        from repro.workloads.swf import iter_swf

        records = list(iter_swf(io.StringIO(SAMPLE_SWF)))
        wl = read_swf(io.StringIO(SAMPLE_SWF))
        assert [r.job_id for r in records] == [r.job_id for r in wl.records]

    def test_iter_swf_collects_header_and_honours_max_jobs(self):
        from repro.workloads.swf import iter_swf

        header = {}
        records = list(iter_swf(io.StringIO(SAMPLE_SWF), max_jobs=1, header=header))
        assert len(records) == 1
        assert header == {"nodes": 64, "procs": 512}

    def test_summarize_matches_describe_bit_identically(self):
        from repro.workloads.swf import summarize_swf

        assert (
            summarize_swf(io.StringIO(SAMPLE_SWF))
            == read_swf(io.StringIO(SAMPLE_SWF)).describe()
        )

    def test_summarize_matches_describe_on_generated_log(self):
        from repro.workloads.cirne import CirneWorkloadModel
        from repro.workloads.swf import summarize_swf

        wl = CirneWorkloadModel(
            num_jobs=200, system_nodes=32, cpus_per_node=8, max_job_nodes=16,
            target_load=1.0, median_runtime_s=1800.0, seed=3, name="stream",
        ).generate()
        buf = io.StringIO()
        write_swf(wl, buf)
        text = buf.getvalue()
        described = read_swf(io.StringIO(text)).describe()
        summarized = summarize_swf(io.StringIO(text))
        assert summarized == described
        # Bounded reads agree too (the iterator caps *yielded* records,
        # exactly like read_swf caps kept ones).
        assert summarize_swf(io.StringIO(text), max_jobs=37) == read_swf(
            io.StringIO(text), max_jobs=37
        ).describe()

    def test_summarize_empty_log(self):
        from repro.workloads.swf import summarize_swf

        assert summarize_swf(io.StringIO("; MaxNodes: 4\n")) == {"jobs": 0}
