"""Tests for the Standard Workload Format parser/writer."""

from __future__ import annotations

import io

import pytest

from repro.workloads.job_record import JobRecord, Workload
from repro.workloads.swf import SWFFormatError, read_swf, write_swf

SAMPLE_SWF = """\
; Version: 2.2
; MaxNodes: 64
; MaxProcs: 512
1 0 5 100 8 -1 -1 8 200 -1 1 10 2 3 1 1 -1 -1
2 50 -1 60 16 -1 -1 16 120 -1 1 11 2 4 1 1 -1 -1
3 80 0 0 8 -1 -1 8 100 -1 0 12 2 5 1 1 -1 -1
"""


class TestReadSWF:
    def test_parses_jobs_and_header(self):
        wl = read_swf(io.StringIO(SAMPLE_SWF), name="sample", cpus_per_node=8)
        assert wl.name == "sample"
        assert wl.system_nodes == 64
        # Job 3 has run_time 0 (cancelled) and is dropped.
        assert len(wl) == 2
        first = wl.records[0]
        assert first.job_id == 1
        assert first.run_time == 100.0
        assert first.requested_time == 200.0
        assert first.requested_procs == 8
        assert first.user_id == 10

    def test_system_nodes_override(self):
        wl = read_swf(io.StringIO(SAMPLE_SWF), system_nodes=16)
        assert wl.system_nodes == 16

    def test_max_jobs_limit(self):
        wl = read_swf(io.StringIO(SAMPLE_SWF), max_jobs=1)
        assert len(wl) == 1

    def test_short_line_rejected(self):
        with pytest.raises(SWFFormatError):
            read_swf(io.StringIO("1 2 3\n"))

    def test_system_size_inferred_from_jobs_without_header(self):
        text = "1 0 5 100 32 -1 -1 32 200 -1 1 1 1 1 1 1 -1 -1\n"
        wl = read_swf(io.StringIO(text), cpus_per_node=8)
        assert wl.system_nodes == 4

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "log.swf"
        path.write_text(SAMPLE_SWF)
        wl = read_swf(path)
        assert len(wl) == 2
        assert wl.name == "log.swf"


class TestWriteSWF:
    def _workload(self):
        records = [
            JobRecord(job_id=1, submit_time=0.0, run_time=100.0, requested_time=200.0,
                      requested_procs=8, user_id=3, group_id=4),
            JobRecord(job_id=2, submit_time=60.0, run_time=30.0, requested_time=60.0,
                      requested_procs=16, user_id=5, group_id=6),
        ]
        return Workload("out", records, system_nodes=8, cpus_per_node=8)

    def test_roundtrip_preserves_fields(self):
        buffer = io.StringIO()
        write_swf(self._workload(), buffer)
        buffer.seek(0)
        back = read_swf(buffer, cpus_per_node=8)
        assert len(back) == 2
        assert back.system_nodes == 8
        for orig, parsed in zip(self._workload().records, back.records):
            assert parsed.job_id == orig.job_id
            assert parsed.run_time == orig.run_time
            assert parsed.requested_time == orig.requested_time
            assert parsed.requested_procs == orig.requested_procs
            assert parsed.user_id == orig.user_id

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "out.swf"
        write_swf(self._workload(), path, comments=["generated in a test"])
        text = path.read_text()
        assert "; generated in a test" in text
        assert "; MaxNodes: 8" in text

    def test_generator_workload_roundtrip(self, tiny_workload):
        buffer = io.StringIO()
        write_swf(tiny_workload, buffer)
        buffer.seek(0)
        back = read_swf(buffer, cpus_per_node=tiny_workload.cpus_per_node)
        assert len(back) == len(tiny_workload)
