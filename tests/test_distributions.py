"""Tests for the shared workload distribution samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import distributions as dist


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLogUniform:
    def test_within_bounds(self, rng):
        samples = dist.log_uniform(rng, 10.0, 1000.0, size=500)
        assert samples.min() >= 10.0
        assert samples.max() <= 1000.0

    def test_invalid_bounds(self, rng):
        with pytest.raises(ValueError):
            dist.log_uniform(rng, 0.0, 10.0)
        with pytest.raises(ValueError):
            dist.log_uniform(rng, 100.0, 10.0)


class TestPowerOfTwoSize:
    def test_within_bounds(self, rng):
        sizes = [dist.power_of_two_size(rng, 128) for _ in range(500)]
        assert min(sizes) >= 1
        assert max(sizes) <= 128

    def test_serial_fraction(self, rng):
        sizes = [dist.power_of_two_size(rng, 128, p_serial=1.0) for _ in range(50)]
        assert all(s == 1 for s in sizes)

    def test_power_of_two_emphasis(self, rng):
        sizes = [dist.power_of_two_size(rng, 128, p_power_of_two=1.0, p_serial=0.0)
                 for _ in range(300)]
        assert all((s & (s - 1)) == 0 for s in sizes)  # all powers of two

    def test_invalid_max_nodes(self, rng):
        with pytest.raises(ValueError):
            dist.power_of_two_size(rng, 0)


class TestOverestimation:
    def test_factor_at_least_one(self, rng):
        factors = [dist.request_overestimation_factor(rng) for _ in range(500)]
        assert min(factors) >= 1.0
        # A meaningful share of users over-request heavily.
        assert max(factors) > 4.0


class TestArrivals:
    def test_intensity_positive_and_periodic(self):
        assert dist.arrival_intensity(0.0) > 0
        assert dist.arrival_intensity(12 * 3600.0) > dist.arrival_intensity(3 * 3600.0)
        week = 7 * 86400.0
        assert dist.arrival_intensity(1000.0) == pytest.approx(
            dist.arrival_intensity(1000.0 + week)
        )

    def test_cyclic_poisson_count_and_order(self, rng):
        arrivals = dist.cyclic_poisson_arrivals(rng, 200, mean_interarrival=60.0)
        assert len(arrivals) == 200
        assert arrivals == sorted(arrivals)

    def test_cyclic_poisson_invalid_gap(self, rng):
        with pytest.raises(ValueError):
            dist.cyclic_poisson_arrivals(rng, 10, mean_interarrival=0.0)

    def test_cyclic_poisson_zero_jobs(self, rng):
        assert dist.cyclic_poisson_arrivals(rng, 0, 60.0) == []

    def test_calibrated_arrivals_hits_target_span(self, rng):
        target = 5 * 86400.0
        arrivals = dist.calibrated_arrivals(rng, 2000, target_span=target)
        span = arrivals[-1] - arrivals[0]
        assert span == pytest.approx(target, rel=0.25)

    def test_calibrated_arrivals_invalid_span(self, rng):
        with pytest.raises(ValueError):
            dist.calibrated_arrivals(rng, 10, target_span=0.0)


class TestGammaRuntime:
    def test_bounds_respected(self, rng):
        samples = [dist.gamma_runtime(rng, 3600.0, max_seconds=7200.0, min_seconds=120.0)
                   for _ in range(500)]
        assert min(samples) >= 120.0
        assert max(samples) <= 7200.0

    def test_median_roughly_matches(self, rng):
        samples = [dist.gamma_runtime(rng, 3600.0, max_seconds=1e9, min_seconds=1.0)
                   for _ in range(3000)]
        assert np.median(samples) == pytest.approx(3600.0, rel=0.25)

    def test_invalid_median(self, rng):
        with pytest.raises(ValueError):
            dist.gamma_runtime(rng, 0.0)
