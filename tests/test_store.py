"""Tests for the pluggable result-store subsystem (:mod:`repro.store`).

The heart of this module is a backend-interchangeability suite: every test
parametrised over ``store_url`` runs identically against a local directory
(:class:`LocalFSStore`), the in-process :class:`MemoryStore` and an
:class:`HTTPObjectStore` talking to the in-process S3-compatible fake — the
same sweep must yield byte-identical results through all three, including
shard → merge round-trips and corrupt-blob quarantine.
"""

from __future__ import annotations

import os
import pickle
import re
import time

import pytest

from repro.cli import main
from repro.experiments.executors import MergeExecutor, ShardedExecutor
from repro.experiments.sweep import SweepRunner, SweepTask, task_cache_key
from repro.store import (
    HTTPObjectStore,
    LocalFSStore,
    MemoryStore,
    StoreError,
    default_cache_dir,
    mirror,
    open_store,
    parse_age,
    prune,
    resolve_store,
)
from repro.store.fake import ObjectStoreServer
from repro.workloads.cirne import CirneWorkloadModel

BACKENDS = ("localfs", "memory", "http")


@pytest.fixture(scope="module")
def server():
    with ObjectStoreServer() as srv:
        yield srv


def _slug(text: str) -> str:
    return re.sub(r"\W+", "-", text).strip("-")[-80:]


@pytest.fixture(params=BACKENDS)
def store_url(request, tmp_path, server):
    """A fresh store URL per test, for every backend."""
    slug = _slug(request.node.nodeid)
    if request.param == "localfs":
        yield f"file://{tmp_path / 'store'}"
    elif request.param == "memory":
        yield f"memory://{slug}"
        MemoryStore.reset(slug)
    else:
        yield server.store_url(slug)


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=40, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.0, median_runtime_s=1800.0, seed=11, name="store_test",
    ).generate()


@pytest.fixture(scope="module")
def tasks(workload):
    """Five tasks so a 2-way shard split is uneven (3 + 2)."""
    maxsd = [
        SweepTask(
            workload=workload, policy="sd_policy", key=f"MAXSD {m}", seed=0,
            kwargs={"runtime_model": "ideal", "max_slowdown": float(m),
                    "sharing_factor": 0.5},
        )
        for m in (5, 10, 50, 100)
    ]
    return [
        SweepTask(workload=workload, policy="static_backfill", key="static",
                  seed=0, kwargs={"runtime_model": "ideal"})
    ] + maxsd


@pytest.fixture(scope="module")
def golden(tasks):
    """The uncached single-process result every backend must reproduce."""
    return SweepRunner(max_workers=1).run(tasks)


def _run_bytes(result):
    """Canonical pickle bytes per run, with the one legitimately
    non-deterministic field (the run's own wall-clock timing) zeroed."""
    out = {}
    for entry in result.entries:
        clone = pickle.loads(pickle.dumps(entry.run))
        clone.wall_clock_seconds = 0.0
        out[entry.key] = pickle.dumps(clone)
    return out


# --------------------------------------------------------------------- #
# Protocol semantics, per backend
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_blob_roundtrip(self, store_url):
        store = open_store(store_url)
        assert store.get("k1") is None
        assert not store.exists("k1")
        store.put("k1", b"payload")
        assert store.get("k1") == b"payload"
        assert store.exists("k1")
        store.put("k1", b"replaced")  # overwrite is an atomic replace
        assert store.get("k1") == b"replaced"
        assert store.list() == ["k1"]
        assert store.delete("k1") is True
        assert store.delete("k1") is False
        assert store.list() == []

    def test_list_filters_by_prefix(self, store_url):
        store = open_store(store_url)
        for key in ("aa1", "aa2", "bb1"):
            store.put(key, b"x")
        assert store.list("aa") == ["aa1", "aa2"]
        assert store.list() == ["aa1", "aa2", "bb1"]

    def test_manifest_roundtrip(self, store_url):
        store = open_store(store_url)
        assert store.read_manifest("m1") is None
        store.write_manifest("m1", {"shard": 1, "tasks": ["a", "b"]})
        assert store.read_manifest("m1") == {"shard": 1, "tasks": ["a", "b"]}
        store.write_manifest("m2", {"shard": 2})
        assert store.list_manifests() == ["m1", "m2"]
        assert store.list_manifests("m1") == ["m1"]
        assert store.delete_manifest("m1") is True
        assert store.list_manifests() == ["m2"]

    def test_manifests_do_not_leak_into_blob_namespace(self, store_url):
        store = open_store(store_url)
        store.put("blob", b"x")
        store.write_manifest("doc", {"a": 1})
        assert store.list() == ["blob"]
        assert store.list_manifests() == ["doc"]

    def test_quarantine_moves_blob_aside(self, store_url):
        store = open_store(store_url)
        store.put("bad", b"garbage")
        store.quarantine("bad")
        assert store.get("bad") is None
        assert store.list() == []
        assert store.list_quarantined() == ["bad"]
        assert store.delete_quarantined("bad") is True
        assert store.list_quarantined() == []

    def test_stat_and_stats(self, store_url):
        store = open_store(store_url)
        store.put("k", b"12345")
        store.write_manifest("m", {"a": 1})
        stat = store.stat("k")
        assert stat is not None and stat.size == 5
        assert store.stat("missing") is None
        stats = store.stats()
        assert stats.blobs == 1 and stats.blob_bytes == 5
        assert stats.manifests == 1 and stats.manifest_bytes > 0
        assert stats.quarantined == 0

    def test_same_url_sees_same_objects(self, store_url):
        open_store(store_url).put("shared", b"v")
        assert open_store(store_url).get("shared") == b"v"


# --------------------------------------------------------------------- #
# Backend interchangeability for sweeps
# --------------------------------------------------------------------- #
class TestSweepInterchangeability:
    def test_sweep_is_byte_identical_through_every_backend(
        self, store_url, tasks, golden
    ):
        first = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert first.cache_hits == 0
        second = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert second.cache_hits == len(tasks)
        assert _run_bytes(first) == _run_bytes(golden)
        assert _run_bytes(second) == _run_bytes(golden)

    def test_shard_merge_round_trip_is_byte_identical(
        self, store_url, tasks, golden
    ):
        for i in range(2):
            partial = SweepRunner(
                max_workers=1, store=store_url, executor=ShardedExecutor(i, 2)
            ).run(tasks)
            assert not partial.complete or i == 1
        merged = SweepRunner(
            max_workers=1, store=store_url, executor=MergeExecutor()
        ).run(tasks)
        assert merged.complete
        assert [e.key for e in merged.entries] == [t.resolved_key() for t in tasks]
        assert _run_bytes(merged) == _run_bytes(golden)
        store = open_store(store_url)
        assert len(store.list()) == len(tasks)
        assert len(store.list_manifests()) == 2

    def test_corrupt_blob_is_quarantined_and_recomputed(
        self, store_url, tasks, golden
    ):
        SweepRunner(max_workers=1, store=store_url).run(tasks)
        store = open_store(store_url)
        victim = task_cache_key(tasks[0])
        store.put(victim, b"\x80\x04 torn write")
        result = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert result.cache_hits == len(tasks) - 1
        assert result.cache_corruptions == 1
        assert store.list_quarantined() == [victim]
        assert _run_bytes(result) == _run_bytes(golden)
        # The rewrite healed the entry: no corruption on the next pass.
        third = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert third.cache_hits == len(tasks)
        assert third.cache_corruptions == 0

    def test_merge_reports_corruptions_quarantined_by_shards(
        self, store_url, tasks
    ):
        """A merged result's ``cache_corruptions`` covers what *any* shard
        evicted, not just the merging process's own (clean) probe."""
        for i in range(2):
            SweepRunner(
                max_workers=1, store=store_url, executor=ShardedExecutor(i, 2)
            ).run(tasks)
        store = open_store(store_url)
        victim = task_cache_key(tasks[0])  # owned by shard 0
        store.put(victim, b"not a pickle")
        # Shard 0 reruns: quarantines the torn entry, recomputes the task
        # and records the eviction in its manifest.
        rerun = SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        assert rerun.cache_corruptions == 1
        merged = SweepRunner(
            max_workers=1, store=store_url, executor=MergeExecutor()
        ).run(tasks)
        assert merged.complete
        assert merged.cache_corruptions == 1

    def test_resume_after_lost_blob_reruns_only_that_task(self, store_url, tasks):
        runner = SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2)
        )
        runner.run(tasks)
        store = open_store(store_url)
        owned = [t for i, t in enumerate(tasks) if i % 2 == 0]
        lost = owned[1]
        assert store.delete(task_cache_key(lost))
        events = []
        SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2),
            progress=lambda done, total, e: events.append(e),
        ).run(tasks)
        executed = [e.key for e in events if not e.from_cache]
        assert executed == [lost.resolved_key()]


# --------------------------------------------------------------------- #
# URL dispatch and runner resolution
# --------------------------------------------------------------------- #
class TestOpenStore:
    def test_file_scheme_and_bare_path(self, tmp_path):
        for url in (f"file://{tmp_path}", str(tmp_path)):
            store = open_store(url)
            assert isinstance(store, LocalFSStore)
            assert store.root == tmp_path

    def test_memory_scheme_is_shared_per_name(self):
        try:
            a = open_store("memory://shared-test")
            b = open_store("memory://shared-test")
            c = open_store("memory://other-test")
            assert a is b and a is not c
        finally:
            MemoryStore.reset("shared-test")
            MemoryStore.reset("other-test")

    def test_s3_scheme(self):
        store = open_store("s3+http://example.invalid:9000/bucket/prefix")
        assert isinstance(store, HTTPObjectStore)
        assert store.base == "http://example.invalid:9000"
        assert store.prefix == "bucket/prefix/"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StoreError, match="unknown store scheme"):
            open_store("ftp://host/path")

    def test_auto_selects_default_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "auto"))
        store = open_store("auto")
        assert store.root == tmp_path / "auto"

    def test_resolve_precedence(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_URL", f"file://{tmp_path / 'env'}")
        try:
            explicit = resolve_store(store="memory://precedence")
            assert isinstance(explicit, MemoryStore)
            via_cache_dir = resolve_store(cache_dir=tmp_path / "dir")
            assert via_cache_dir.root == tmp_path / "dir"
            via_env = resolve_store()
            assert via_env.root == tmp_path / "env"
            monkeypatch.delenv("REPRO_STORE_URL")
            assert resolve_store() is None
        finally:
            MemoryStore.reset("precedence")

    def test_runner_picks_up_store_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_URL", f"file://{tmp_path / 'envcache'}")
        runner = SweepRunner(max_workers=1)
        assert isinstance(runner.store, LocalFSStore)
        assert runner.cache_dir == tmp_path / "envcache"

    def test_store_instance_passes_through(self, tmp_path):
        store = LocalFSStore(tmp_path)
        assert resolve_store(store=store) is store
        assert SweepRunner(max_workers=1, store=store).store is store


class TestDefaultCacheDir:
    def test_explicit_env_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "explicit"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "explicit"

    def test_xdg_cache_home_honoured(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"

    def test_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / ".cache" / "repro" / "sweeps"


# --------------------------------------------------------------------- #
# Tools: parse_age / mirror / prune
# --------------------------------------------------------------------- #
class TestTools:
    @pytest.mark.parametrize(
        "text,seconds",
        [("90s", 90.0), ("45m", 2700.0), ("12h", 43200.0), ("30d", 2592000.0),
         ("2w", 1209600.0), ("7", 604800.0), ("1.5h", 5400.0)],
    )
    def test_parse_age(self, text, seconds):
        assert parse_age(text) == seconds

    @pytest.mark.parametrize("bad", ["", "x", "-3d", "3y", "d"])
    def test_parse_age_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_age(bad)

    def test_mirror_copies_blobs_and_manifests(self, tmp_path):
        src = LocalFSStore(tmp_path / "src")
        dst = LocalFSStore(tmp_path / "dst")
        src.put("a", b"1")
        src.put("b", b"22")
        src.write_manifest("m", {"x": 1})
        dst.put("a", b"1")  # already present: skipped
        stats = mirror(src, dst)
        assert stats.blobs_copied == 1 and stats.blobs_skipped == 1
        assert stats.manifests_copied == 1
        assert dst.get("b") == b"22"
        assert dst.read_manifest("m") == {"x": 1}

    def test_prune_respects_age_and_clears_quarantine(self, tmp_path):
        store = LocalFSStore(tmp_path)
        store.put("old", b"x")
        store.put("new", b"y")
        old_path = store.blob_path("old")
        stale = time.time() - 10 * 86400
        os.utime(old_path, (stale, stale))
        store.put("corrupt", b"z")
        store.quarantine("corrupt")
        stats = prune(store, parse_age("7d"))
        assert stats.blobs_removed == 1 and stats.kept == 1
        assert stats.quarantined_removed == 1
        assert store.list() == ["new"]
        assert store.list_quarantined() == []

    def test_prune_dry_run_deletes_nothing(self, tmp_path):
        store = LocalFSStore(tmp_path)
        store.put("k", b"x")
        stats = prune(store, 0.0, now=time.time() + 10, dry_run=True)
        assert stats.blobs_removed == 1
        assert store.exists("k")


# --------------------------------------------------------------------- #
# HTTP specifics
# --------------------------------------------------------------------- #
class TestHTTPStore:
    def test_prefixes_are_isolated(self, server):
        a = open_store(server.store_url("iso-a"))
        b = open_store(server.store_url("iso-b"))
        a.put("k", b"a")
        b.put("k", b"b")
        assert a.get("k") == b"a"
        assert b.get("k") == b"b"
        assert a.list() == ["k"] and b.list() == ["k"]

    def test_stat_reports_mtime(self, server):
        store = open_store(server.store_url("stat-test"))
        store.put("k", b"abc")
        stat = store.stat("k")
        assert stat.size == 3
        assert stat.mtime is not None and abs(stat.mtime - time.time()) < 120

    def test_listing_paginates_past_one_page(self):
        """Real S3 truncates listings at 1000 keys; the client must follow
        IsTruncated/NextContinuationToken to a complete enumeration."""
        with ObjectStoreServer(page_size=3) as tiny_pages:
            store = open_store(tiny_pages.store_url("paged"))
            keys = [f"k{i:02d}" for i in range(8)]
            for key in keys:
                store.put(key, b"x")
            assert store.list() == keys
            stats = store.stats()
            assert stats.blobs == 8

    def test_unreachable_endpoint_is_store_error(self):
        store = HTTPObjectStore("s3+http://127.0.0.1:1/nothing", timeout=0.2, retries=0)
        with pytest.raises(StoreError):
            store.get("k")

    def test_bad_url_rejected(self):
        with pytest.raises(StoreError, match="s3\\+http"):
            HTTPObjectStore("http://host/bucket")
        with pytest.raises(StoreError, match="no host"):
            HTTPObjectStore("s3+http://")


# --------------------------------------------------------------------- #
# CLI: --store threading and the store command group
# --------------------------------------------------------------------- #
class TestStoreCLI:
    def test_sweep_shard_merge_through_object_store(self, server, capsys):
        """The acceptance path: shard 0/2 + 1/2 against the HTTP fake,
        merged with ``sweep merge --store s3+http://…``, byte-identical to
        a single-process run, with ``store stats`` seeing the blobs."""
        url = server.store_url("cli-acceptance")
        assert main(["sweep", "--workload", "3", "--scale", "0.01",
                     "--workers", "1"]) == 0
        golden = capsys.readouterr().out
        for shard in ("1/2", "2/2"):
            assert main(["sweep", "--workload", "3", "--scale", "0.01",
                         "--store", url, "--shard", shard]) == 0
            capsys.readouterr()
        assert main(["sweep", "merge", "--workload", "3", "--scale", "0.01",
                     "--store", url]) == 0
        merged = capsys.readouterr().out
        assert merged == golden, "merged remote-store output diverged"
        assert main(["store", "stats", url]) == 0
        stats_out = capsys.readouterr().out
        assert "blobs:       6" in stats_out
        assert "manifests:   2" in stats_out

    def test_store_and_cache_dir_are_mutually_exclusive(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workload", "3", "--scale", "0.01",
                  "--store", "memory://x", "--cache-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_shard_accepts_store_env(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_STORE_URL", f"file://{tmp_path / 'env'}")
        assert main(["sweep", "--workload", "3", "--scale", "0.01",
                     "--shard", "1/2"]) == 0
        assert "shard run finished" in capsys.readouterr().out
        assert (tmp_path / "env" / "manifests").is_dir()

    def test_push_pull_round_trip(self, tmp_path, server, capsys):
        local = tmp_path / "local"
        url = server.store_url("pushpull")
        store = LocalFSStore(local)
        store.put("deadbeef", b"blob")
        store.write_manifest("m", {"x": 1})
        assert main(["store", "push", str(local), url]) == 0
        assert "copied 1 blob(s)" in capsys.readouterr().out
        pulled = tmp_path / "pulled"
        assert main(["store", "pull", url, str(pulled)]) == 0
        capsys.readouterr()
        mirrored = LocalFSStore(pulled)
        assert mirrored.get("deadbeef") == b"blob"
        assert mirrored.read_manifest("m") == {"x": 1}

    def test_prune_cli(self, tmp_path, capsys):
        store = LocalFSStore(tmp_path)
        store.put("k", b"x")
        assert main(["store", "prune", str(tmp_path), "--older-than", "30d"]) == 0
        assert "removed 0 blob(s)" in capsys.readouterr().out
        assert main(["store", "prune", str(tmp_path), "--older-than", "0s"]) == 0
        capsys.readouterr()
        assert store.list() == []

    def test_bad_age_is_clean_error(self, tmp_path, capsys):
        assert main(["store", "prune", str(tmp_path), "--older-than", "soon"]) == 2
        assert "invalid age" in capsys.readouterr().err

    def test_missing_url_is_clean_error(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE_URL", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "stats"])
        assert excinfo.value.code == 2
        assert "REPRO_STORE_URL" in capsys.readouterr().err

    def test_unknown_scheme_is_clean_error(self, capsys):
        assert main(["store", "stats", "gopher://x"]) == 2
        assert "unknown store scheme" in capsys.readouterr().err

    def test_serve_on_busy_port_is_clean_error(self, server, capsys):
        assert main(["store", "serve", "--host", server.host,
                     "--port", str(server.port)]) == 2
        assert "cannot bind" in capsys.readouterr().err
