"""Tests for the pluggable result-store subsystem (:mod:`repro.store`).

The heart of this module is a backend-interchangeability suite: every test
parametrised over ``store_url`` runs identically against a local directory
(:class:`LocalFSStore`), the in-process :class:`MemoryStore` and an
:class:`HTTPObjectStore` talking to the in-process S3-compatible fake — the
same sweep must yield byte-identical results through all three, including
shard → merge round-trips and corrupt-blob quarantine.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import time

import pytest

from repro.cli import main
from repro.experiments.executors import MergeExecutor, ShardedExecutor
from repro.experiments.sweep import SweepRunner, SweepTask, task_cache_key
from repro.store import (
    BlobIntegrityError,
    HTTPObjectStore,
    LocalFSStore,
    MemoryStore,
    StoreError,
    default_cache_dir,
    gc,
    mirror,
    open_store,
    parse_age,
    prune,
    repair,
    resolve_store,
    unwrap_blob,
    verify,
    wrap_blob,
)
from repro.store.fake import ObjectStoreServer
from repro.workloads.cirne import CirneWorkloadModel

BACKENDS = ("localfs", "memory", "http")


@pytest.fixture(scope="module")
def server():
    with ObjectStoreServer() as srv:
        yield srv


def _slug(text: str) -> str:
    return re.sub(r"\W+", "-", text).strip("-")[-80:]


@pytest.fixture(params=BACKENDS)
def store_url(request, tmp_path, server):
    """A fresh store URL per test, for every backend."""
    slug = _slug(request.node.nodeid)
    if request.param == "localfs":
        yield f"file://{tmp_path / 'store'}"
    elif request.param == "memory":
        yield f"memory://{slug}"
        MemoryStore.reset(slug)
    else:
        yield server.store_url(slug)


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=40, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.0, median_runtime_s=1800.0, seed=11, name="store_test",
    ).generate()


@pytest.fixture(scope="module")
def tasks(workload):
    """Five tasks so a 2-way shard split is uneven (3 + 2)."""
    maxsd = [
        SweepTask(
            workload=workload, policy="sd_policy", key=f"MAXSD {m}", seed=0,
            kwargs={"runtime_model": "ideal", "max_slowdown": float(m),
                    "sharing_factor": 0.5},
        )
        for m in (5, 10, 50, 100)
    ]
    return [
        SweepTask(workload=workload, policy="static_backfill", key="static",
                  seed=0, kwargs={"runtime_model": "ideal"})
    ] + maxsd


@pytest.fixture(scope="module")
def golden(tasks):
    """The uncached single-process result every backend must reproduce."""
    return SweepRunner(max_workers=1).run(tasks)


def _run_bytes(result):
    """Canonical pickle bytes per run, with the legitimately
    non-deterministic fields (the run's own wall-clock timings) zeroed."""
    out = {}
    for entry in result.entries:
        clone = pickle.loads(pickle.dumps(entry.run))
        clone.wall_clock_seconds = 0.0
        clone.phases = {}
        out[entry.key] = pickle.dumps(clone)
    return out


# --------------------------------------------------------------------- #
# Protocol semantics, per backend
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_blob_roundtrip(self, store_url):
        store = open_store(store_url)
        assert store.get("k1") is None
        assert not store.exists("k1")
        store.put("k1", b"payload")
        assert store.get("k1") == b"payload"
        assert store.exists("k1")
        store.put("k1", b"replaced")  # overwrite is an atomic replace
        assert store.get("k1") == b"replaced"
        assert store.list() == ["k1"]
        assert store.delete("k1") is True
        assert store.delete("k1") is False
        assert store.list() == []

    def test_list_filters_by_prefix(self, store_url):
        store = open_store(store_url)
        for key in ("aa1", "aa2", "bb1"):
            store.put(key, b"x")
        assert store.list("aa") == ["aa1", "aa2"]
        assert store.list() == ["aa1", "aa2", "bb1"]

    def test_manifest_roundtrip(self, store_url):
        store = open_store(store_url)
        assert store.read_manifest("m1") is None
        store.write_manifest("m1", {"shard": 1, "tasks": ["a", "b"]})
        assert store.read_manifest("m1") == {"shard": 1, "tasks": ["a", "b"]}
        store.write_manifest("m2", {"shard": 2})
        assert store.list_manifests() == ["m1", "m2"]
        assert store.list_manifests("m1") == ["m1"]
        assert store.delete_manifest("m1") is True
        assert store.list_manifests() == ["m2"]

    def test_manifests_do_not_leak_into_blob_namespace(self, store_url):
        store = open_store(store_url)
        store.put("blob", b"x")
        store.write_manifest("doc", {"a": 1})
        assert store.list() == ["blob"]
        assert store.list_manifests() == ["doc"]

    def test_quarantine_moves_blob_aside(self, store_url):
        store = open_store(store_url)
        store.put("bad", b"garbage")
        store.quarantine("bad")
        assert store.get("bad") is None
        assert store.list() == []
        assert store.list_quarantined() == ["bad"]
        assert store.delete_quarantined("bad") is True
        assert store.list_quarantined() == []

    def test_stat_and_stats(self, store_url):
        store = open_store(store_url)
        store.put("k", b"12345")
        store.write_manifest("m", {"a": 1})
        stat = store.stat("k")
        assert stat is not None and stat.size == 5
        assert store.stat("missing") is None
        stats = store.stats()
        assert stats.blobs == 1 and stats.blob_bytes == 5
        assert stats.manifests == 1 and stats.manifest_bytes > 0
        assert stats.quarantined == 0

    def test_same_url_sees_same_objects(self, store_url):
        open_store(store_url).put("shared", b"v")
        assert open_store(store_url).get("shared") == b"v"

    def test_stats_uses_listing_metadata_not_per_object_stats(self, store_url):
        """``stats()`` over N objects must not fan out N ``_stat`` probes —
        on the HTTP backend that was one HEAD round-trip per object."""
        store = open_store(store_url)
        for key in ("s1", "s2", "s3"):
            store.put(key, b"12345")
        store.write_manifest("m", {"a": 1})

        def banned(name):  # pragma: no cover - only fires on regression
            raise AssertionError(f"per-object _stat({name!r}) during stats()")

        store._stat = banned
        stats = store.stats()
        assert stats.blobs == 3 and stats.blob_bytes == 15
        assert stats.manifests == 1

    def test_interrupted_quarantine_is_idempotent(self):
        """A failed delete must not double-count the blob or lose the first
        evidence capture; re-quarantining finishes the job."""

        class FlakyDeleteStore(MemoryStore):
            fail_deletes = False

            def _delete(self, name):
                if self.fail_deletes:
                    raise StoreError(f"cannot delete {name!r}: injected")
                return super()._delete(name)

        store = FlakyDeleteStore("flaky-quarantine")
        store.put("bad", b"original evidence")
        store.fail_deletes = True
        with pytest.raises(StoreError, match="stays visible to readers"):
            store.quarantine("bad")
        # Half-quarantined: evidence captured, original still live…
        assert store.get("bad") == b"original evidence"
        assert store.list_quarantined() == ["bad"]
        # …but stats counts it once, as quarantined, not as a live blob too.
        stats = store.stats()
        assert stats.quarantined == 1 and stats.blobs == 0
        # A retry completes the move without rewriting the first capture.
        store.fail_deletes = False
        store.put("bad", b"rewritten by a racing reader")
        store.quarantine("bad")
        assert store.get("bad") is None
        assert store.get_quarantined("bad") == b"original evidence"

    def test_quarantine_of_missing_blob_is_noop(self, store_url):
        store = open_store(store_url)
        store.quarantine("never-existed")
        assert store.list_quarantined() == []

    def test_quarantine_never_rewrites_existing_evidence(self, store_url):
        """Contract shared by every backend (LocalFS renames, the default
        copies): the first evidence capture wins across re-quarantines."""
        store = open_store(store_url)
        store.put_quarantined("bad", b"first capture")
        store.put("bad", b"later corruption")
        store.quarantine("bad")
        assert store.get("bad") is None
        assert store.get_quarantined("bad") == b"first capture"


# --------------------------------------------------------------------- #
# Backend interchangeability for sweeps
# --------------------------------------------------------------------- #
class TestSweepInterchangeability:
    def test_sweep_is_byte_identical_through_every_backend(
        self, store_url, tasks, golden
    ):
        first = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert first.cache_hits == 0
        second = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert second.cache_hits == len(tasks)
        assert _run_bytes(first) == _run_bytes(golden)
        assert _run_bytes(second) == _run_bytes(golden)

    def test_shard_merge_round_trip_is_byte_identical(
        self, store_url, tasks, golden
    ):
        for i in range(2):
            partial = SweepRunner(
                max_workers=1, store=store_url, executor=ShardedExecutor(i, 2)
            ).run(tasks)
            assert not partial.complete or i == 1
        merged = SweepRunner(
            max_workers=1, store=store_url, executor=MergeExecutor()
        ).run(tasks)
        assert merged.complete
        assert [e.key for e in merged.entries] == [t.resolved_key() for t in tasks]
        assert _run_bytes(merged) == _run_bytes(golden)
        store = open_store(store_url)
        assert len(store.list()) == len(tasks)
        assert len(store.list_manifests()) == 2

    def test_corrupt_blob_is_quarantined_and_recomputed(
        self, store_url, tasks, golden
    ):
        SweepRunner(max_workers=1, store=store_url).run(tasks)
        store = open_store(store_url)
        victim = task_cache_key(tasks[0])
        store.put(victim, b"\x80\x04 torn write")
        result = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert result.cache_hits == len(tasks) - 1
        assert result.cache_corruptions == 1
        assert store.list_quarantined() == [victim]
        assert _run_bytes(result) == _run_bytes(golden)
        # The rewrite healed the entry: no corruption on the next pass.
        third = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert third.cache_hits == len(tasks)
        assert third.cache_corruptions == 0

    def test_merge_reports_corruptions_quarantined_by_shards(
        self, store_url, tasks
    ):
        """A merged result's ``cache_corruptions`` covers what *any* shard
        evicted, not just the merging process's own (clean) probe."""
        for i in range(2):
            SweepRunner(
                max_workers=1, store=store_url, executor=ShardedExecutor(i, 2)
            ).run(tasks)
        store = open_store(store_url)
        victim = task_cache_key(tasks[0])  # owned by shard 0
        store.put(victim, b"not a pickle")
        # Shard 0 reruns: quarantines the torn entry, recomputes the task
        # and records the eviction in its manifest.
        rerun = SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        assert rerun.cache_corruptions == 1
        merged = SweepRunner(
            max_workers=1, store=store_url, executor=MergeExecutor()
        ).run(tasks)
        assert merged.complete
        assert merged.cache_corruptions == 1

    def test_resume_after_lost_blob_reruns_only_that_task(self, store_url, tasks):
        runner = SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2)
        )
        runner.run(tasks)
        store = open_store(store_url)
        owned = [t for i, t in enumerate(tasks) if i % 2 == 0]
        lost = owned[1]
        assert store.delete(task_cache_key(lost))
        events = []
        SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2),
            progress=lambda done, total, e: events.append(e),
        ).run(tasks)
        executed = [e.key for e in events if not e.from_cache]
        assert executed == [lost.resolved_key()]


# --------------------------------------------------------------------- #
# URL dispatch and runner resolution
# --------------------------------------------------------------------- #
class TestOpenStore:
    def test_file_scheme_and_bare_path(self, tmp_path):
        for url in (f"file://{tmp_path}", str(tmp_path)):
            store = open_store(url)
            assert isinstance(store, LocalFSStore)
            assert store.root == tmp_path

    def test_memory_scheme_is_shared_per_name(self):
        try:
            a = open_store("memory://shared-test")
            b = open_store("memory://shared-test")
            c = open_store("memory://other-test")
            assert a is b and a is not c
        finally:
            MemoryStore.reset("shared-test")
            MemoryStore.reset("other-test")

    def test_s3_scheme(self):
        store = open_store("s3+http://example.invalid:9000/bucket/prefix")
        assert isinstance(store, HTTPObjectStore)
        assert store.base == "http://example.invalid:9000"
        assert store.prefix == "bucket/prefix/"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StoreError, match="unknown store scheme"):
            open_store("ftp://host/path")

    def test_auto_selects_default_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "auto"))
        store = open_store("auto")
        assert store.root == tmp_path / "auto"

    def test_resolve_precedence(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_URL", f"file://{tmp_path / 'env'}")
        try:
            explicit = resolve_store(store="memory://precedence")
            assert isinstance(explicit, MemoryStore)
            via_cache_dir = resolve_store(cache_dir=tmp_path / "dir")
            assert via_cache_dir.root == tmp_path / "dir"
            via_env = resolve_store()
            assert via_env.root == tmp_path / "env"
            monkeypatch.delenv("REPRO_STORE_URL")
            assert resolve_store() is None
        finally:
            MemoryStore.reset("precedence")

    def test_runner_picks_up_store_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_URL", f"file://{tmp_path / 'envcache'}")
        runner = SweepRunner(max_workers=1)
        assert isinstance(runner.store, LocalFSStore)
        assert runner.cache_dir == tmp_path / "envcache"

    def test_store_instance_passes_through(self, tmp_path):
        store = LocalFSStore(tmp_path)
        assert resolve_store(store=store) is store
        assert SweepRunner(max_workers=1, store=store).store is store


class TestDefaultCacheDir:
    def test_explicit_env_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "explicit"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "explicit"

    def test_xdg_cache_home_honoured(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"

    def test_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / ".cache" / "repro" / "sweeps"


# --------------------------------------------------------------------- #
# Tools: parse_age / mirror / prune
# --------------------------------------------------------------------- #
class TestTools:
    @pytest.mark.parametrize(
        "text,seconds",
        [("90s", 90.0), ("45m", 2700.0), ("12h", 43200.0), ("30d", 2592000.0),
         ("2w", 1209600.0), ("7", 604800.0), ("1.5h", 5400.0)],
    )
    def test_parse_age(self, text, seconds):
        assert parse_age(text) == seconds

    @pytest.mark.parametrize("bad", ["", "x", "-3d", "3y", "d"])
    def test_parse_age_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_age(bad)

    def test_mirror_copies_blobs_and_manifests(self, tmp_path):
        src = LocalFSStore(tmp_path / "src")
        dst = LocalFSStore(tmp_path / "dst")
        src.put("a", b"1")
        src.put("b", b"22")
        src.write_manifest("m", {"x": 1})
        dst.put("a", b"1")  # already present: skipped
        stats = mirror(src, dst)
        assert stats.blobs_copied == 1 and stats.blobs_skipped == 1
        assert stats.manifests_copied == 1
        assert dst.get("b") == b"22"
        assert dst.read_manifest("m") == {"x": 1}

    def test_prune_respects_age_and_clears_quarantine(self, tmp_path):
        store = LocalFSStore(tmp_path)
        store.put("old", b"x")
        store.put("new", b"y")
        old_path = store.blob_path("old")
        stale = time.time() - 10 * 86400
        os.utime(old_path, (stale, stale))
        store.put("corrupt", b"z")
        store.quarantine("corrupt")
        stats = prune(store, parse_age("7d"))
        assert stats.blobs_removed == 1 and stats.kept == 1
        assert stats.quarantined_removed == 1
        assert store.list() == ["new"]
        assert store.list_quarantined() == []

    def test_prune_dry_run_deletes_nothing(self, tmp_path):
        store = LocalFSStore(tmp_path)
        store.put("k", b"x")
        stats = prune(store, 0.0, now=time.time() + 10, dry_run=True)
        assert stats.blobs_removed == 1
        assert store.exists("k")

    def test_prune_never_evicts_manifest_referenced_blobs(self, store_url, tasks):
        """Age-only eviction must not break a live sharded sweep: blobs a
        shard manifest references survive any --older-than cutoff."""
        SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        store = open_store(store_url)
        store.put("orphan", b"unreferenced")
        referenced = sorted(
            task_cache_key(t) for i, t in enumerate(tasks) if i % 2 == 0
        )
        stats = prune(store, parse_age("7d"), now=time.time() + 30 * 86400)
        assert stats.blobs_removed == 1  # the orphan only
        assert stats.kept_referenced == len(referenced)
        assert store.list() == referenced
        merged = SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(1, 2)
        ).run(tasks)
        assert len(merged) == len(tasks)

    def test_prune_clears_quarantine_even_with_unreadable_manifest(self, tmp_path):
        """An unreadable manifest aborts the blob pass (pruning must not
        guess what it pinned) but quarantine cleanup is independent of
        references and happens first."""
        store = LocalFSStore(tmp_path)
        store.put("blob1234", b"x")
        store.put("bad12345", b"corrupt")
        store.quarantine("bad12345")
        store.manifest_dir.mkdir(parents=True, exist_ok=True)
        (store.manifest_dir / "torn.json").write_bytes(b"{not json")
        with pytest.raises(StoreError, match="unreadable manifest"):
            prune(store, 0.0, now=time.time() + 10)
        assert store.list_quarantined() == []  # cleared before the abort
        assert store.exists("blob1234")  # blob pass never ran

    def test_mirror_copies_quarantined_evidence(self, tmp_path):
        """``store push`` must not launder a corrupt cache: quarantined
        entries travel with the blobs."""
        src = LocalFSStore(tmp_path / "src")
        dst = LocalFSStore(tmp_path / "dst")
        src.put("bad12345", b"the corrupt bytes")
        src.quarantine("bad12345")
        src.put("good1234", b"fine")
        stats = mirror(src, dst)
        assert stats.blobs_copied == 1
        assert stats.quarantined_copied == 1 and stats.quarantined_skipped == 0
        assert dst.list_quarantined() == ["bad12345"]
        assert dst.get_quarantined("bad12345") == b"the corrupt bytes"
        again = mirror(src, dst)
        assert again.quarantined_copied == 0 and again.quarantined_skipped == 1


# --------------------------------------------------------------------- #
# Blob integrity envelopes
# --------------------------------------------------------------------- #
class TestEnvelope:
    def test_roundtrip(self):
        data, digest = wrap_blob(b"payload")
        payload, got = unwrap_blob(data)
        assert payload == b"payload"
        assert got == digest == hashlib.sha256(b"payload").hexdigest()

    def test_legacy_blob_passes_through(self):
        raw = pickle.dumps({"format": 2})
        assert unwrap_blob(raw) == (raw, None)

    def test_flipped_payload_byte_rejected(self):
        enveloped, _ = wrap_blob(b"payload")
        tampered = enveloped[:-1] + bytes([enveloped[-1] ^ 0xFF])
        with pytest.raises(BlobIntegrityError, match="digest mismatch"):
            unwrap_blob(tampered)

    def test_truncation_rejected(self):
        with pytest.raises(BlobIntegrityError, match="truncated"):
            unwrap_blob(wrap_blob(b"payload")[0][:-2])

    def test_missing_header_terminator_rejected(self):
        with pytest.raises(BlobIntegrityError, match="no header terminator"):
            unwrap_blob(b"repro-blob/1 sha256=" + b"0" * 64)

    def test_future_envelope_version_rejected(self):
        data = b"repro-blob/99 sha256=" + b"0" * 64 + b" size=1\nx"
        with pytest.raises(BlobIntegrityError, match="version 99"):
            unwrap_blob(data)

    def test_forged_digest_rejected_even_when_payload_parses(self):
        payload = pickle.dumps({"format": 2})
        forged = (
            b"repro-blob/1 sha256=" + b"0" * 64
            + f" size={len(payload)}\n".encode() + payload
        )
        with pytest.raises(BlobIntegrityError, match="digest mismatch"):
            unwrap_blob(forged)


# --------------------------------------------------------------------- #
# Lifecycle: gc / verify / repair, across every backend
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_gc_never_deletes_manifest_referenced_blobs(
        self, store_url, tasks, golden
    ):
        """The acceptance path: gc on a half-finished sharded sweep deletes
        zero referenced blobs and the later merge is byte-identical."""
        SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        store = open_store(store_url)
        store.put("orphan", b"unreferenced bytes")
        owned = sorted(
            task_cache_key(t) for i, t in enumerate(tasks) if i % 2 == 0
        )
        stats = gc(store, grace_seconds=0.0, now=time.time() + 86400)
        assert stats.blobs_deleted == 1  # just the orphan, despite its age
        assert stats.kept_referenced == len(owned)
        assert stats.manifests_walked == 1
        assert store.list() == owned
        SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(1, 2)
        ).run(tasks)
        merged = SweepRunner(
            max_workers=1, store=store_url, executor=MergeExecutor()
        ).run(tasks)
        assert merged.complete
        assert _run_bytes(merged) == _run_bytes(golden)

    def test_gc_dry_run_mutates_nothing(self, store_url, tasks):
        SweepRunner(
            max_workers=1, store=store_url, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        store = open_store(store_url)
        store.put("orphan", b"unreferenced bytes")
        before = store._entries()
        stats = gc(store, grace_seconds=0.0, now=time.time() + 86400, dry_run=True)
        assert stats.blobs_deleted == 1
        assert store._entries() == before

    def test_gc_grace_protects_young_unreferenced_blobs(self, store_url):
        store = open_store(store_url)
        store.put("young", b"just written")
        stats = gc(store, grace_seconds=3600.0)
        assert stats.blobs_deleted == 0 and stats.kept_young == 1
        stats = gc(store, grace_seconds=0.0, now=time.time() + 10)
        assert stats.blobs_deleted == 1
        assert store.list() == []

    def test_gc_leaves_quarantined_evidence_alone(self, store_url):
        store = open_store(store_url)
        store.put("bad", b"evidence")
        store.quarantine("bad")
        gc(store, grace_seconds=0.0, now=time.time() + 86400)
        assert store.list_quarantined() == ["bad"]

    def test_gc_sweeps_stale_tmp_files(self, tmp_path):
        """Crashed ``_write``s leak ``*.tmp`` files forever; gc reaps the
        ones older than the grace period (blob and manifest namespaces)."""
        store = LocalFSStore(tmp_path)
        store.put("young", b"x")
        store.write_manifest("m", {"tasks": []})
        stale = time.time() - 7200
        for leak in (tmp_path / "tmpleak1.tmp", store.manifest_dir / "tmpleak2.tmp"):
            leak.write_bytes(b"crashed write")
            os.utime(leak, (stale, stale))
        fresh = tmp_path / "tmpfresh.tmp"  # an in-flight write: must survive
        fresh.write_bytes(b"in flight")
        stats = gc(store)  # default 1h grace
        assert stats.temp_deleted == 2
        assert not (tmp_path / "tmpleak1.tmp").exists()
        assert not (store.manifest_dir / "tmpleak2.tmp").exists()
        assert fresh.exists()
        assert store.get("young") == b"x"

    def test_gc_refuses_unreadable_manifest(self, tmp_path):
        store = LocalFSStore(tmp_path)
        store.put("blob", b"x")
        (store.manifest_dir).mkdir(parents=True, exist_ok=True)
        (store.manifest_dir / "torn.json").write_bytes(b"{not json")
        with pytest.raises(StoreError, match="unreadable manifest"):
            gc(store, grace_seconds=0.0, now=time.time() + 86400)
        assert store.exists("blob")

    # ------------------------------------------------------------------ #
    def test_verify_quarantines_flipped_byte_blob(self, store_url, tasks):
        SweepRunner(max_workers=1, store=store_url).run(tasks)
        store = open_store(store_url)
        victim = task_cache_key(tasks[0])
        data = store.get(victim)
        store.put(victim, data[:-1] + bytes([data[-1] ^ 0xFF]))
        report = verify(store)
        assert not report.clean
        assert [entry["key"] for entry in report.corrupt] == [victim]
        assert report.quarantined == [victim]
        assert report.ok == len(tasks) - 1
        assert store.get(victim) is None
        assert store.list_quarantined() == [victim]
        again = verify(store)
        assert again.clean and again.checked == len(tasks) - 1

    def test_verify_dry_run_reports_without_quarantining(self, store_url, tasks):
        SweepRunner(max_workers=1, store=store_url).run(tasks)
        store = open_store(store_url)
        victim = task_cache_key(tasks[1])
        tampered = store.get(victim)[:-1]
        store.put(victim, tampered)
        report = verify(store, dry_run=True)
        assert [entry["key"] for entry in report.corrupt] == [victim]
        assert report.quarantined == []
        assert store.get(victim) == tampered

    def test_cache_load_verifies_digest_on_read(self, store_url, tasks, golden):
        """A forged digest is caught by the read path even when the pickled
        payload itself still loads — the sweep recomputes the task."""
        SweepRunner(max_workers=1, store=store_url).run(tasks)
        store = open_store(store_url)
        victim = task_cache_key(tasks[2])
        payload, _ = unwrap_blob(store.get(victim))
        forged = (
            b"repro-blob/1 sha256=" + b"0" * 64
            + f" size={len(payload)}\n".encode() + payload
        )
        store.put(victim, forged)
        result = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert result.cache_hits == len(tasks) - 1
        assert result.cache_corruptions == 1
        assert store.list_quarantined() == [victim]
        assert _run_bytes(result) == _run_bytes(golden)

    def test_pre_envelope_blobs_still_load(self, store_url, tasks, golden):
        """Back-compat: blobs written before the envelope existed are
        ordinary cache hits, and verify counts them as legacy."""
        SweepRunner(max_workers=1, store=store_url).run(tasks)
        store = open_store(store_url)
        for key in store.list():
            payload, _ = unwrap_blob(store.get(key))
            store.put(key, payload)  # the pre-envelope on-disk layout
        result = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert result.cache_hits == len(tasks)
        assert result.cache_corruptions == 0
        assert _run_bytes(result) == _run_bytes(golden)
        report = verify(store)
        assert report.clean
        assert report.legacy == len(tasks) and report.ok == 0

    def test_verify_reports_drift_against_manifest_digest(self, tmp_path):
        store = LocalFSStore(tmp_path)
        key = "a" * 8
        blob, digest = wrap_blob(b"original payload")
        store.put(key, blob)
        store.write_manifest(
            "sweep.shard-1-of-1",
            {"tasks": [{"cache_key": key, "digest": digest, "status": "done"}]},
        )
        replacement, other_digest = wrap_blob(b"recomputed payload")
        store.put(key, replacement)
        report = verify(store)
        assert report.clean  # drift is informational, never quarantined
        assert report.drift == [
            {"key": key, "manifest": digest, "blob": other_digest}
        ]
        assert store.get(key) == replacement

    def test_verify_reports_missing_referenced_blobs(self, tmp_path):
        store = LocalFSStore(tmp_path)
        store.write_manifest(
            "sweep.shard-1-of-1",
            {"tasks": [{"cache_key": "gone" * 2, "status": "done"}]},
        )
        report = verify(store)
        assert report.missing_referenced == ["gone" * 2]

    # ------------------------------------------------------------------ #
    def test_repair_refetches_quarantined_blobs_from_mirror(
        self, store_url, tasks, tmp_path
    ):
        SweepRunner(max_workers=1, store=store_url).run(tasks)
        store = open_store(store_url)
        mirror_store = LocalFSStore(tmp_path / "mirror")
        mirror(store, mirror_store)
        victim = task_cache_key(tasks[0])
        good = store.get(victim)
        store.put(victim, good[:-3])  # truncate: size check fails
        assert verify(store).quarantined == [victim]
        stats = repair(store, mirror_store)
        assert stats.repaired == 1 and stats.repaired_keys == [victim]
        assert stats.missing_in_source == 0 and stats.still_corrupt == 0
        assert store.get(victim) == good
        assert store.list_quarantined() == []
        rerun = SweepRunner(max_workers=1, store=store_url).run(tasks)
        assert rerun.cache_hits == len(tasks)

    def test_repair_leaves_unfixable_keys_quarantined(self, tmp_path):
        store = LocalFSStore(tmp_path / "store")
        source = LocalFSStore(tmp_path / "mirror")
        for key, mirrored in (("missing1", None), ("badcopy1", b"x")):
            store.put(key, b"corrupt")
            store.quarantine(key)
            if mirrored is not None:
                source.put(key, wrap_blob(mirrored)[0][:-1])  # corrupt there too
        stats = repair(store, source)
        assert stats.repaired == 0
        assert stats.missing_in_source == 1 and stats.still_corrupt == 1
        assert store.list_quarantined() == ["badcopy1", "missing1"]

    def test_repair_dry_run_changes_nothing(self, tmp_path):
        store = LocalFSStore(tmp_path / "store")
        source = LocalFSStore(tmp_path / "mirror")
        blob, _ = wrap_blob(b"payload")
        source.put("fixme12", blob)
        store.put("fixme12", blob[:-1])
        store.quarantine("fixme12")
        stats = repair(store, source, dry_run=True)
        assert stats.repaired == 1
        assert store.get("fixme12") is None
        assert store.list_quarantined() == ["fixme12"]


# --------------------------------------------------------------------- #
# HTTP specifics
# --------------------------------------------------------------------- #
class TestHTTPStore:
    def test_prefixes_are_isolated(self, server):
        a = open_store(server.store_url("iso-a"))
        b = open_store(server.store_url("iso-b"))
        a.put("k", b"a")
        b.put("k", b"b")
        assert a.get("k") == b"a"
        assert b.get("k") == b"b"
        assert a.list() == ["k"] and b.list() == ["k"]

    def test_stat_reports_mtime(self, server):
        store = open_store(server.store_url("stat-test"))
        store.put("k", b"abc")
        stat = store.stat("k")
        assert stat.size == 3
        assert stat.mtime is not None and abs(stat.mtime - time.time()) < 120

    def test_listing_paginates_past_one_page(self):
        """Real S3 truncates listings at 1000 keys; the client must follow
        IsTruncated/NextContinuationToken to a complete enumeration."""
        with ObjectStoreServer(page_size=3) as tiny_pages:
            store = open_store(tiny_pages.store_url("paged"))
            keys = [f"k{i:02d}" for i in range(8)]
            for key in keys:
                store.put(key, b"x")
            assert store.list() == keys
            stats = store.stats()
            assert stats.blobs == 8

    def test_missing_content_length_is_unknown_size(self, monkeypatch):
        """A HEAD without a usable Content-Length must report the size as
        unknown (None), not 0 — 0 corrupts prune/stats byte totals."""
        store = HTTPObjectStore("s3+http://example.invalid/bucket")
        for headers in (
            {"Last-Modified": "Wed, 21 Oct 2015 07:28:00 GMT"},
            {"Content-Length": "garbage"},
            {"Content-Length": "-1"},
        ):
            monkeypatch.setattr(
                store, "_request", lambda method, url, data=None, h=headers: (b"", h)
            )
            stat = store._stat("k")
            assert stat is not None
            assert stat.size is None, f"size not unknown for {headers}"

    def test_listing_carries_size_and_mtime(self, server):
        store = open_store(server.store_url("entries-meta"))
        store.put("k", b"12345")
        entries = store._entries()
        assert len(entries) == 1
        name, stat = entries[0]
        assert name == "k.pkl"
        assert stat is not None and stat.size == 5
        assert stat.mtime is not None and abs(stat.mtime - time.time()) < 120

    def test_unreachable_endpoint_is_store_error(self):
        store = HTTPObjectStore("s3+http://127.0.0.1:1/nothing", timeout=0.2, retries=0)
        with pytest.raises(StoreError):
            store.get("k")

    def test_bad_url_rejected(self):
        with pytest.raises(StoreError, match="s3\\+http"):
            HTTPObjectStore("http://host/bucket")
        with pytest.raises(StoreError, match="no host"):
            HTTPObjectStore("s3+http://")


# --------------------------------------------------------------------- #
# CLI: --store threading and the store command group
# --------------------------------------------------------------------- #
class TestStoreCLI:
    def test_sweep_shard_merge_through_object_store(self, server, capsys):
        """The acceptance path: shard 0/2 + 1/2 against the HTTP fake,
        merged with ``sweep merge --store s3+http://…``, byte-identical to
        a single-process run, with ``store stats`` seeing the blobs."""
        url = server.store_url("cli-acceptance")
        assert main(["sweep", "--workload", "3", "--scale", "0.01",
                     "--workers", "1"]) == 0
        golden = capsys.readouterr().out
        for shard in ("1/2", "2/2"):
            assert main(["sweep", "--workload", "3", "--scale", "0.01",
                         "--store", url, "--shard", shard]) == 0
            capsys.readouterr()
        assert main(["sweep", "merge", "--workload", "3", "--scale", "0.01",
                     "--store", url]) == 0
        merged = capsys.readouterr().out
        assert merged == golden, "merged remote-store output diverged"
        assert main(["store", "stats", url]) == 0
        stats_out = capsys.readouterr().out
        assert "blobs:       6" in stats_out
        assert "manifests:   2" in stats_out

    def test_store_and_cache_dir_are_mutually_exclusive(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workload", "3", "--scale", "0.01",
                  "--store", "memory://x", "--cache-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_shard_accepts_store_env(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_STORE_URL", f"file://{tmp_path / 'env'}")
        assert main(["sweep", "--workload", "3", "--scale", "0.01",
                     "--shard", "1/2"]) == 0
        assert "shard run finished" in capsys.readouterr().out
        assert (tmp_path / "env" / "manifests").is_dir()

    def test_push_pull_round_trip(self, tmp_path, server, capsys):
        local = tmp_path / "local"
        url = server.store_url("pushpull")
        store = LocalFSStore(local)
        store.put("deadbeef", b"blob")
        store.write_manifest("m", {"x": 1})
        assert main(["store", "push", str(local), url]) == 0
        assert "copied 1 blob(s)" in capsys.readouterr().out
        pulled = tmp_path / "pulled"
        assert main(["store", "pull", url, str(pulled)]) == 0
        capsys.readouterr()
        mirrored = LocalFSStore(pulled)
        assert mirrored.get("deadbeef") == b"blob"
        assert mirrored.read_manifest("m") == {"x": 1}

    def test_prune_cli(self, tmp_path, capsys):
        store = LocalFSStore(tmp_path)
        store.put("k", b"x")
        assert main(["store", "prune", str(tmp_path), "--older-than", "30d"]) == 0
        assert "removed 0 blob(s)" in capsys.readouterr().out
        assert main(["store", "prune", str(tmp_path), "--older-than", "0s"]) == 0
        capsys.readouterr()
        assert store.list() == []

    def test_bad_age_is_clean_error(self, tmp_path, capsys):
        assert main(["store", "prune", str(tmp_path), "--older-than", "soon"]) == 2
        assert "invalid age" in capsys.readouterr().err

    def test_gc_cli_dry_run_then_delete(self, tmp_path, capsys):
        store = LocalFSStore(tmp_path)
        store.put("orphan99", b"xx")
        stale = time.time() - 7200
        os.utime(store.blob_path("orphan99"), (stale, stale))
        assert main(["store", "gc", str(tmp_path), "--dry-run"]) == 0
        assert "would delete 1 unreferenced blob(s)" in capsys.readouterr().out
        assert store.exists("orphan99")
        assert main(["store", "gc", str(tmp_path)]) == 0
        assert "deleted 1 unreferenced blob(s)" in capsys.readouterr().out
        assert not store.exists("orphan99")

    def test_gc_cli_bad_grace_is_clean_error(self, tmp_path, capsys):
        assert main(["store", "gc", str(tmp_path), "--grace", "soon"]) == 2
        assert "invalid age" in capsys.readouterr().err

    def test_verify_cli_json_exit_code_and_quarantine(self, tmp_path, capsys):
        store = LocalFSStore(tmp_path)
        good, _ = wrap_blob(b"payload")
        store.put("goodblob", good)
        store.put("badblob1", good[:-1])  # truncated
        assert main(["store", "verify", str(tmp_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        assert [entry["key"] for entry in report["corrupt"]] == ["badblob1"]
        assert report["ok"] == 1
        assert store.list_quarantined() == ["badblob1"]
        store.delete_quarantined("badblob1")
        assert main(["store", "verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "corrupt:  0" in out and "ok:       1" in out

    def test_repair_cli_round_trip(self, tmp_path, capsys):
        store = LocalFSStore(tmp_path / "store")
        source = LocalFSStore(tmp_path / "mirror")
        blob, _ = wrap_blob(b"payload")
        source.put("fixme123", blob)
        store.put("fixme123", blob[:-1])
        store.quarantine("fixme123")
        assert main(["store", "repair", str(tmp_path / "store"),
                     "--from", str(tmp_path / "mirror")]) == 0
        assert "repaired 1 quarantined blob(s)" in capsys.readouterr().out
        assert store.get("fixme123") == blob
        assert store.list_quarantined() == []
        # A mirror that cannot supply the key leaves it quarantined, exit 1.
        store.put("lost1234", b"corrupt")
        store.quarantine("lost1234")
        assert main(["store", "repair", str(tmp_path / "store"),
                     "--from", str(tmp_path / "mirror")]) == 1
        assert "1 missing in the mirror" in capsys.readouterr().out

    def test_missing_url_is_clean_error(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE_URL", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "stats"])
        assert excinfo.value.code == 2
        assert "REPRO_STORE_URL" in capsys.readouterr().err

    def test_unknown_scheme_is_clean_error(self, capsys):
        assert main(["store", "stats", "gopher://x"]) == 2
        assert "unknown store scheme" in capsys.readouterr().err

    def test_serve_on_busy_port_is_clean_error(self, server, capsys):
        assert main(["store", "serve", "--host", server.host,
                     "--port", str(server.port)]) == 2
        assert "cannot bind" in capsys.readouterr().err
