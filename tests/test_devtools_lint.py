"""Tests for the in-repo static-analysis pass (``repro-sdpolicy lint``).

The fixture tree under ``tests/lint_fixtures/`` mirrors the scoped source
layout (``simulator/``, ``core/``, ``workloads/``, ``experiments/``), so
each deliberately-violating snippet exercises exactly the rule scope it
would hit in the real tree.  Covered here: every rule firing, the
``# repro: allow[rule-id]`` suppression path, the suppression-hygiene
meta rules, the ``--json`` report schema, the rule catalog, and the
acceptance property that the repository's own ``src`` and ``tests`` trees
lint clean.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.engine import LintError, lint_paths, scope_parts
from repro.devtools.lint.registry import all_rules

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent


def fixture_report(*names, only=None):
    return lint_paths([str(FIXTURES / name) for name in names], only_rules=only)


def rules_at(report, rule):
    """(line, col) of every active finding for one rule."""
    return [(f.line, f.col) for f in report.findings if f.rule == rule]


def suppressed_rules(report):
    return {finding.rule for finding, _ in report.suppressed}


# --------------------------------------------------------------------- #
# Rule firing + suppression, one fixture per family
# --------------------------------------------------------------------- #
class TestDeterminismRules:
    def test_unseeded_random_fires(self):
        report = fixture_report("simulator/unseeded.py")
        lines = {line for line, _ in rules_at(report, "det-unseeded-random")}
        # the from-import of shuffle, and both calls on line 10
        assert lines == {6, 10}
        assert len(rules_at(report, "det-unseeded-random")) == 3

    def test_seeded_generator_not_flagged(self):
        # allowed_generator (lines 13-15) goes through default_rng: clean
        report = fixture_report("simulator/unseeded.py")
        assert not any(13 <= f.line <= 15 for f in report.findings)

    def test_unseeded_random_suppressed(self):
        report = fixture_report("simulator/unseeded.py")
        assert "det-unseeded-random" in suppressed_rules(report)
        suppressed_lines = {f.line for f, _ in report.suppressed}
        assert 20 in suppressed_lines

    def test_wallclock_fires_and_suppresses(self):
        report = fixture_report("core/wallclock.py")
        assert len(rules_at(report, "det-wallclock")) == 2  # time.time, uuid4
        assert "det-wallclock" in suppressed_rules(report)

    def test_set_order_fires_and_suppresses(self):
        report = fixture_report("workloads/set_order.py")
        assert rules_at(report, "det-set-order") == [(6, 16)]
        assert "det-set-order" in suppressed_rules(report)

    def test_scoped_rules_silent_outside_scope(self):
        # Identical random.random() call, but under clean/ — no scope match.
        report = fixture_report("clean/clean_module.py")
        assert report.ok
        assert not report.suppressed


class TestStoreDisciplineRules:
    def test_direct_io_and_pickle_fire(self):
        report = fixture_report("experiments/cache_io.py")
        assert rules_at(report, "store-direct-io") == [(9, 10)]
        assert rules_at(report, "store-pickle") == [(10, 16)]

    def test_both_rules_suppressible(self):
        report = fixture_report("experiments/cache_io.py")
        assert suppressed_rules(report) == {"store-pickle", "store-direct-io"}


class TestExceptionRules:
    def test_bare_swallow_and_broad_fire(self):
        report = fixture_report("experiments/swallow.py")
        assert rules_at(report, "exc-bare") == [(7, 5)]
        # `except Exception: pass` is both swallowed and broad
        assert rules_at(report, "exc-swallow") == [(14, 5)]
        assert {line for line, _ in rules_at(report, "exc-broad")} == {14, 22}

    def test_reraise_not_flagged(self):
        report = fixture_report("experiments/swallow.py")
        assert 29 not in {f.line for f in report.findings}

    def test_swallow_suppressed(self):
        report = fixture_report("experiments/swallow.py")
        assert "exc-swallow" in suppressed_rules(report)


class TestObservabilityRules:
    def test_bare_print_fires(self):
        report = fixture_report("simulator/obs_print.py")
        assert rules_at(report, "obs-print") == [(9, 5)]

    def test_logging_not_flagged(self):
        report = fixture_report("simulator/obs_print.py")
        assert not any(12 <= f.line <= 13 for f in report.findings)

    def test_print_suppressed(self):
        report = fixture_report("simulator/obs_print.py")
        assert "obs-print" in suppressed_rules(report)

    def test_cli_and_renderers_exempt(self):
        # The real CLI drivers print by design; the rule must stay silent
        # there even though they are full of bare print() calls.
        report = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "cli.py")],
            only_rules=["obs-print"],
        )
        assert report.ok


class TestArchitectureRules:
    def test_realrun_import_fires(self):
        report = fixture_report("core/realrun_import.py")
        # import repro.realrun, import repro.realrun.emulator,
        # from repro.realrun.apps import ..., from repro import realrun
        lines = [line for line, _ in rules_at(report, "arch-realrun-import")]
        assert lines == [3, 4, 5, 6]

    def test_promoted_core_import_not_flagged(self):
        report = fixture_report("core/realrun_import.py")
        assert not any(9 <= f.line <= 12 for f in report.findings)

    def test_realrun_import_suppressed(self):
        report = fixture_report("core/realrun_import.py")
        assert "arch-realrun-import" in suppressed_rules(report)

    def test_rule_silent_outside_lower_scopes(self):
        # The realrun/ shims themselves re-export the promoted models;
        # the layering rule must not fire above the core/simulator layers.
        report = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "realrun")],
            only_rules=["arch-realrun-import"],
        )
        assert report.ok


# --------------------------------------------------------------------- #
# Meta rules (suppression hygiene, parse failures)
# --------------------------------------------------------------------- #
class TestMetaRules:
    def test_unknown_rule_in_suppression(self):
        report = fixture_report("meta/unknown_rule.py")
        assert rules_at(report, "lint-unknown-rule") == [(3, 1)]

    def test_unused_suppression(self):
        report = fixture_report("simulator/unused_suppression.py")
        assert rules_at(report, "lint-unused-suppression") == [(3, 1)]

    def test_missing_justification(self):
        report = fixture_report("simulator/missing_justification.py")
        assert rules_at(report, "lint-missing-justification") == [(7, 1)]
        # the violation itself is still suppressed, only the hygiene warns
        assert "det-unseeded-random" in suppressed_rules(report)

    def test_parse_error_is_a_finding_not_a_crash(self):
        report = fixture_report("broken_syntax.py")
        assert [f.rule for f in report.findings] == ["lint-parse-error"]

    def test_unknown_rule_id_is_invocation_error(self):
        with pytest.raises(LintError, match="no-such-rule"):
            lint_paths([str(FIXTURES / "clean/clean_module.py")],
                       only_rules=["no-such-rule"])


# --------------------------------------------------------------------- #
# Engine mechanics
# --------------------------------------------------------------------- #
class TestEngine:
    def test_rule_filter_restricts_findings(self):
        report = fixture_report(
            "experiments/swallow.py", only=["exc-bare"]
        )
        assert {f.rule for f in report.findings} == {"exc-bare"}

    def test_fixture_marker_strips_scope_prefix(self):
        parts = scope_parts(Path("tests/lint_fixtures/simulator/x.py"))
        assert parts == ("simulator", "x.py")

    def test_multiline_suppression_comment_matches(self, tmp_path):
        scoped = tmp_path / "lint_fixtures" / "simulator"
        scoped.mkdir(parents=True)
        target = scoped / "multi.py"
        target.write_text(
            "import random\n"
            "\n"
            "\n"
            "def f():\n"
            "    # repro: allow[det-unseeded-random] a justification long\n"
            "    # enough to span two comment lines above the finding\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        report = lint_paths([str(target)])
        assert report.ok
        assert suppressed_rules(report) == {"det-unseeded-random"}

    def test_fixture_tree_excluded_from_directory_walks(self):
        report = lint_paths([str(FIXTURES.parent)])
        assert not any("lint_fixtures" in f.path for f in report.findings)

    def test_repo_tree_lints_clean(self):
        report = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert report.ok, "\n".join(f.render() for f in report.findings)
        # every surviving suppression in the real tree carries a reason
        assert all(s.justification for _, s in report.suppressed)


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
class TestCLI:
    def test_exit_codes(self, capsys):
        assert lint_main([str(FIXTURES / "clean/clean_module.py")]) == 0
        assert lint_main([str(FIXTURES / "experiments/swallow.py")]) == 1
        assert lint_main([str(FIXTURES / "missing-dir")]) == 2
        capsys.readouterr()

    def test_json_report_schema(self, capsys):
        code = lint_main(["--json", str(FIXTURES / "experiments/swallow.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["files"] == 1
        assert set(payload["summary"]["by_rule"]) == {
            "exc-bare", "exc-swallow", "exc-broad"
        }
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "rule", "severity",
                                "message"}
        assert all(s["justification"] for s in payload["suppressed"])

    def test_list_rules_covers_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_list_rules_json(self, capsys):
        assert lint_main(["--list-rules", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        ids = {entry["id"] for entry in catalog["rules"]}
        assert ids == {rule.id for rule in all_rules()}
        for entry in catalog["rules"]:
            assert entry["severity"] in ("error", "warning")
            assert entry["rationale"]

    def test_rules_flag(self, capsys):
        code = lint_main(["--rules", "exc-bare", "--json",
                          str(FIXTURES / "experiments/swallow.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["summary"]["by_rule"]) == {"exc-bare"}
