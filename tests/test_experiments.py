"""Tests for the experiment harness (runner + per-figure experiments).

These run at a very small scale so the whole file stays within a few tens of
seconds; the benchmarks regenerate the figures at a more faithful scale.
"""

from __future__ import annotations

import math

import pytest

from repro.core.sd_policy import SDPolicyScheduler
from repro.experiments.paper import (
    MAXSD_SETTINGS,
    figure_1_to_3_maxsd_sweep,
    figure_4_to_6_heatmaps,
    figure_7_daily_series,
    figure_8_runtime_models,
    table_1_workloads,
    table_2_application_mix,
)
from repro.experiments.runner import cluster_for, make_scheduler, run_workload
from repro.schedulers.backfill import BackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.workloads.cirne import CirneWorkloadModel


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=120, system_nodes=24, cpus_per_node=8, max_job_nodes=8,
        target_load=1.05, median_runtime_s=1800.0, seed=17, name="exp_test",
    ).generate()


class TestRunner:
    def test_cluster_for_matches_workload(self, workload):
        cluster = cluster_for(workload)
        assert cluster.num_nodes == workload.system_nodes
        assert cluster.cpus_per_node == workload.cpus_per_node

    def test_cluster_for_odd_node_width(self, workload):
        workload_odd = CirneWorkloadModel(
            num_jobs=5, system_nodes=4, cpus_per_node=7, max_job_nodes=2, seed=1
        ).generate()
        assert cluster_for(workload_odd).cpus_per_node == 7

    def test_make_scheduler_by_name(self):
        assert isinstance(make_scheduler("fcfs"), FCFSScheduler)
        assert isinstance(make_scheduler("static_backfill"), BackfillScheduler)
        assert isinstance(make_scheduler("sd_policy", max_slowdown=5.0), SDPolicyScheduler)

    def test_make_scheduler_passthrough_and_factory(self):
        instance = BackfillScheduler()
        assert make_scheduler(instance) is instance
        assert isinstance(make_scheduler(lambda: FCFSScheduler()), FCFSScheduler)

    def test_make_scheduler_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("round_robin")

    def test_run_workload_returns_metrics(self, workload):
        run = run_workload(workload, "static_backfill")
        assert run.metrics.num_jobs == len(workload)
        assert run.metrics.makespan > 0
        assert run.wall_clock_seconds >= 0
        assert run.workload_name == workload.name

    def test_run_workload_sd_policy_stats(self, workload):
        run = run_workload(workload, "sd_policy", max_slowdown=math.inf)
        assert "malleable_starts" in run.scheduler_stats
        assert run.metrics.num_jobs == len(workload)

    def test_runtime_model_by_name(self, workload):
        run = run_workload(workload, "sd_policy", runtime_model="worst_case",
                           max_slowdown=math.inf)
        assert run.metrics.num_jobs == len(workload)

    def test_malleable_fraction_zero_disables_malleability(self, workload):
        run = run_workload(workload, "sd_policy", malleable_fraction=0.0,
                           max_slowdown=math.inf)
        assert run.metrics.malleable_scheduled == 0


class TestFigureExperiments:
    def test_maxsd_sweep_structure(self, workload):
        result = figure_1_to_3_maxsd_sweep(
            workload, maxsd_settings={"MAXSD 10": 10.0, "DynAVGSD": "dynamic"}
        )
        assert set(result.data["normalized"]) == {"MAXSD 10", "DynAVGSD"}
        for values in result.data["normalized"].values():
            assert set(values) == {"makespan", "avg_response_time", "avg_slowdown"}
            assert values["avg_slowdown"] <= 1.05  # SD-Policy should not lose badly
        assert "Figure 3" in result.text

    def test_heatmap_experiment(self, workload):
        result = figure_4_to_6_heatmaps(workload, max_slowdown=10.0)
        grids = result.data["grids"]
        assert set(grids) == {"slowdown", "runtime", "wait"}
        assert "Figure 4" in result.text

    def test_daily_series_experiment(self, workload):
        result = figure_7_daily_series(workload, max_slowdown=10.0)
        rows = result.data["rows"]
        assert rows, "expected at least one day of data"
        assert {"day", "static_slowdown", "sd_slowdown", "malleable_jobs"} <= set(rows[0])
        assert 0.0 <= result.data["malleable_fraction"] <= 1.0

    def test_runtime_model_experiment(self, workload):
        result = figure_8_runtime_models({"wl": workload}, max_slowdown="dynamic")
        entry = result.data["per_workload"]["wl"]
        assert set(entry) == {"ideal", "worst_case"}
        # The worst-case model can only be slower or equal for each metric.
        assert entry["worst_case"]["avg_slowdown"] >= entry["ideal"]["avg_slowdown"] - 0.15

    def test_table_1(self):
        result = table_1_workloads(scale=0.01, workload_ids=(3,))
        assert 3 in result.data["rows"]
        assert "Table 1" in result.text

    def test_table_2(self):
        result = table_2_application_mix(scale=0.2)
        shares = result.data["shares"]
        assert abs(sum(shares.values()) - 1.0) < 1e-6
        assert "PILS" in shares

    def test_maxsd_settings_match_paper_labels(self):
        assert set(MAXSD_SETTINGS) == {"MAXSD 5", "MAXSD 10", "MAXSD 50", "MAXSD inf", "DynAVGSD"}
