"""Tests for the parallel sweep runner (:mod:`repro.experiments.sweep`)."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.experiments.paper import figure_1_to_3_maxsd_sweep, table_1_workloads
from repro.experiments.sweep import (
    SweepError,
    SweepRunner,
    SweepTask,
    _canonical_kwargs,
    fingerprint_workload,
    task_cache_key,
)
from repro.workloads.cirne import CirneWorkloadModel


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=60, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.0, median_runtime_s=1800.0, seed=7, name="sweep_test",
    ).generate()


@pytest.fixture(scope="module")
def tasks(workload):
    """A static baseline plus two SD-Policy MAX_SLOWDOWN points."""
    maxsd_tasks = [
        SweepTask(
            workload=workload, policy="sd_policy", key=label, label=label, seed=0,
            kwargs={"runtime_model": "ideal", "max_slowdown": setting,
                    "sharing_factor": 0.5},
        )
        for label, setting in {"MAXSD 10": 10.0, "MAXSD inf": math.inf}.items()
    ]
    return [
        SweepTask(workload=workload, policy="static_backfill", key="static_backfill",
                  seed=0, kwargs={"runtime_model": "ideal"})
    ] + maxsd_tasks


class TestSerialParallelEquivalence:
    def test_identical_metrics_for_same_seeds(self, tasks):
        serial = SweepRunner(max_workers=1).run(tasks)
        parallel = SweepRunner(max_workers=2).run(tasks)
        assert set(serial.runs) == set(parallel.runs)
        for key in serial.runs:
            assert (
                serial[key].metrics.as_dict() == parallel[key].metrics.as_dict()
            ), f"serial/parallel divergence for {key}"

    def test_parallel_preserves_per_job_results(self, tasks):
        serial = SweepRunner(max_workers=1).run(tasks)
        parallel = SweepRunner(max_workers=2).run(tasks)
        for key in serial.runs:
            s_jobs = {j.job_id: (j.start_time, j.end_time) for j in serial[key].jobs}
            p_jobs = {j.job_id: (j.start_time, j.end_time) for j in parallel[key].jobs}
            assert s_jobs == p_jobs

    def test_entries_preserve_task_order(self, tasks):
        result = SweepRunner(max_workers=2).run(tasks)
        assert [e.key for e in result.entries] == [t.resolved_key() for t in tasks]


class TestCache:
    def test_cache_hit_skips_resimulation(self, tasks, tmp_path):
        first = SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        assert first.cache_hits == 0
        second = SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        assert second.cache_hits == len(tasks)
        assert all(e.from_cache for e in second.entries)
        for key in first.runs:
            assert first[key].metrics.as_dict() == second[key].metrics.as_dict()

    def test_cache_key_sensitive_to_config_and_workload(self, workload):
        base = SweepTask(workload=workload, policy="sd_policy", key="a", seed=0,
                         kwargs={"max_slowdown": 10.0})
        other_cfg = SweepTask(workload=workload, policy="sd_policy", key="a", seed=0,
                              kwargs={"max_slowdown": 50.0})
        other_seed = SweepTask(workload=workload, policy="sd_policy", key="a", seed=1,
                               kwargs={"max_slowdown": 10.0})
        assert task_cache_key(base) != task_cache_key(other_cfg)
        assert task_cache_key(base) != task_cache_key(other_seed)
        other_workload = CirneWorkloadModel(
            num_jobs=50, system_nodes=16, cpus_per_node=8, max_job_nodes=8, seed=8,
            name="sweep_test_b",
        ).generate()
        assert task_cache_key(base) != task_cache_key(
            SweepTask(workload=other_workload, policy="sd_policy", key="a", seed=0,
                      kwargs={"max_slowdown": 10.0})
        )

    def test_fingerprint_is_deterministic(self, workload):
        assert fingerprint_workload(workload) == fingerprint_workload(workload)

    def test_cache_key_stable_for_equal_model_objects(self, workload):
        """Object-valued kwargs must not leak memory addresses into the key."""
        from repro.core.runtime_model import WorstCaseRuntimeModel

        def make():
            return SweepTask(
                workload=workload, policy="sd_policy", key="a", seed=0,
                kwargs={"max_slowdown": 10.0, "estimation_model": WorstCaseRuntimeModel()},
            )

        assert task_cache_key(make()) == task_cache_key(make())

    def test_corrupt_cache_entry_is_a_miss(self, tasks, tmp_path):
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        runner.run(tasks)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        result = SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        assert result.cache_hits == 0

    def test_corrupt_cache_entry_is_quarantined_and_counted(self, tasks, tmp_path):
        """A torn pickle is moved aside (never retried) and counted
        distinctly from an ordinary miss, so one bad write cannot poison
        every subsequent (sharded) run."""
        SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"\x80\x04 torn write")
        second = SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        assert second.cache_hits == 0
        assert second.cache_corruptions == len(tasks)
        quarantined = list(tmp_path.glob("*.pkl.corrupt"))
        assert len(quarantined) == len(tasks)
        # The rerun rewrote good entries: the third run is all hits, no
        # corruption is re-reported, and the quarantine files are inert.
        third = SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        assert third.cache_hits == len(tasks)
        assert third.cache_corruptions == 0

    def test_stale_format_is_miss_not_corruption(self, tasks, tmp_path):
        import pickle as _pickle

        from repro.store import unwrap_blob, wrap_blob

        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        runner.run(tasks)
        for path in tmp_path.glob("*.pkl"):
            payload = _pickle.loads(unwrap_blob(path.read_bytes())[0])
            payload["format"] = -1
            path.write_bytes(wrap_blob(_pickle.dumps(payload))[0])
        result = SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        assert result.cache_hits == 0
        assert result.cache_corruptions == 0
        assert not list(tmp_path.glob("*.pkl.corrupt"))

    def test_progress_callback_reports_cache_hits(self, tasks, tmp_path):
        SweepRunner(max_workers=1, cache_dir=tmp_path).run(tasks)
        events = []
        SweepRunner(
            max_workers=1,
            cache_dir=tmp_path,
            progress=lambda done, total, entry: events.append(
                (done, total, entry.key, entry.from_cache)
            ),
        ).run(tasks)
        assert [e[0] for e in events] == list(range(1, len(tasks) + 1))
        assert all(total == len(tasks) for _, total, _, _ in events)
        assert all(hit for _, _, _, hit in events)


class TestCanonicalKwargs:
    """Cache keys must be stable for non-finite floats (NaN ≠ NaN and the
    non-standard ``Infinity``/``NaN`` JSON tokens used to leak into keys)."""

    def test_no_nonstandard_json_tokens(self):
        text = _canonical_kwargs(
            {"a": math.inf, "b": -math.inf, "c": math.nan, "d": [math.inf]}
        )
        assert "Infinity" not in text
        assert "NaN" not in text

    def test_nan_keys_are_stable(self, workload):
        def make():
            return SweepTask(
                workload=workload, policy="sd_policy", key="a", seed=0,
                kwargs={"max_slowdown": float("nan")},
            )

        assert task_cache_key(make()) == task_cache_key(make())

    def test_nonfinite_values_stay_distinct(self, workload):
        def key_for(value):
            return task_cache_key(
                SweepTask(workload=workload, policy="sd_policy", key="a", seed=0,
                          kwargs={"max_slowdown": value})
            )

        keys = [key_for(v) for v in (math.inf, -math.inf, math.nan, 10.0)]
        assert len(set(keys)) == len(keys)

    def test_nested_nonfinite_canonicalised(self):
        a = _canonical_kwargs({"grid": {"cut": [math.inf, 1.0]}, "w": (math.nan,)})
        b = _canonical_kwargs({"grid": {"cut": [float("inf"), 1.0]},
                               "w": [float("nan")]})
        assert a == b

    def test_inf_token_does_not_collide_with_string(self, workload):
        """A float inf and the *string* a spec would hold pre-decode must not
        share a cache key."""
        as_float = SweepTask(workload=workload, policy="sd_policy", key="a", seed=0,
                             kwargs={"max_slowdown": math.inf})
        as_string = SweepTask(workload=workload, policy="sd_policy", key="a", seed=0,
                              kwargs={"max_slowdown": "inf"})
        assert task_cache_key(as_float) != task_cache_key(as_string)

    def test_scenario_decoded_inf_matches_direct_inf(self, workload):
        """scenario.py's ``"inf"`` decoding and a directly-passed math.inf
        land on the same key, so sharded processes agree on cache paths."""
        from repro.experiments.scenario import decode_value

        direct = SweepTask(workload=workload, policy="sd_policy", key="a", seed=0,
                           kwargs={"max_slowdown": math.inf})
        decoded = SweepTask(workload=workload, policy="sd_policy", key="a", seed=0,
                            kwargs={"max_slowdown": decode_value("inf")})
        assert task_cache_key(direct) == task_cache_key(decoded)


class TestFailures:
    def test_serial_failure_surfaces_traceback(self, workload):
        bad = SweepTask(workload=workload, policy="no_such_policy", key="bad")
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(max_workers=1).run([bad])
        message = str(excinfo.value)
        assert "bad" in message
        assert "unknown policy" in message
        assert "Traceback" in message  # the original traceback, not a bare repr

    def test_parallel_failure_surfaces_worker_traceback(self, workload):
        tasks = [
            SweepTask(workload=workload, policy="fcfs", key="ok"),
            SweepTask(workload=workload, policy="no_such_policy", key="bad"),
        ]
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(max_workers=2).run(tasks)
        message = str(excinfo.value)
        assert "unknown policy" in message
        assert "worker traceback" in message
        assert "make_scheduler" in message  # frame from inside the worker

    def test_duplicate_keys_rejected(self, workload):
        tasks = [
            SweepTask(workload=workload, policy="fcfs", key="same"),
            SweepTask(workload=workload, policy="fcfs", key="same"),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            SweepRunner(max_workers=1).run(tasks)


class TestTaskDefaults:
    def test_derived_seed_is_deterministic(self, workload):
        a = SweepTask(workload=workload, policy="fcfs", key="k")
        b = SweepTask(workload=workload, policy="fcfs", key="k")
        assert a.resolved_seed() == b.resolved_seed()
        c = SweepTask(workload=workload, policy="fcfs", key="other")
        assert a.resolved_seed() != c.resolved_seed()

    def test_policy_run_is_picklable(self, workload):
        run = SweepRunner(max_workers=1).run(
            [SweepTask(workload=workload, policy="fcfs", key="p")]
        )["p"]
        clone = pickle.loads(pickle.dumps(run))
        assert clone.metrics.as_dict() == run.metrics.as_dict()


class TestPaperIntegration:
    def test_figure_1_to_3_accepts_runner(self, workload, tmp_path):
        runner = SweepRunner(max_workers=2, cache_dir=tmp_path)
        first = figure_1_to_3_maxsd_sweep(
            workload, maxsd_settings={"MAXSD 10": 10.0}, runner=runner
        )
        assert first.data["sweep_cache_hits"] == 0
        second = figure_1_to_3_maxsd_sweep(
            workload, maxsd_settings={"MAXSD 10": 10.0}, runner=runner
        )
        assert second.data["sweep_cache_hits"] == 2  # baseline + 1 setting
        assert first.data["normalized"] == second.data["normalized"]

    def test_table_1_accepts_runner(self, tmp_path):
        runner = SweepRunner(max_workers=2, cache_dir=tmp_path)
        result = table_1_workloads(scale=0.01, workload_ids=(3,), runner=runner)
        assert 3 in result.data["rows"]
        again = table_1_workloads(scale=0.01, workload_ids=(3,), runner=runner)
        assert again.data["rows"][3] == result.data["rows"][3]
