"""Tests for the Cirne / RICC-like / CEA-Curie-like workload generators,
scaling utilities, application assignment and the paper presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.applications import APPLICATION_MIX, application_shares, assign_applications
from repro.workloads.cirne import CirneWorkloadModel
from repro.workloads.presets import PAPER_WORKLOADS, build_workload, workload_5
from repro.workloads.scaling import scale_to_system, subsample
from repro.workloads.synthetic import CEACurieLikeModel, RICCLikeModel


class TestCirneModel:
    def test_job_count_and_bounds(self):
        wl = CirneWorkloadModel(num_jobs=200, system_nodes=64, max_job_nodes=16,
                                cpus_per_node=8, seed=1).generate()
        assert len(wl) == 200
        assert wl.max_job_nodes <= 16
        assert all(r.run_time > 0 for r in wl.records)
        assert all(r.requested_time >= r.run_time for r in wl.records)

    def test_deterministic_for_same_seed(self):
        a = CirneWorkloadModel(num_jobs=50, system_nodes=32, max_job_nodes=8, seed=3).generate()
        b = CirneWorkloadModel(num_jobs=50, system_nodes=32, max_job_nodes=8, seed=3).generate()
        assert [(r.submit_time, r.run_time, r.requested_procs) for r in a.records] == [
            (r.submit_time, r.run_time, r.requested_procs) for r in b.records
        ]

    def test_different_seeds_differ(self):
        a = CirneWorkloadModel(num_jobs=50, system_nodes=32, max_job_nodes=8, seed=3).generate()
        b = CirneWorkloadModel(num_jobs=50, system_nodes=32, max_job_nodes=8, seed=4).generate()
        assert [r.run_time for r in a.records] != [r.run_time for r in b.records]

    def test_exact_requests_mode(self):
        wl = CirneWorkloadModel(num_jobs=80, system_nodes=32, max_job_nodes=8,
                                exact_requests=True, seed=5).generate()
        assert all(r.requested_time == r.run_time for r in wl.records)
        assert wl.name == "cirne_ideal"

    def test_offered_load_near_target(self):
        wl = CirneWorkloadModel(num_jobs=600, system_nodes=64, max_job_nodes=16,
                                cpus_per_node=8, target_load=1.0, seed=9).generate()
        assert wl.offered_load() == pytest.approx(1.0, rel=0.35)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CirneWorkloadModel(num_jobs=0).generate()
        with pytest.raises(ValueError):
            CirneWorkloadModel(num_jobs=10, system_nodes=8, max_job_nodes=16).generate()
        with pytest.raises(ValueError):
            CirneWorkloadModel(num_jobs=10, target_load=0.0).generate()


class TestSyntheticModels:
    def test_ricc_like_shape(self):
        wl = RICCLikeModel(num_jobs=400, system_nodes=128, max_job_nodes=72, seed=2).generate()
        assert len(wl) == 400
        assert wl.cpus_per_node == 8
        nodes = [r.requested_nodes(8) for r in wl.records]
        assert max(nodes) <= 72
        # RICC is dominated by small jobs.
        assert np.mean([n == 1 for n in nodes]) > 0.4

    def test_cea_curie_like_shape(self):
        wl = CEACurieLikeModel(num_jobs=500, system_nodes=5040, seed=2).generate()
        nodes = [r.requested_nodes(16) for r in wl.records]
        assert max(nodes) <= 4988
        assert np.mean([n == 1 for n in nodes]) > 0.3

    def test_cea_curie_scaled_preserves_relative_sizes(self):
        full = CEACurieLikeModel(num_jobs=2000, seed=7)
        small = full.scaled(0.02)
        wl = small.generate()
        assert small.system_nodes == 100
        mean_rel = np.mean([r.requested_nodes(16) for r in wl.records]) / small.system_nodes
        # Mean relative job size stays small (a few percent), like the real log.
        assert mean_rel < 0.06

    def test_scaled_invalid_fraction(self):
        with pytest.raises(ValueError):
            CEACurieLikeModel().scaled(0.0)

    def test_deterministic(self):
        a = RICCLikeModel(num_jobs=50, seed=11).generate()
        b = RICCLikeModel(num_jobs=50, seed=11).generate()
        assert [r.run_time for r in a.records] == [r.run_time for r in b.records]


class TestScaling:
    def test_scale_to_system_preserves_relative_sizes(self, tiny_workload):
        scaled = scale_to_system(tiny_workload, target_nodes=8)
        assert scaled.system_nodes == 8
        assert scaled.max_job_nodes <= 8
        assert len(scaled) == len(tiny_workload)

    def test_scale_to_system_invalid(self, tiny_workload):
        with pytest.raises(ValueError):
            scale_to_system(tiny_workload, target_nodes=0)

    def test_subsample_fraction(self, tiny_workload):
        sub = subsample(tiny_workload, 0.5, seed=1)
        assert 0 < len(sub) < len(tiny_workload)

    def test_subsample_identity(self, tiny_workload):
        assert subsample(tiny_workload, 1.0) is tiny_workload

    def test_subsample_invalid(self, tiny_workload):
        with pytest.raises(ValueError):
            subsample(tiny_workload, 0.0)

    def test_subsample_compresses_time(self, tiny_workload):
        sub = subsample(tiny_workload, 0.25, seed=2, compress_time=True)
        assert sub.span <= tiny_workload.span


class TestApplications:
    def test_every_record_labelled(self, tiny_workload):
        labelled = assign_applications(tiny_workload)
        assert all(r.application is not None for r in labelled.records)

    def test_shares_roughly_match_table2(self):
        wl = CirneWorkloadModel(num_jobs=3000, system_nodes=64, max_job_nodes=16,
                                cpus_per_node=8, seed=21).generate()
        shares = application_shares(assign_applications(wl, seed=3))
        table2 = {m.name: m.share for m in APPLICATION_MIX}
        for app, expected in table2.items():
            assert shares.get(app, 0.0) == pytest.approx(expected, abs=0.08)

    def test_alya_prefers_small_long_jobs(self):
        wl = CirneWorkloadModel(num_jobs=4000, system_nodes=64, max_job_nodes=16,
                                cpus_per_node=8, seed=22).generate()
        labelled = assign_applications(wl, seed=4)
        alya = [r for r in labelled.records if r.application == "Alya"]
        others = [r for r in labelled.records if r.application != "Alya"]
        if alya:
            assert np.mean([r.requested_procs for r in alya]) <= np.mean(
                [r.requested_procs for r in others]
            )

    def test_deterministic_assignment(self, tiny_workload):
        a = assign_applications(tiny_workload, seed=9)
        b = assign_applications(tiny_workload, seed=9)
        assert [r.application for r in a.records] == [r.application for r in b.records]


class TestPresets:
    def test_paper_specs_match_table1(self):
        assert PAPER_WORKLOADS[1].num_jobs == 5000
        assert PAPER_WORKLOADS[4].num_jobs == 198509
        assert PAPER_WORKLOADS[4].system_nodes == 5040
        assert PAPER_WORKLOADS[5].system_nodes == 49

    @pytest.mark.parametrize("wid", [1, 2, 3, 4, 5])
    def test_build_scaled_workloads(self, wid):
        wl = build_workload(wid, scale=0.02)
        assert len(wl) > 0
        assert wl.max_job_nodes <= wl.system_nodes

    def test_build_unknown_id(self):
        with pytest.raises(ValueError):
            build_workload(9)

    def test_workload2_has_exact_requests(self):
        wl = build_workload(2, scale=0.02)
        assert all(r.requested_time == r.run_time for r in wl.records)

    def test_workload5_labelled_with_applications(self):
        wl = workload_5(scale=0.25)
        assert all(r.application for r in wl.records)
