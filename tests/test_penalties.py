"""Tests for slowdown penalties (Eq. 4) and the MAX_SLOWDOWN cut-offs."""

from __future__ import annotations

import math

import pytest

from repro.core.penalties import (
    DynamicAverageMaxSlowdown,
    StaticMaxSlowdown,
    mate_penalty,
    predicted_running_slowdown,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.simulation import Simulation
from tests.conftest import make_job


def _running_job(job_id=1, submit=0.0, start=100.0, req_time=1000.0, runtime=500.0):
    job = make_job(job_id=job_id, submit=submit, req_time=req_time, runtime=runtime)
    job.mark_started(start, [0])
    job.reconfigure(start, {0: 8}, speed=1.0)
    return job


class TestPredictedRunningSlowdown:
    def test_no_wait_slowdown_is_one(self):
        job = _running_job(submit=0.0, start=0.0)
        assert predicted_running_slowdown(job) == pytest.approx(1.0)

    def test_wait_increases_slowdown(self):
        job = _running_job(submit=0.0, start=1000.0, req_time=1000.0)
        assert predicted_running_slowdown(job) == pytest.approx(2.0)

    def test_real_runtime_variant(self):
        job = _running_job(submit=0.0, start=500.0, req_time=1000.0, runtime=500.0)
        assert predicted_running_slowdown(job, use_requested_time=False) == pytest.approx(2.0)

    def test_not_started_raises(self):
        with pytest.raises(ValueError):
            predicted_running_slowdown(make_job())


class TestMatePenalty:
    def test_equation_four(self):
        # p = (wait + increase + req) / req
        mate = _running_job(submit=0.0, start=200.0, req_time=1000.0)
        assert mate_penalty(mate, increase=300.0) == pytest.approx((200 + 300 + 1000) / 1000)

    def test_zero_increase(self):
        mate = _running_job(submit=0.0, start=0.0, req_time=1000.0)
        assert mate_penalty(mate, increase=0.0) == pytest.approx(1.0)

    def test_penalty_grows_with_wait(self):
        short_wait = _running_job(submit=0.0, start=10.0)
        long_wait = _running_job(submit=0.0, start=500.0)
        assert mate_penalty(long_wait, 100.0) > mate_penalty(short_wait, 100.0)

    def test_penalty_smaller_for_longer_requests(self):
        # Longer jobs absorb the same increase with less relative impact —
        # exactly why the heuristic prefers them as mates.
        short_req = _running_job(req_time=500.0)
        long_req = _running_job(req_time=5000.0)
        assert mate_penalty(long_req, 100.0) < mate_penalty(short_req, 100.0)

    def test_negative_increase_rejected(self):
        with pytest.raises(ValueError):
            mate_penalty(_running_job(), increase=-1.0)

    def test_unstarted_mate_rejected(self):
        with pytest.raises(ValueError):
            mate_penalty(make_job(), increase=0.0)


class TestStaticCutoff:
    def test_admits_below_threshold(self):
        cutoff = StaticMaxSlowdown(10.0)
        assert cutoff.admits(9.99)
        assert not cutoff.admits(10.0)
        assert not cutoff.admits(50.0)

    def test_infinite_threshold_admits_everything(self):
        cutoff = StaticMaxSlowdown(math.inf)
        assert cutoff.admits(1e12)
        assert cutoff.label == "MAXSD inf"

    def test_label(self):
        assert StaticMaxSlowdown(10).label == "MAXSD 10"

    def test_non_positive_value_rejected(self):
        with pytest.raises(ValueError):
            StaticMaxSlowdown(0.0)


class TestDynamicCutoff:
    def _sim_with_running(self, waits):
        cluster = Cluster(num_nodes=len(waits), sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, FCFSScheduler())
        for i, wait in enumerate(waits, start=1):
            job = make_job(job_id=i, submit=0.0, req_time=1000.0)
            sim.jobs[job.job_id] = job
            sim.pending.add(job)
            sim.now = wait
            sim.start_job_static(job)
        return sim

    def test_threshold_is_running_average(self):
        sim = self._sim_with_running([0.0, 1000.0])  # slowdowns 1.0 and 2.0
        cutoff = DynamicAverageMaxSlowdown()
        cutoff.update(sim)
        assert cutoff.threshold() == pytest.approx(1.5)

    def test_empty_system_threshold_is_infinite(self):
        cluster = Cluster(num_nodes=2, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, FCFSScheduler())
        cutoff = DynamicAverageMaxSlowdown()
        cutoff.update(sim)
        assert math.isinf(cutoff.threshold())

    def test_floor_applied(self):
        sim = self._sim_with_running([0.0])  # average would be exactly 1.0
        cutoff = DynamicAverageMaxSlowdown(floor=1.5)
        cutoff.update(sim)
        assert cutoff.threshold() == pytest.approx(1.5)

    def test_label(self):
        assert DynamicAverageMaxSlowdown().label == "DynAVGSD"
