"""Shared fixtures for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.schedulers.backfill import BackfillScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job
from repro.simulator.simulation import Simulation
from repro.workloads.cirne import CirneWorkloadModel
from repro.workloads.job_record import JobRecord, Workload


@pytest.fixture
def small_cluster() -> Cluster:
    """A 4-node cluster with 8 CPUs per node (2 sockets x 4 cores)."""
    return Cluster(num_nodes=4, sockets=2, cores_per_socket=4)


@pytest.fixture
def mn4_like_cluster() -> Cluster:
    """A MareNostrum4-like node geometry, small node count."""
    return Cluster(num_nodes=8, sockets=2, cores_per_socket=24)


def make_job(
    job_id: int = 1,
    submit: float = 0.0,
    nodes: int = 1,
    req_time: float = 3600.0,
    runtime: float = 1800.0,
    cpus_per_node: int = 8,
    malleable: bool = True,
    **kwargs,
) -> Job:
    """Concise job factory used across the suite."""
    return Job(
        job_id=job_id,
        submit_time=submit,
        requested_nodes=nodes,
        requested_time=req_time,
        static_runtime=runtime,
        cpus_per_node=cpus_per_node,
        malleable=malleable,
        **kwargs,
    )


@pytest.fixture
def job_factory():
    """Expose the job factory as a fixture."""
    return make_job


@pytest.fixture
def tiny_workload() -> Workload:
    """A deterministic 60-job Cirne workload on a 16-node system."""
    return CirneWorkloadModel(
        num_jobs=60,
        system_nodes=16,
        cpus_per_node=8,
        max_job_nodes=8,
        target_load=1.0,
        median_runtime_s=1800.0,
        seed=7,
        name="tiny",
    ).generate()


@pytest.fixture
def record_factory():
    """Factory for JobRecord objects."""

    def _make(
        job_id: int = 1,
        submit: float = 0.0,
        run_time: float = 100.0,
        req_time: float = 200.0,
        procs: int = 8,
        **kwargs,
    ) -> JobRecord:
        return JobRecord(
            job_id=job_id,
            submit_time=submit,
            run_time=run_time,
            requested_time=req_time,
            requested_procs=procs,
            **kwargs,
        )

    return _make


def run_simulation(cluster: Cluster, scheduler, jobs, **kwargs):
    """Run a list of jobs to completion and return the SimulationResult."""
    sim = Simulation(cluster, scheduler, **kwargs)
    sim.submit_jobs(jobs)
    return sim.run()


@pytest.fixture
def simulate():
    """Expose the quick simulation helper as a fixture."""
    return run_simulation


@pytest.fixture
def backfill_scheduler() -> BackfillScheduler:
    """A fresh static backfill scheduler."""
    return BackfillScheduler()


@pytest.fixture
def sd_scheduler() -> SDPolicyScheduler:
    """A fresh SD-Policy scheduler with an unlimited MAX_SLOWDOWN."""
    return SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf))
