"""Streaming metrics: bit-identity with the batch path, and retain_jobs mode."""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_workload
from repro.metrics.aggregates import WorkloadMetrics, compute_metrics
from repro.metrics.streaming import ChunkedFloatBuffer, StreamingMetrics
from repro.simulator.cluster import Cluster
from repro.simulator.simulation import Simulation
from repro.workloads.presets import build_workload
from tests.conftest import make_job
from tests.test_metrics import finished_job


def assert_metrics_identical(a: WorkloadMetrics, b: WorkloadMetrics) -> None:
    """Exact (bitwise) equality on every field — no approx allowed."""
    assert a.num_jobs == b.num_jobs
    assert a.makespan == b.makespan
    assert a.avg_response_time == b.avg_response_time
    assert a.avg_wait_time == b.avg_wait_time
    assert a.avg_slowdown == b.avg_slowdown
    assert a.avg_bounded_slowdown == b.avg_bounded_slowdown
    assert a.median_slowdown == b.median_slowdown
    assert a.p95_slowdown == b.p95_slowdown
    assert a.avg_runtime == b.avg_runtime
    assert a.malleable_scheduled == b.malleable_scheduled
    assert a.mate_jobs == b.mate_jobs
    assert a.energy_joules == b.energy_joules


class TestChunkedFloatBuffer:
    def test_empty(self):
        buf = ChunkedFloatBuffer()
        assert len(buf) == 0
        assert buf.as_array().shape == (0,)

    def test_preserves_append_order_across_chunks(self):
        buf = ChunkedFloatBuffer(min_chunk=4, max_chunk=8)
        values = [float(i) * 1.25 for i in range(50)]
        for v in values:
            buf.append(v)
        assert len(buf) == 50
        assert buf.as_array().tolist() == values

    def test_chunks_grow_then_cap(self):
        buf = ChunkedFloatBuffer(min_chunk=2, max_chunk=4)
        for i in range(20):
            buf.append(float(i))
        # 2 + 4 + 4 + ... — no chunk beyond the cap.
        assert buf._chunks[0].shape == (2,)
        assert all(c.shape == (4,) for c in buf._chunks[1:])

    def test_nbytes_counts_allocation(self):
        buf = ChunkedFloatBuffer(min_chunk=4, max_chunk=4)
        buf.append(1.0)
        assert buf.nbytes == 4 * 8  # headroom counts

    def test_rejects_bad_chunk_sizes(self):
        with pytest.raises(ValueError):
            ChunkedFloatBuffer(min_chunk=0)
        with pytest.raises(ValueError):
            ChunkedFloatBuffer(min_chunk=8, max_chunk=4)


class TestStreamingFold:
    def test_rejects_unfinished_job(self):
        with pytest.raises(ValueError):
            StreamingMetrics().fold(make_job())

    def test_empty_accumulator_metrics(self):
        metrics = StreamingMetrics().workload_metrics(energy_joules=5.0)
        assert metrics.num_jobs == 0
        assert metrics.makespan == 0.0
        assert metrics.energy_joules == 5.0

    def test_single_job_matches_compute_metrics(self):
        job = finished_job(submit=0.0, start=50.0, runtime=100.0)
        acc = StreamingMetrics()
        acc.fold(job)
        assert_metrics_identical(acc.workload_metrics(), compute_metrics([job]))

    @given(
        specs=st.lists(
            st.tuples(
                st.floats(0.0, 1e5),   # submit
                st.floats(0.0, 1e4),   # wait before start
                st.floats(1.0, 1e5),   # runtime
                st.booleans(),          # malleable_scheduled
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=80, suppress_health_check=[HealthCheck.filter_too_much])
    def test_fold_matches_compute_metrics(self, specs):
        jobs = []
        acc = StreamingMetrics()
        for i, (submit, wait, runtime, malleable) in enumerate(specs):
            job = finished_job(
                job_id=i + 1,
                submit=submit,
                start=submit + wait,
                runtime=runtime,
                malleable_scheduled=malleable,
            )
            jobs.append(job)
            acc.fold(job)
        assert_metrics_identical(acc.workload_metrics(), compute_metrics(jobs))
        # Run-level origin agrees too.
        assert acc.workload_metrics(first_submit=0.0).makespan == \
            compute_metrics(jobs, first_submit=0.0).makespan

    def test_buffer_bytes_tracks_all_five_metrics(self):
        acc = StreamingMetrics()
        acc.fold(finished_job())
        assert acc.buffer_bytes >= 5 * 8


PRESET_SCALES = {1: 0.01, 2: 0.01, 3: 0.01, 4: 0.005, 5: 0.05}


class TestStreamingSimulationParity:
    @pytest.mark.parametrize("workload_id", sorted(PRESET_SCALES))
    def test_streaming_matches_batch_on_preset(self, workload_id):
        """The tentpole acceptance pin: both paths agree bit-for-bit on every
        workload preset, aggregates and result fields alike."""
        workload = build_workload(workload_id, scale=PRESET_SCALES[workload_id])
        kwargs = dict(
            policy="sd_policy",
            runtime_model="ideal",
            max_slowdown=10.0,
            seed=workload_id,
        )
        retained = run_workload(workload, retain_jobs=True, **kwargs)
        streamed = run_workload(workload, retain_jobs=False, **kwargs)
        assert_metrics_identical(retained.metrics, streamed.metrics)
        r, s = retained.result, streamed.result
        assert r.num_jobs == s.num_jobs > 0
        assert r.total_events == s.total_events
        assert r.makespan == s.makespan
        assert r.avg_response_time == s.avg_response_time
        assert r.avg_slowdown == s.avg_slowdown
        assert r.avg_wait_time == s.avg_wait_time
        assert r.energy_joules == s.energy_joules
        assert r.malleable_scheduled_jobs == s.malleable_scheduled_jobs
        assert r.mate_jobs == s.mate_jobs
        assert r.first_submit == s.first_submit
        assert s.jobs == []  # nothing retained

    def test_retained_sim_streaming_agrees_with_batch(self, tiny_workload, sd_scheduler):
        """Within one retained run, the online accumulator reproduces the
        post-hoc compute_metrics over the same completed jobs."""
        cluster = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, sd_scheduler)
        sim.submit_jobs(tiny_workload.to_jobs(cpus_per_node=8))
        result = sim.run()
        assert result.num_jobs == len(tiny_workload)
        batch = compute_metrics(
            result.jobs,
            energy_joules=result.energy_joules,
            first_submit=result.first_submit,
        )
        online = sim.streaming.workload_metrics(
            energy_joules=result.energy_joules,
            first_submit=result.first_submit,
        )
        assert_metrics_identical(online, batch)
        # The result's sequential-sum aggregates match the accumulator too.
        n = sim.streaming.count
        assert result.avg_response_time == sim.streaming.sum_response / n
        assert result.avg_slowdown == sim.streaming.sum_slowdown / n
        assert result.avg_wait_time == sim.streaming.sum_wait / n

    def test_submit_stream_equivalent_to_submit_jobs(self, tiny_workload, backfill_scheduler):
        from repro.schedulers.backfill import BackfillScheduler

        cluster_a = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
        eager = Simulation(cluster_a, backfill_scheduler)
        eager.submit_jobs(tiny_workload.to_jobs(cpus_per_node=8))
        res_eager = eager.run()

        cluster_b = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
        lazy = Simulation(cluster_b, BackfillScheduler())
        lazy.submit_stream(tiny_workload.iter_jobs(cpus_per_node=8))
        res_lazy = lazy.run()

        assert res_eager.total_events == res_lazy.total_events
        assert res_eager.makespan == res_lazy.makespan
        assert res_eager.avg_response_time == res_lazy.avg_response_time
        assert res_eager.avg_slowdown == res_lazy.avg_slowdown
        assert res_eager.energy_joules == res_lazy.energy_joules
        assert [j.job_id for j in res_eager.jobs] == [j.job_id for j in res_lazy.jobs]

    def test_retain_jobs_false_drops_job_state(self, tiny_workload, sd_scheduler):
        cluster = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, sd_scheduler, retain_jobs=False)
        sim.submit_stream(tiny_workload.iter_jobs(cpus_per_node=8))
        result = sim.run()
        assert result.jobs == []
        assert result.num_jobs == len(tiny_workload)
        assert sim.completed == []
        assert sim.jobs == {}  # every job folded and discarded

    def test_second_stream_rejected(self, tiny_workload, backfill_scheduler):
        cluster = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, backfill_scheduler)
        sim.submit_stream(tiny_workload.iter_jobs(cpus_per_node=8))
        with pytest.raises(RuntimeError):
            sim.submit_stream(tiny_workload.iter_jobs(cpus_per_node=8))

    def test_unsorted_stream_rejected(self, backfill_scheduler):
        cluster = Cluster(num_nodes=4, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, backfill_scheduler)
        jobs = [make_job(job_id=1, submit=100.0), make_job(job_id=2, submit=50.0)]
        with pytest.raises(ValueError, match="not sorted"):
            sim.submit_stream(iter(jobs))
