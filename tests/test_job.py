"""Unit tests for the Job model (states, timing metrics, progress accounting)."""

from __future__ import annotations

import math

import pytest

from repro.simulator.job import Job, JobState, ResourceSlot
from tests.conftest import make_job


class TestJobValidation:
    def test_rejects_non_positive_nodes(self):
        with pytest.raises(ValueError):
            make_job(nodes=0)

    def test_rejects_non_positive_requested_time(self):
        with pytest.raises(ValueError):
            make_job(req_time=0)

    def test_rejects_non_positive_runtime(self):
        with pytest.raises(ValueError):
            make_job(runtime=-5)

    def test_rejects_non_positive_cpus_per_node(self):
        with pytest.raises(ValueError):
            make_job(cpus_per_node=0)

    def test_rejects_non_positive_tasks_per_node(self):
        with pytest.raises(ValueError):
            make_job(tasks_per_node=0)


class TestJobDerivedQuantities:
    def test_requested_cpus(self):
        job = make_job(nodes=3, cpus_per_node=8)
        assert job.requested_cpus == 24

    def test_min_cpus_per_node_default(self):
        assert make_job().min_cpus_per_node == 1

    def test_min_cpus_per_node_with_ranks(self):
        assert make_job(tasks_per_node=4).min_cpus_per_node == 4

    def test_initial_state_is_pending(self):
        assert make_job().state is JobState.PENDING

    def test_metrics_none_before_completion(self):
        job = make_job()
        assert job.wait_time is None
        assert job.response_time is None
        assert job.slowdown is None
        assert job.actual_runtime is None


class TestJobLifecycle:
    def test_start_sets_wait_time(self):
        job = make_job(submit=100.0)
        job.mark_started(250.0, [0])
        assert job.state is JobState.RUNNING
        assert job.wait_time == 150.0

    def test_cannot_start_twice(self):
        job = make_job()
        job.mark_started(0.0, [0])
        with pytest.raises(RuntimeError):
            job.mark_started(1.0, [0])

    def test_cannot_finish_before_start(self):
        with pytest.raises(RuntimeError):
            make_job().mark_finished(10.0)

    def test_finish_sets_metrics(self):
        job = make_job(submit=0.0, runtime=100.0)
        job.mark_started(50.0, [0])
        job.reconfigure(50.0, {0: 8}, speed=1.0)
        job.mark_finished(150.0)
        assert job.state is JobState.COMPLETED
        assert job.response_time == 150.0
        assert job.actual_runtime == 100.0
        assert job.slowdown == pytest.approx(1.5)

    def test_cancel(self):
        job = make_job()
        job.mark_cancelled(5.0)
        assert job.state is JobState.CANCELLED
        assert job.end_time == 5.0

    def test_slowdown_uses_static_runtime_denominator(self):
        # Even if the malleable execution dilates the runtime, the slowdown
        # denominator is the static execution time (paper Section 4).
        job = make_job(submit=0.0, runtime=100.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 4}, speed=0.5)
        job.mark_finished(200.0)
        assert job.slowdown == pytest.approx(2.0)

    def test_bounded_slowdown_floor(self):
        job = make_job(submit=0.0, runtime=1.0, req_time=10.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 8}, speed=1.0)
        job.mark_finished(1.0)
        assert job.bounded_slowdown(tau=10.0) == 1.0


class TestProgressAccounting:
    def test_full_speed_progress(self):
        job = make_job(runtime=100.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 8}, speed=1.0)
        job.advance_progress(60.0)
        assert job.work_remaining == pytest.approx(40.0)

    def test_half_speed_progress(self):
        job = make_job(runtime=100.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 4}, speed=0.5)
        job.advance_progress(100.0)
        assert job.work_remaining == pytest.approx(50.0)

    def test_progress_never_negative(self):
        job = make_job(runtime=10.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 8}, speed=1.0)
        job.advance_progress(1000.0)
        assert job.work_remaining == 0.0

    def test_time_going_backwards_raises(self):
        job = make_job(runtime=10.0)
        job.mark_started(100.0, [0])
        job.reconfigure(100.0, {0: 8}, speed=1.0)
        with pytest.raises(ValueError):
            job.advance_progress(50.0)

    def test_predicted_end_time_full_speed(self):
        job = make_job(runtime=100.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 8}, speed=1.0)
        assert job.predicted_end_time() == pytest.approx(100.0)

    def test_predicted_end_time_changes_with_speed(self):
        job = make_job(runtime=100.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 4}, speed=0.5)
        assert job.predicted_end_time() == pytest.approx(200.0)
        # Expanding back at t=100 (50 static-seconds of work left).
        job.reconfigure(100.0, {0: 8}, speed=1.0)
        assert job.predicted_end_time() == pytest.approx(150.0)

    def test_predicted_end_infinite_for_pending(self):
        assert make_job().predicted_end_time() == math.inf

    def test_predicted_end_infinite_at_zero_speed(self):
        job = make_job(runtime=100.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 1}, speed=0.0)
        assert job.predicted_end_time() == math.inf

    def test_reconfigure_rejects_negative_speed(self):
        job = make_job()
        job.mark_started(0.0, [0])
        with pytest.raises(ValueError):
            job.reconfigure(0.0, {0: 8}, speed=-0.1)

    def test_reconfigure_bumps_end_event_serial(self):
        job = make_job()
        job.mark_started(0.0, [0])
        serial_before = job.end_event_serial
        job.reconfigure(0.0, {0: 8}, speed=1.0)
        assert job.end_event_serial == serial_before + 1

    def test_resource_history_closed_on_finish(self):
        job = make_job(runtime=10.0)
        job.mark_started(0.0, [0])
        job.reconfigure(0.0, {0: 8}, speed=1.0)
        job.mark_finished(10.0)
        assert len(job.resource_history) == 1
        slot = job.resource_history[0]
        assert slot.start == 0.0
        assert slot.end == 10.0
        assert slot.total_cpus == 8

    def test_resource_history_tracks_reconfigurations(self):
        job = make_job(runtime=100.0)
        job.mark_started(0.0, [0, 1])
        job.reconfigure(0.0, {0: 8, 1: 8}, speed=1.0)
        job.reconfigure(30.0, {0: 4, 1: 4}, speed=0.5)
        job.mark_finished(170.0)
        assert len(job.resource_history) == 2
        assert job.resource_history[0].duration == pytest.approx(30.0)
        assert job.resource_history[1].duration == pytest.approx(140.0)


class TestResourceSlot:
    def test_total_cpus(self):
        slot = ResourceSlot(start=0.0, end=10.0, cpus_per_node={0: 4, 1: 6}, speed=1.0)
        assert slot.total_cpus == 10

    def test_duration(self):
        slot = ResourceSlot(start=5.0, end=15.0, cpus_per_node={0: 1}, speed=1.0)
        assert slot.duration == 10.0

    def test_open_slot_duration_is_inf(self):
        slot = ResourceSlot(start=5.0, end=math.inf, cpus_per_node={0: 1}, speed=1.0)
        assert math.isinf(slot.duration)
