"""Tests for the real-run emulation: application models, interference,
energy and the Figure 9 emulator."""

from __future__ import annotations

import pytest

from repro.realrun.apps import APPLICATIONS, DEFAULT_APPLICATION, get_application
from repro.realrun.emulator import RealRunEmulator
from repro.realrun.energy import real_run_energy
from repro.realrun.interference import ApplicationAwareRuntimeModel, co_run_slowdown
from repro.schedulers.fcfs import FCFSScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.simulation import Simulation
from tests.conftest import make_job
from tests.test_metrics import finished_job


class TestApplicationModels:
    def test_table2_applications_present(self):
        assert set(APPLICATIONS) == {"PILS", "STREAM", "CoreNeuron", "NEST", "Alya"}

    def test_lookup_case_insensitive(self):
        assert get_application("stream").name == "STREAM"
        assert get_application("PILS").name == "PILS"

    def test_lookup_unknown_returns_default(self):
        assert get_application("unknown") is DEFAULT_APPLICATION
        assert get_application(None) is DEFAULT_APPLICATION

    def test_stream_is_memory_bound_and_insensitive_to_shrink(self):
        stream, pils = APPLICATIONS["STREAM"], APPLICATIONS["PILS"]
        assert stream.memory_intensity > pils.memory_intensity
        assert stream.cpu_utilization < pils.cpu_utilization
        # Halving the cores barely hurts STREAM but nearly halves PILS.
        assert stream.shrink_speed(0.5) > 0.75
        assert pils.shrink_speed(0.5) < 0.55

    def test_shrink_speed_bounds(self):
        for app in APPLICATIONS.values():
            assert app.shrink_speed(1.0) == 1.0
            assert app.shrink_speed(0.0) == 0.0
            assert 0.0 < app.shrink_speed(0.5) <= 1.0


class TestInterference:
    def test_no_co_runner_no_slowdown(self):
        assert co_run_slowdown(APPLICATIONS["STREAM"], []) == 1.0

    def test_memory_bound_pair_suffers_most(self):
        stream = APPLICATIONS["STREAM"]
        pils = APPLICATIONS["PILS"]
        with_stream = co_run_slowdown(stream, [stream.memory_intensity])
        with_pils = co_run_slowdown(stream, [pils.memory_intensity])
        assert with_stream > with_pils >= 1.0

    def test_model_speed_full_allocation_alone(self):
        cluster = Cluster(num_nodes=1, sockets=2, cores_per_socket=4)
        model = ApplicationAwareRuntimeModel(cluster=cluster, job_lookup={})
        job = make_job(job_id=1, nodes=1, application="PILS")
        assert model.speed(job, {0: 8}) == pytest.approx(1.0)

    def test_model_speed_uses_application_scaling(self):
        cluster = Cluster(num_nodes=1, sockets=2, cores_per_socket=4)
        model = ApplicationAwareRuntimeModel(cluster=cluster, job_lookup={})
        stream_job = make_job(job_id=1, nodes=1, application="STREAM")
        pils_job = make_job(job_id=2, nodes=1, application="PILS")
        assert model.speed(stream_job, {0: 4}) > model.speed(pils_job, {0: 4})

    def test_model_accounts_for_co_runner(self):
        cluster = Cluster(num_nodes=1, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, FCFSScheduler())
        host = make_job(job_id=1, nodes=1, application="STREAM")
        guest = make_job(job_id=2, nodes=1, application="STREAM")
        sim.jobs.update({1: host, 2: guest})
        sim.pending.add(host)
        sim.start_job_static(host)
        sim.reconfigure_job(host, {0: 4})
        sim.pending.add(guest)
        sim.start_job_shared(guest, {0: 4}, mates=[host])
        model = ApplicationAwareRuntimeModel(cluster=cluster, job_lookup=sim.jobs)
        alone = APPLICATIONS["STREAM"].shrink_speed(0.5)
        assert model.speed(guest, {0: 4}) < alone

    def test_empty_allocation_speed_zero(self):
        model = ApplicationAwareRuntimeModel()
        assert model.speed(make_job(job_id=1), {}) == 0.0


class TestRealRunEnergy:
    def test_low_utilization_app_consumes_less(self):
        stream_job = finished_job(1, runtime=1000.0, start=0.0, submit=0.0)
        stream_job.application = "STREAM"
        pils_job = finished_job(1, runtime=1000.0, start=0.0, submit=0.0)
        pils_job.application = "PILS"
        assert real_run_energy([stream_job], 2, 8) < real_run_energy([pils_job], 2, 8)


class TestEmulator:
    @pytest.fixture(scope="class")
    def outcome(self):
        return RealRunEmulator(scale=0.15, seed=77).compare()

    def test_all_jobs_complete_in_both_runs(self, outcome):
        assert len(outcome.static_jobs) == len(outcome.sd_jobs)
        assert len(outcome.sd_jobs) > 0

    def test_sd_improves_slowdown_and_response(self, outcome):
        assert outcome.improvements["avg_slowdown"] > 0
        assert outcome.improvements["avg_response_time"] > 0

    def test_energy_not_degraded_significantly(self, outcome):
        # The paper reports a ~6% energy saving; at reduced scale we only
        # require that SD-Policy does not increase energy by more than a few
        # percent.
        assert outcome.improvements["energy_joules"] > -5.0

    def test_malleable_jobs_mostly_better_proportional_runtime(self, outcome):
        # Paper: 449 of 539 malleable-scheduled jobs used resources more
        # efficiently than the static execution.
        assert outcome.malleable_scheduled > 0
        assert outcome.better_runtime_jobs >= 0.6 * outcome.malleable_scheduled

    def test_improvement_keys(self, outcome):
        assert set(outcome.improvements) >= {
            "makespan", "avg_response_time", "avg_slowdown", "energy_joules"
        }
