"""Tests for the per-node manager (Listing 3)."""

from __future__ import annotations

import pytest

from repro.nodemanager.manager import NodeManager, NodeManagerError


@pytest.fixture
def manager() -> NodeManager:
    return NodeManager(node_id=0, sockets=2, cores_per_socket=24)


class TestLaunch:
    def test_launch_static_job(self, manager):
        assignment = manager.launch_job(1, cpus=48, tasks=4)
        assert assignment.num_cores == 48
        assert len(manager.drom.processes_of(1)) == 4
        manager.validate()

    def test_launch_two_jobs_after_shrink(self, manager):
        manager.launch_job(1, cpus=48)
        manager.set_job_cpus(1, 24)
        manager.launch_job(2, cpus=24)
        assert manager.cpus_of(1) == 24
        assert manager.cpus_of(2) == 24
        manager.validate()

    def test_launch_over_capacity_rejected(self, manager):
        manager.launch_job(1, cpus=40)
        with pytest.raises(NodeManagerError):
            manager.launch_job(2, cpus=20)

    def test_duplicate_launch_rejected(self, manager):
        manager.launch_job(1, cpus=10)
        with pytest.raises(NodeManagerError):
            manager.launch_job(1, cpus=10)

    def test_invalid_arguments_rejected(self, manager):
        with pytest.raises(NodeManagerError):
            manager.launch_job(1, cpus=0)
        with pytest.raises(NodeManagerError):
            manager.launch_job(1, cpus=4, tasks=0)


class TestResize:
    def test_shrink_updates_masks(self, manager):
        manager.launch_job(1, cpus=48, tasks=2)
        manager.set_job_cpus(1, 24)
        assert manager.cpus_of(1) == 24
        assert len(manager.drom.job_cpus(1)) == 24
        manager.validate()

    def test_resize_unknown_job_rejected(self, manager):
        with pytest.raises(NodeManagerError):
            manager.set_job_cpus(9, 8)

    def test_resize_over_capacity_rejected(self, manager):
        manager.launch_job(1, cpus=24)
        manager.launch_job(2, cpus=24)
        with pytest.raises(NodeManagerError):
            manager.set_job_cpus(1, 30)


class TestEnd:
    def test_end_redistributes_to_remaining_job(self, manager):
        manager.launch_job(1, cpus=24)
        manager.launch_job(2, cpus=24)
        manager.end_job(2)
        assert manager.cpus_of(1) == 48
        assert manager.jobs == [1]
        manager.validate()

    def test_end_without_redistribution(self, manager):
        manager.launch_job(1, cpus=24)
        manager.launch_job(2, cpus=24)
        manager.end_job(2, redistribute=False)
        assert manager.cpus_of(1) == 24
        manager.validate()

    def test_end_splits_between_multiple_survivors(self, manager):
        manager.launch_job(1, cpus=16)
        manager.launch_job(2, cpus=16)
        manager.launch_job(3, cpus=16)
        manager.end_job(3)
        assert manager.cpus_of(1) + manager.cpus_of(2) == 48
        assert abs(manager.cpus_of(1) - manager.cpus_of(2)) <= 1
        manager.validate()

    def test_end_unknown_job_rejected(self, manager):
        with pytest.raises(NodeManagerError):
            manager.end_job(1)

    def test_end_cleans_drom_space(self, manager):
        manager.launch_job(1, cpus=48, tasks=3)
        manager.end_job(1)
        assert manager.drom.processes() == []


class TestIsolation:
    def test_two_half_node_jobs_never_share_a_socket(self, manager):
        manager.launch_job(1, cpus=48)
        manager.set_job_cpus(1, 24)
        manager.launch_job(2, cpus=24)
        sockets_1 = manager.assignments[1].sockets_used(24)
        sockets_2 = manager.assignments[2].sockets_used(24)
        assert set(sockets_1).isdisjoint(sockets_2)

    def test_no_overlapping_drom_masks_through_lifecycle(self, manager):
        manager.launch_job(1, cpus=48, tasks=2)
        manager.set_job_cpus(1, 24)
        manager.launch_job(2, cpus=24, tasks=2)
        manager.validate()
        manager.end_job(1)
        manager.validate()
        assert manager.cpus_of(2) == 48
