"""Tests for the job-level analytics layer.

Covers the full chain: the :class:`JobRecordSink` riding the simulator's
completion dispatch, columnar (de)serialisation, the bit-identity of
aggregates recomputed from persisted records, cache/manifest format
compatibility, and the cross-sweep ``query`` engine — including the
acceptance property that ``query --report`` regenerates Figures 1-3/7
byte-identically from stored records alone, across a two-shard merge.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analytics.query import (
    QueryError,
    list_runs,
    outcome_from_records,
    render_stored_report,
    run_query,
)
from repro.analytics.records import (
    JOB_RECORD_DTYPE,
    RECORD_SCHEMA_VERSION,
    JobRecordSink,
    RunRecords,
    metrics_from_records,
)
from repro.analytics.store import (
    AnalyticsError,
    load_run_records,
    publish_run_records,
    records_key,
)
from repro.experiments.executors import (
    MANIFEST_FORMAT_VERSION,
    MergeExecutor,
    ShardedExecutor,
)
from repro.experiments.paper import (
    figure_1_to_3_maxsd_sweep,
    figure_7_daily_series,
    maxsd_sweep_spec,
)
from repro.experiments.runner import run_workload
from repro.experiments.sweep import (
    CACHE_FORMAT_VERSION,
    CACHE_KEY_VERSION,
    COMPATIBLE_CACHE_FORMATS,
    SweepRunner,
    SweepTask,
    _canonical_kwargs,
    task_cache_key,
)
from repro.store import MemoryStore, gc, wrap_blob
from repro.workloads.cirne import CirneWorkloadModel
from repro.workloads.presets import build_workload


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=80, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.0, median_runtime_s=1800.0, seed=13, name="analytics_test",
    ).generate()


# --------------------------------------------------------------------- #
# Sink + serialisation
# --------------------------------------------------------------------- #
class TestRecordsRoundTrip:
    def test_sink_captures_every_completed_job(self, workload):
        run = run_workload(workload, "sd_policy", analytics=True,
                           max_slowdown=10.0)
        assert run.records is not None
        assert len(run.records.array) == run.result.num_jobs
        assert run.records.array.dtype == JOB_RECORD_DTYPE

    def test_bytes_round_trip_is_exact(self, workload):
        run = run_workload(workload, "static_backfill", analytics=True)
        blob = run.records.to_bytes()
        back = RunRecords.from_bytes(blob)
        assert back.schema == RECORD_SCHEMA_VERSION
        assert back.meta == run.records.meta
        assert np.array_equal(back.array, run.records.array)

    def test_truncated_blob_rejected(self, workload):
        run = run_workload(workload, "static_backfill", analytics=True)
        blob = run.records.to_bytes()
        with pytest.raises(ValueError):
            RunRecords.from_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError):
            RunRecords.from_bytes(b"\x00" * 4)

    def test_streamed_and_retained_runs_record_identically(self, workload):
        kept = run_workload(workload, "sd_policy", analytics=True,
                            max_slowdown=10.0)
        streamed = run_workload(workload, "sd_policy", analytics=True,
                                retain_jobs=False, max_slowdown=10.0)
        assert np.array_equal(kept.records.array, streamed.records.array)


class TestAggregateBitIdentity:
    """Satellite: metrics recomputed from persisted records are bit-identical
    to both metric paths (``compute_metrics`` over retained jobs, and
    ``StreamingMetrics`` folds) for every paper preset."""

    @pytest.mark.parametrize("preset", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("retain_jobs", [True, False])
    def test_presets_round_trip_bit_identical(self, preset, retain_jobs):
        wl = build_workload(preset, scale=0.02, seed=preset)
        run = run_workload(wl, "sd_policy", analytics=True,
                           retain_jobs=retain_jobs, max_slowdown=10.0)
        revived = RunRecords.from_bytes(run.records.to_bytes())
        assert metrics_from_records(revived).as_dict() == run.metrics.as_dict()

    def test_empty_records_yield_zero_metrics(self):
        sink = JobRecordSink()
        records = RunRecords(array=sink.to_array(), meta={"energy_joules": 0.0})
        metrics = metrics_from_records(records)
        assert metrics.num_jobs == 0
        assert metrics.makespan == 0.0


# --------------------------------------------------------------------- #
# Store integration
# --------------------------------------------------------------------- #
class TestAnalyticsStore:
    def test_publish_and_load(self, workload):
        store = MemoryStore()
        run = run_workload(workload, "static_backfill", analytics=True)
        publish_run_records(store, "a" * 16, run.records)
        back = load_run_records(store, "a" * 16)
        assert np.array_equal(back.array, run.records.array)

    def test_missing_records_error_suggests_analytics(self):
        with pytest.raises(AnalyticsError, match="--analytics"):
            load_run_records(MemoryStore(), "b" * 16)

    def test_sweep_publishes_records_and_run_blob_stays_plain(self, workload):
        """The cached run payload carries no records either way: they live
        in their own blob, so plain and analytics runners share entries."""
        from repro.store import unwrap_blob

        task = SweepTask(workload=workload, policy="static_backfill",
                         key="plain", seed=0)
        plain_store, analytics_store = MemoryStore(), MemoryStore()
        SweepRunner(max_workers=1, store=plain_store).run([task])
        SweepRunner(max_workers=1, store=analytics_store, analytics=True).run([task])
        key = task_cache_key(task)
        for store in (plain_store, analytics_store):
            payload = pickle.loads(unwrap_blob(store.get(key))[0])
            assert payload["format"] == CACHE_FORMAT_VERSION
            assert getattr(payload["run"], "records", None) is None
        assert analytics_store.get(records_key(key)) is not None
        assert plain_store.get(records_key(key)) is None
        # A plain runner consumes the analytics runner's entry as a hit.
        rerun = SweepRunner(max_workers=1, store=analytics_store).run([task])
        assert rerun.cache_hits == 1

    def test_gc_keeps_analytics_pinned_blobs(self, workload):
        """The analytics manifest references both the run and records blobs,
        so a manifest-aware gc never collects an analytics sweep."""
        store = MemoryStore()
        task = SweepTask(workload=workload, policy="static_backfill",
                         key="pinned", seed=0)
        SweepRunner(max_workers=1, store=store, analytics=True).run([task])
        key = task_cache_key(task)
        gc(store, grace_seconds=0.0)
        assert store.get(key) is not None
        assert store.get(records_key(key)) is not None

    def test_analytics_requires_store(self):
        with pytest.raises(ValueError, match="result store"):
            SweepRunner(max_workers=1, analytics=True)


class TestFormatCompatibility:
    """Satellite: format bump — v3 blobs written before the analytics layer
    still load (and merge into new sweeps) as ordinary cache hits."""

    def test_version_constants(self):
        assert CACHE_FORMAT_VERSION == 5
        assert CACHE_KEY_VERSION == 3  # key encoding unchanged: old blobs resolve
        assert 3 in COMPATIBLE_CACHE_FORMATS
        assert CACHE_FORMAT_VERSION in COMPATIBLE_CACHE_FORMATS
        assert MANIFEST_FORMAT_VERSION == 5

    def test_pre_analytics_blob_still_hits(self, workload):
        task = SweepTask(workload=workload, policy="static_backfill",
                         key="legacy", seed=0)
        run = run_workload(workload, "static_backfill", seed=task.resolved_seed())
        # Emulate a pre-analytics pickle: format 3, and no `records`
        # attribute at all in the PolicyRun state.
        run.__dict__.pop("records", None)
        payload = {
            "format": 3,
            "key": task.resolved_key(),
            "policy": task.policy,
            "seed": task.resolved_seed(),
            "kwargs": _canonical_kwargs(task.kwargs),
            "workload": workload.name,
            "run": run,
        }
        enveloped, _ = wrap_blob(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        store = MemoryStore()
        store.put(task_cache_key(task), enveloped)
        result = SweepRunner(max_workers=1, store=store).run([task])
        assert result.cache_hits == 1
        served = result["legacy"]
        assert getattr(served, "records", None) is None
        assert served.metrics.as_dict() == run.metrics.as_dict()


# --------------------------------------------------------------------- #
# Query engine
# --------------------------------------------------------------------- #
class TestQuery:
    @pytest.fixture(scope="class")
    def populated(self, workload):
        store = MemoryStore()
        runner = SweepRunner(max_workers=1, store=store, analytics=True)
        result = figure_1_to_3_maxsd_sweep(workload, runner=runner)
        return store, result

    def test_list_runs(self, populated):
        store, _ = populated
        text = list_runs(store)
        assert "baseline" in text
        assert "DynAVGSD" in text

    def test_group_by_label(self, populated):
        store, _ = populated
        text = run_query(store, group_by="label",
                         metrics=[("slowdown", "mean"), ("job_id", "count")])
        assert "MAXSD 10" in text
        assert "static_backfill" in text  # the baseline run's label

    def test_row_filter_and_errors(self, populated):
        store, _ = populated
        text = run_query(store, where=[("malleable", "1")],
                         metrics=[("slowdown", "p99")])
        assert "job row(s)" in text
        with pytest.raises(QueryError, match="unknown"):
            run_query(store, metrics=[("not_a_column", "mean")])
        with pytest.raises(QueryError, match="unknown aggregation"):
            run_query(store, metrics=[("slowdown", "sum")])
        with pytest.raises(QueryError, match="no analytics runs"):
            run_query(MemoryStore())

    def test_fig1_to_3_report_is_byte_identical(self, populated, workload):
        store, result = populated
        assert render_stored_report(store, "fig1-3", workload=workload) == result.text

    def test_single_figure_is_a_chart_of_the_full_report(self, populated, workload):
        store, result = populated
        fig2 = render_stored_report(store, "fig2", workload=workload)
        assert fig2 in result.text
        assert fig2.startswith("Figure 2")

    def test_outcome_from_records_normalises_like_the_sweep(self, populated, workload):
        store, _ = populated
        spec = maxsd_sweep_spec(workload.name)
        outcome = outcome_from_records(spec, workload, store)
        normalized = outcome.normalized()
        assert set(normalized) == {
            "MAXSD 5", "MAXSD 10", "MAXSD 50", "MAXSD inf", "DynAVGSD"
        }
        for vals in normalized.values():
            assert vals["makespan"] > 0

    def test_report_without_records_raises(self, workload):
        with pytest.raises(QueryError, match="--analytics"):
            render_stored_report(MemoryStore(), "fig1-3", workload=workload)

    def test_fig7_report_is_byte_identical(self, workload):
        store = MemoryStore()
        runner = SweepRunner(max_workers=1, store=store, analytics=True)
        result = figure_7_daily_series(workload, max_slowdown=10.0, runner=runner)
        regenerated = render_stored_report(
            store, "fig7", workload=workload, max_slowdown=10.0
        )
        assert regenerated == result.text

    def test_sharded_merge_then_query_is_byte_identical(self, workload):
        """Acceptance: two analytics shards through one shared store, merged,
        then regenerated from records alone — same bytes."""
        store = MemoryStore()
        for index in range(2):
            figure_1_to_3_maxsd_sweep(
                workload,
                runner=SweepRunner(
                    max_workers=1, store=store, analytics=True,
                    executor=ShardedExecutor(index, 2),
                ),
            )
        merged = figure_1_to_3_maxsd_sweep(
            workload,
            runner=SweepRunner(max_workers=1, store=store,
                               executor=MergeExecutor()),
        )
        assert merged.complete
        assert render_stored_report(store, "fig1-3", workload=workload) == merged.text
