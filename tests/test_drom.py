"""Tests for the DROM registry emulation."""

from __future__ import annotations

import pytest

from repro.nodemanager.drom import DromError, DromRegistry


@pytest.fixture
def registry() -> DromRegistry:
    return DromRegistry(total_cpus=48)


class TestRegistration:
    def test_register_assigns_pids(self, registry):
        p1 = registry.register(job_id=1, cpu_mask=[0, 1])
        p2 = registry.register(job_id=1, cpu_mask=[2, 3])
        assert p1.pid != p2.pid
        assert len(registry.processes_of(1)) == 2

    def test_register_validates_mask_range(self, registry):
        with pytest.raises(DromError):
            registry.register(job_id=1, cpu_mask=[48])
        with pytest.raises(DromError):
            registry.register(job_id=1, cpu_mask=[-1])

    def test_clean_single_process(self, registry):
        proc = registry.register(job_id=1)
        registry.clean(proc.pid)
        assert registry.processes() == []

    def test_clean_unknown_pid_rejected(self, registry):
        with pytest.raises(DromError):
            registry.clean(999)

    def test_clean_job_removes_all_tasks(self, registry):
        registry.register(job_id=1, cpu_mask=[0])
        registry.register(job_id=1, cpu_mask=[1])
        registry.register(job_id=2, cpu_mask=[2])
        assert registry.clean_job(1) == 2
        assert [p.job_id for p in registry.processes()] == [2]

    def test_invalid_total_cpus(self):
        with pytest.raises(ValueError):
            DromRegistry(total_cpus=0)


class TestMasks:
    def test_get_and_set_mask(self, registry):
        proc = registry.register(job_id=1, cpu_mask=[0, 1])
        assert registry.get_mask(proc.pid) == frozenset({0, 1})
        registry.set_mask(proc.pid, [4, 5, 6])
        assert registry.get_mask(proc.pid) == frozenset({4, 5, 6})
        assert proc.mask_updates == 1

    def test_get_mask_unknown_pid(self, registry):
        with pytest.raises(DromError):
            registry.get_mask(5)

    def test_set_mask_unknown_pid(self, registry):
        with pytest.raises(DromError):
            registry.set_mask(5, [0])

    def test_job_cpus_union(self, registry):
        registry.register(job_id=1, cpu_mask=[0, 1])
        registry.register(job_id=1, cpu_mask=[2, 3])
        assert registry.job_cpus(1) == frozenset({0, 1, 2, 3})

    def test_set_job_mask_splits_over_tasks(self, registry):
        registry.register(job_id=1)
        registry.register(job_id=1)
        registry.set_job_mask(1, range(10))
        procs = registry.processes_of(1)
        sizes = sorted(p.num_cpus for p in procs)
        assert sizes == [5, 5]
        assert registry.job_cpus(1) == frozenset(range(10))

    def test_set_job_mask_without_processes(self, registry):
        with pytest.raises(DromError):
            registry.set_job_mask(7, [0, 1])

    def test_overlapping_masks_detection(self, registry):
        a = registry.register(job_id=1, cpu_mask=[0, 1])
        b = registry.register(job_id=2, cpu_mask=[1, 2])
        assert (a.pid, b.pid) in registry.overlapping_masks()

    def test_no_overlaps_for_disjoint_masks(self, registry):
        registry.register(job_id=1, cpu_mask=[0, 1])
        registry.register(job_id=2, cpu_mask=[2, 3])
        assert registry.overlapping_masks() == []
