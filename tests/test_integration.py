"""End-to-end integration tests: whole workloads through every policy,
checking cross-module invariants rather than individual units."""

from __future__ import annotations

import math

import pytest

from repro.core.runtime_model import IdealRuntimeModel, runtime_increase_from_history
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.experiments.runner import cluster_for, run_workload
from repro.metrics.aggregates import compute_metrics
from repro.simulator.job import JobState
from repro.simulator.simulation import Simulation
from repro.workloads.cirne import CirneWorkloadModel


@pytest.fixture(scope="module")
def workload():
    """A congested 150-job workload on a 16-node system."""
    return CirneWorkloadModel(
        num_jobs=150, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.1, median_runtime_s=2400.0, seed=31, name="integration",
    ).generate()


@pytest.fixture(scope="module")
def runs(workload):
    """Run the workload under FCFS, static backfill and SD-Policy once."""
    out = {}
    for label, policy, kwargs in (
        ("fcfs", "fcfs", {}),
        ("static", "static_backfill", {}),
        ("sd_inf", "sd_policy", {"max_slowdown": math.inf}),
        ("sd_dyn", "sd_policy", {"max_slowdown": "dynamic"}),
    ):
        out[label] = run_workload(workload, policy, runtime_model="ideal", **kwargs)
    return out


class TestCompleteness:
    def test_every_policy_completes_every_job(self, workload, runs):
        for label, run in runs.items():
            assert run.metrics.num_jobs == len(workload), label
            assert all(j.state is JobState.COMPLETED for j in run.jobs), label

    def test_wait_times_non_negative(self, runs):
        for run in runs.values():
            assert all(j.wait_time >= 0 for j in run.jobs)

    def test_slowdowns_at_least_one(self, runs):
        for run in runs.values():
            assert all(j.slowdown >= 0.999 for j in run.jobs)

    def test_static_policies_never_dilate_runtimes(self, runs):
        for label in ("fcfs", "static"):
            for job in runs[label].jobs:
                assert job.actual_runtime == pytest.approx(job.static_runtime, rel=1e-9)

    def test_runtime_dilation_only_for_shared_jobs(self, runs):
        for job in runs["sd_inf"].jobs:
            if not job.scheduled_malleable and not job.was_mate:
                assert job.actual_runtime == pytest.approx(job.static_runtime, rel=1e-6)


class TestOrdering:
    def test_backfill_beats_fcfs_on_waits(self, runs):
        assert runs["static"].metrics.avg_wait_time <= runs["fcfs"].metrics.avg_wait_time * 1.01

    def test_sd_policy_improves_average_slowdown(self, runs):
        assert runs["sd_inf"].metrics.avg_slowdown < runs["static"].metrics.avg_slowdown

    def test_sd_policy_improves_average_response(self, runs):
        assert runs["sd_inf"].metrics.avg_response_time < runs["static"].metrics.avg_response_time

    def test_sd_policy_schedules_malleable_jobs(self, runs):
        assert runs["sd_inf"].metrics.malleable_scheduled > 0
        assert runs["sd_inf"].metrics.mate_jobs > 0

    def test_dynamic_cutoff_is_more_conservative_than_infinite(self, runs):
        assert (
            runs["sd_dyn"].metrics.malleable_scheduled
            <= runs["sd_inf"].metrics.malleable_scheduled
        )

    def test_makespan_within_reasonable_band_of_static(self, runs):
        ratio = runs["sd_inf"].metrics.makespan / runs["static"].metrics.makespan
        assert 0.85 <= ratio <= 1.15


class TestResourceConsistency:
    def test_cluster_never_overallocated(self, workload):
        cluster = cluster_for(workload)
        sim = Simulation(cluster, SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf)),
                         runtime_model=IdealRuntimeModel())
        sim.submit_jobs(workload.to_jobs(cpus_per_node=cluster.cpus_per_node))
        # Validate the cluster invariants every 200 events while running.
        steps = 0
        while sim.step():
            steps += 1
            if steps % 200 == 0:
                cluster.validate()
        cluster.validate()
        assert len(sim.completed) == len(workload)

    def test_per_slot_allocations_within_node_capacity(self, runs):
        for run in runs.values():
            for job in run.jobs:
                for slot in job.resource_history:
                    assert all(0 < c <= 8 for c in slot.cpus_per_node.values())

    def test_ideal_model_conserves_cpu_seconds(self, runs):
        # Under the ideal execution model, a job's consumed CPU-seconds never
        # exceed its static work (assigned CPUs it cannot use are capped).
        for job in runs["sd_inf"].jobs:
            consumed = sum(
                slot.total_cpus * slot.duration
                for slot in job.resource_history
                if math.isfinite(slot.duration)
            )
            static_work = job.static_runtime * job.requested_cpus
            assert consumed <= static_work * 1.001

    def test_runtime_increase_matches_history_equations(self, runs):
        # Cross-check the simulator's integration against Eq. 5 applied to
        # the recorded history: actual runtime == static + increase.
        for job in runs["sd_inf"].jobs:
            if not job.scheduled_malleable:
                continue
            increase = runtime_increase_from_history(job)
            assert job.actual_runtime == pytest.approx(
                job.static_runtime + increase, rel=1e-6, abs=1e-3
            )

    def test_energy_consistent_with_metrics_module(self, runs):
        run = runs["static"]
        recomputed = compute_metrics(run.jobs, energy_joules=run.result.energy_joules)
        assert recomputed.avg_slowdown == pytest.approx(run.metrics.avg_slowdown)
        assert recomputed.makespan == pytest.approx(run.metrics.makespan)


class TestMixedWorkload:
    def test_partial_malleability_still_works(self, workload):
        run = run_workload(workload, "sd_policy", runtime_model="ideal",
                           malleable_fraction=0.5, max_slowdown=math.inf, seed=3)
        assert run.metrics.num_jobs == len(workload)
        non_malleable_scheduled = [
            j for j in run.jobs if j.scheduled_malleable and not j.malleable
        ]
        assert non_malleable_scheduled == []
