"""Tests for the mate-selection heuristic (Listing 2, Eq. 1-3)."""

from __future__ import annotations

import math

import pytest

from repro.core.mate_selection import MateSelector
from repro.core.penalties import StaticMaxSlowdown
from repro.schedulers.fcfs import FCFSScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.simulation import Simulation
from tests.conftest import make_job


def build_sim(num_nodes=4, cpus=8):
    cluster = Cluster(num_nodes=num_nodes, sockets=2, cores_per_socket=cpus // 2)
    return Simulation(cluster, FCFSScheduler())


def add_running(sim, job_id, nodes, req_time=10000.0, runtime=None, submit=0.0,
                malleable=True, tasks_per_node=1):
    job = make_job(
        job_id=job_id, submit=submit, nodes=nodes, req_time=req_time,
        runtime=runtime or req_time * 0.8, malleable=malleable,
        tasks_per_node=tasks_per_node,
        cpus_per_node=sim.cluster.cpus_per_node,
    )
    sim.jobs[job_id] = job
    sim.pending.add(job)
    sim.start_job_static(job)
    return job


def pending_guest(sim, job_id=100, nodes=1, req_time=500.0, submit=None):
    job = make_job(
        job_id=job_id, submit=sim.now if submit is None else submit, nodes=nodes,
        req_time=req_time, runtime=req_time * 0.8,
        cpus_per_node=sim.cluster.cpus_per_node,
    )
    sim.jobs[job_id] = job
    sim.pending.add(job)
    return job


ADMIT_ALL = StaticMaxSlowdown(math.inf)


class TestCandidateFiltering:
    def test_single_node_mate_found(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1)
        guest = pending_guest(sim, nodes=1)
        selector = MateSelector()
        candidates = selector.candidate_mates(sim, guest, ADMIT_ALL)
        assert [c.job.job_id for c in candidates] == [1]
        assert candidates[0].weight == 1

    def test_non_malleable_job_excluded(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1, malleable=False)
        guest = pending_guest(sim)
        assert MateSelector().candidate_mates(sim, guest, ADMIT_ALL) == []

    def test_mate_must_outlast_guest(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1, req_time=100.0)      # too short to host
        guest = pending_guest(sim, req_time=500.0)        # needs 1000s shrunk
        assert MateSelector().candidate_mates(sim, guest, ADMIT_ALL) == []

    def test_cutoff_filters_high_penalty_mates(self):
        sim = build_sim()
        # A mate that waited a long time has a high predicted slowdown.
        job = make_job(job_id=1, submit=0.0, nodes=1, req_time=1000.0, runtime=900.0,
                       cpus_per_node=8)
        sim.jobs[1] = job
        sim.pending.add(job)
        sim.now = 50000.0
        sim.start_job_static(job)
        guest = pending_guest(sim, req_time=100.0)
        assert MateSelector().candidate_mates(sim, guest, StaticMaxSlowdown(5.0)) == []
        assert MateSelector().candidate_mates(sim, guest, ADMIT_ALL) != []

    def test_already_sharing_mate_excluded(self):
        sim = build_sim()
        mate = add_running(sim, 1, nodes=1)
        # Shrink the mate and co-schedule a guest on its node.
        sim.reconfigure_job(mate, {mate.allocated_nodes[0]: 4})
        first_guest = pending_guest(sim, job_id=50, nodes=1)
        sim.start_job_shared(first_guest, {mate.allocated_nodes[0]: 4}, mates=[mate])
        second_guest = pending_guest(sim, job_id=51, nodes=1)
        selector = MateSelector()
        assert selector.candidate_mates(sim, second_guest, ADMIT_ALL) == []

    def test_candidates_sorted_by_penalty(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1, submit=0.0)
        long_waiter = make_job(job_id=2, submit=0.0, nodes=1, req_time=10000.0,
                               runtime=8000.0, cpus_per_node=8)
        sim.jobs[2] = long_waiter
        sim.pending.add(long_waiter)
        sim.now = 3000.0
        sim.start_job_static(long_waiter)
        guest = pending_guest(sim, job_id=100)
        candidates = MateSelector().candidate_mates(sim, guest, ADMIT_ALL)
        assert [c.job.job_id for c in candidates] == [1, 2]

    def test_max_candidates_truncation(self):
        sim = build_sim(num_nodes=4)
        for i in range(1, 4):
            add_running(sim, i, nodes=1)
        guest = pending_guest(sim)
        selector = MateSelector(max_candidates=2)
        assert len(selector.candidate_mates(sim, guest, ADMIT_ALL)) == 2


class TestSelection:
    def test_exact_single_mate_match(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1)
        guest = pending_guest(sim, nodes=1)
        selection = MateSelector().select(sim, guest, ADMIT_ALL)
        assert selection is not None
        assert [m.job_id for m in selection.mates] == [1]
        assert sum(selection.guest_cpus_per_node.values()) == 4
        assert selection.guest_fraction == pytest.approx(0.5)
        assert selection.estimated_guest_runtime == pytest.approx(guest.requested_time * 2)

    def test_two_mates_combined(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1)
        add_running(sim, 2, nodes=1)
        guest = pending_guest(sim, nodes=2)
        selection = MateSelector(max_mates=2).select(sim, guest, ADMIT_ALL)
        assert selection is not None
        assert sorted(m.job_id for m in selection.mates) == [1, 2]
        assert len(selection.guest_cpus_per_node) == 2

    def test_max_mates_one_cannot_combine(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1)
        add_running(sim, 2, nodes=1)
        guest = pending_guest(sim, nodes=2)
        assert MateSelector(max_mates=1).select(sim, guest, ADMIT_ALL) is None

    def test_exact_weight_constraint(self):
        # A 2-node mate cannot host a 1-node guest (constraint 3 equality).
        sim = build_sim()
        add_running(sim, 1, nodes=2)
        guest = pending_guest(sim, nodes=1)
        assert MateSelector().select(sim, guest, ADMIT_ALL) is None

    def test_partial_mates_option_relaxes_constraint(self):
        sim = build_sim()
        add_running(sim, 1, nodes=2)
        guest = pending_guest(sim, nodes=1)
        selection = MateSelector(allow_partial_mates=True).select(sim, guest, ADMIT_ALL)
        assert selection is not None
        assert len(selection.guest_cpus_per_node) == 1

    def test_minimum_penalty_combination_chosen(self):
        sim = build_sim(num_nodes=6)
        add_running(sim, 1, nodes=1, req_time=20000.0, submit=0.0)
        # Job 2 waited longer -> higher penalty.
        late = make_job(job_id=2, submit=0.0, nodes=1, req_time=20000.0, runtime=15000.0,
                        cpus_per_node=8)
        sim.jobs[2] = late
        sim.pending.add(late)
        sim.now = 5000.0
        sim.start_job_static(late)
        guest = pending_guest(sim, job_id=100, nodes=1)
        selection = MateSelector().select(sim, guest, ADMIT_ALL)
        assert [m.job_id for m in selection.mates] == [1]

    def test_include_free_nodes_option(self):
        sim = build_sim(num_nodes=4)
        add_running(sim, 1, nodes=1)
        # 3 free nodes remain; guest wants 2 nodes: 1 free + 1 mate.
        guest = pending_guest(sim, nodes=2)
        selection = MateSelector(include_free_nodes=True).select(sim, guest, ADMIT_ALL)
        assert selection is not None
        assert len(selection.free_nodes_used) == 1
        assert len(selection.guest_cpus_per_node) == 2
        # The free node contributes its full CPU count.
        free_node = selection.free_nodes_used[0]
        assert selection.guest_cpus_per_node[free_node] == 8

    def test_selection_respects_rank_minimums(self):
        sim = build_sim()
        add_running(sim, 1, nodes=1, tasks_per_node=8)  # cannot shrink at all
        guest = pending_guest(sim, nodes=1)
        assert MateSelector().select(sim, guest, ADMIT_ALL) is None

    def test_no_candidates_returns_none(self):
        sim = build_sim()
        guest = pending_guest(sim, nodes=1)
        assert MateSelector().select(sim, guest, ADMIT_ALL) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MateSelector(sharing_factor=0.0)
        with pytest.raises(ValueError):
            MateSelector(max_mates=0)
        with pytest.raises(ValueError):
            MateSelector(max_candidates=0)
