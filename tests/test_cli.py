"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workloads.swf import write_swf


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == 1
        assert args.policy == "sd_policy"

    def test_figure_argument_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--workload", "3", "--scale", "0.01",
                     "--policy", "static_backfill"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--workload", "3", "--scale", "0.01", "--maxsd", "10"]) == 0
        out = capsys.readouterr().out
        assert "Improvement of SD-Policy" in out

    def test_table_command(self, capsys):
        assert main(["table", "2", "--scale", "0.2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figure_command(self, capsys):
        assert main(["figure", "3", "--workload", "3", "--scale", "0.01"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_swf_command(self, tmp_path, tiny_workload, capsys):
        path = tmp_path / "log.swf"
        write_swf(tiny_workload, path)
        assert main(["swf", str(path)]) == 0
        assert "jobs" in capsys.readouterr().out

    def test_run_with_swf_input(self, tmp_path, tiny_workload, capsys):
        path = tmp_path / "log.swf"
        write_swf(tiny_workload, path)
        assert main(["run", "--swf", str(path), "--policy", "static_backfill"]) == 0
        assert "makespan" in capsys.readouterr().out
