"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.workloads.swf import write_swf


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == 1
        assert args.policy == "sd_policy"

    def test_figure_argument_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--workload", "3", "--scale", "0.01",
                     "--policy", "static_backfill"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--workload", "3", "--scale", "0.01", "--maxsd", "10"]) == 0
        out = capsys.readouterr().out
        assert "Improvement of SD-Policy" in out

    def test_run_defaults_retain_jobs(self):
        assert build_parser().parse_args(["run"]).retain_jobs is True
        args = build_parser().parse_args(["run", "--no-retain-jobs"])
        assert args.retain_jobs is False

    def test_run_streaming_matches_retained_output(self, capsys):
        argv = ["run", "--workload", "3", "--scale", "0.01", "--maxsd", "10"]
        assert main(argv) == 0
        retained = capsys.readouterr().out
        assert main(argv + ["--no-retain-jobs"]) == 0
        streamed = capsys.readouterr().out
        # Identical metrics table; only the wall-clock line may differ.
        assert retained.splitlines()[:-1] == streamed.splitlines()[:-1]

    def test_compare_streaming(self, capsys):
        assert main(["compare", "--workload", "3", "--scale", "0.01",
                     "--maxsd", "10", "--no-retain-jobs"]) == 0
        assert "Improvement of SD-Policy" in capsys.readouterr().out

    def test_table_command(self, capsys):
        assert main(["table", "2", "--scale", "0.2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figure_command(self, capsys):
        assert main(["figure", "3", "--workload", "3", "--scale", "0.01"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_swf_command(self, tmp_path, tiny_workload, capsys):
        path = tmp_path / "log.swf"
        write_swf(tiny_workload, path)
        assert main(["swf", str(path)]) == 0
        assert "jobs" in capsys.readouterr().out

    def test_run_with_swf_input(self, tmp_path, tiny_workload, capsys):
        path = tmp_path / "log.swf"
        write_swf(tiny_workload, path)
        assert main(["run", "--swf", str(path), "--policy", "static_backfill"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_figure_4_honours_workers_and_cache(self, tmp_path, capsys):
        """Figures 4-6 are sweep-backed now: no 'not sweep-backed' note, and
        a rerun with the same cache directory is served from it."""
        cache = tmp_path / "cache"
        argv = ["figure", "4", "--workload", "3", "--scale", "0.01",
                "--workers", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "Figure 4" in first.out
        assert "not sweep-backed" not in first.err
        assert any(cache.glob("*.pkl")), "cache directory was not populated"
        assert main(argv) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_figure_7_honours_workers(self, tmp_path, capsys):
        assert main(["figure", "7", "--workload", "3", "--scale", "0.01",
                     "--workers", "2", "--cache-dir", str(tmp_path / "c")]) == 0
        captured = capsys.readouterr()
        assert "Figure 7" in captured.out
        assert "not sweep-backed" not in captured.err

    def test_figure_9_warns_on_ignored_workload_args(self, tmp_path, capsys):
        assert main(["figure", "9", "--workload", "3", "--scale", "0.02",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert "--workload/--swf are ignored" in captured.err

    def test_figure_9_no_warning_by_default(self, capsys):
        assert main(["figure", "9", "--scale", "0.02"]) == 0
        captured = capsys.readouterr()
        assert "ignored" not in captured.err


class TestWorkersPrecedence:
    """An explicit ``--workers`` must beat ``REPRO_SWEEP_WORKERS`` on every
    sweep-backed subcommand; the env var applies only when the flag is
    absent."""

    def test_explicit_workers_beats_env_on_sweep(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        assert main(["sweep", "--workload", "3", "--scale", "0.01",
                     "--workers", "2"]) == 0
        assert "workers: 2" in capsys.readouterr().err

    def test_env_applies_without_flag(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert main(["sweep", "--workload", "3", "--scale", "0.01"]) == 0
        assert "workers: 3" in capsys.readouterr().err

    def test_all_subcommands_forward_explicit_workers(self, monkeypatch, capsys):
        """Every sweep-backed subcommand constructs its runner with the
        explicit flag value — never ``None`` (which would let the env var
        win on that path)."""
        import repro.cli as cli_mod

        created = []
        real_runner = cli_mod.SweepRunner

        class RecordingRunner(real_runner):
            def __init__(self, max_workers=None, **kwargs):
                created.append(max_workers)
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(cli_mod, "SweepRunner", RecordingRunner)
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "7")
        for argv in (
            ["sweep", "--workload", "3", "--scale", "0.01", "--workers", "2"],
            ["scenario", "table2", "--scale", "0.2", "--workers", "2"],
            ["table", "1", "--scale", "0.01", "--workers", "2"],
            ["table", "2", "--scale", "0.2", "--workers", "2"],
            ["figure", "3", "--workload", "3", "--scale", "0.01",
             "--workers", "2"],
        ):
            assert main(argv) == 0, argv
            capsys.readouterr()
        assert created == [2] * len(created) and created, (
            f"a subcommand dropped --workers: {created}"
        )


class TestShardCLI:
    def _sweep_argv(self, cache, extra=()):
        return ["sweep", "--workload", "3", "--scale", "0.01",
                "--cache-dir", str(cache), *extra]

    def test_shard_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--workload", "3", "--scale", "0.01", "--shard", "1/2"])
        assert excinfo.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0/2", "3/2", "x", "1/0"])
    def test_shard_argument_validation(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--cache-dir", "c", "--shard", bad]
            )

    def test_merge_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "merge", "--workload", "3", "--scale", "0.01"])
        assert excinfo.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_merge_without_manifests_is_clean_error(self, tmp_path, capsys):
        assert main(["sweep", "merge", "--workload", "3", "--scale", "0.01",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "no shard manifests" in capsys.readouterr().err

    def test_shard_then_merge_matches_single_process(self, tmp_path, capsys):
        assert main(["sweep", "--workload", "3", "--scale", "0.01",
                     "--workers", "1"]) == 0
        golden = capsys.readouterr().out

        cache = tmp_path / "cache"
        assert main(self._sweep_argv(cache, ["--shard", "1/2"])) == 0
        first = capsys.readouterr().out
        assert "shard run finished" in first
        assert main(self._sweep_argv(cache, ["--shard", "2/2"])) == 0
        capsys.readouterr()
        assert main(["sweep", "merge", "--workload", "3", "--scale", "0.01",
                     "--cache-dir", str(cache)]) == 0
        merged = capsys.readouterr().out
        assert merged == golden, "merged output diverged from single-process run"

    def test_merge_fails_with_missing_shard(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(self._sweep_argv(cache, ["--shard", "1/2"])) == 0
        capsys.readouterr()
        assert main(["sweep", "merge", "--workload", "3", "--scale", "0.01",
                     "--cache-dir", str(cache)]) == 2
        assert "2/2" in capsys.readouterr().err

    def test_scenario_shard_prints_progress_not_report(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["scenario", "figure4-6", "--scale", "0.01",
                "--cache-dir", str(cache)]
        assert main(argv + ["--shard", "1/2"]) == 0
        captured = capsys.readouterr()
        assert "shard run finished" in captured.out
        assert "Figure 4" not in captured.out
        assert main(argv + ["--shard", "2/2"]) == 0
        capsys.readouterr()
        # All shards done: the unsharded rerun assembles from the cache.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "Figure 4" in captured.out
        assert "cache hits: 2" in captured.err


class TestScenarioCommand:
    def _spec_path(self, tmp_path, tiny_workload, **overrides):
        swf = tmp_path / "tiny.swf"
        write_swf(tiny_workload, swf)
        spec = {
            "name": "cli-test",
            "workloads": [{"swf": str(swf)}],
            "policy": "sd_policy",
            "grid": {"max_slowdown": [{"label": "MAXSD inf", "value": "inf"}]},
            "base": {"runtime_model": "ideal"},
            "baseline": {"policy": "static_backfill",
                         "kwargs": {"runtime_model": "ideal"}},
        }
        spec.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        return path

    def test_list_builtins(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure1-3", "figure4-6", "figure7", "figure8", "figure9", "table2"):
            assert name in out

    def test_no_spec_is_an_error_with_usage(self, capsys):
        assert main(["scenario"]) == 2
        captured = capsys.readouterr()
        assert "built-in scenarios" in captured.out
        assert "usage" in captured.err

    def test_unknown_spec_rejected(self, capsys):
        assert main(["scenario", "no-such-scenario"]) == 2
        assert "neither a spec file nor a built-in" in capsys.readouterr().err

    def test_spec_file_runs_with_workers_and_cache(self, tmp_path, tiny_workload, capsys):
        path = self._spec_path(tmp_path, tiny_workload)
        cache = tmp_path / "cache"
        argv = ["scenario", str(path), "--workers", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "Scenario cli-test" in first.out
        assert "MAXSD inf" in first.out
        assert "cache hits: 0" in first.err
        # Rerun: both runs come from the on-disk cache.
        assert main(argv) == 0
        assert "cache hits: 2" in capsys.readouterr().err

    def test_builtin_table2_runs(self, capsys):
        assert main(["scenario", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_builtin_accepts_scale_override(self, capsys):
        assert main(["scenario", "table2", "--scale", "0.1"]) == 0
        assert "Table 2 (scale=0.1)" in capsys.readouterr().out

    def test_spec_file_notes_ignored_scale(self, tmp_path, tiny_workload, capsys):
        path = self._spec_path(tmp_path, tiny_workload)
        assert main(["scenario", str(path), "--scale", "0.5"]) == 0
        assert "only apply to built-in scenarios" in capsys.readouterr().err

    def test_malformed_spec_reports_error(self, tmp_path, tiny_workload, capsys):
        path = self._spec_path(tmp_path, tiny_workload, report="piechart")
        assert main(["scenario", str(path)]) == 2
        assert "unknown report" in capsys.readouterr().err

    def test_invalid_json_reports_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["scenario", str(path)]) == 2
        assert "invalid scenario spec" in capsys.readouterr().err

    def test_report_cell_mismatch_reports_error(self, tmp_path, tiny_workload, capsys):
        # 'daily' needs exactly one cell; a two-cell grid fails at render
        # time with a clean message, not a traceback.
        path = self._spec_path(
            tmp_path, tiny_workload, report="daily",
            grid={"max_slowdown": [5.0, 10.0]},
        )
        assert main(["scenario", str(path)]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestLintCommand:
    """`repro-sdpolicy lint` — the same engine as python -m repro.devtools.lint."""

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n", encoding="utf-8")
        assert main(["lint", str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        scoped = tmp_path / "simulator"
        scoped.mkdir()
        target = scoped / "bad.py"
        target.write_text(
            "import random\n\n\ndef f():\n    return random.random()\n",
            encoding="utf-8",
        )
        assert main(["lint", str(target)]) == 1
        assert "det-unseeded-random" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "det-wallclock" in out
        assert "store-pickle" in out

    def test_json_flag(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n", encoding="utf-8")
        assert main(["lint", "--json", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
