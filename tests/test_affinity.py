"""Tests for socket-aware CPU distribution."""

from __future__ import annotations

import pytest

from repro.nodemanager.affinity import AffinityError, distribute_cpus, isolation_score


class TestDistributeCpus:
    def test_single_job_full_node(self):
        result = distribute_cpus({1: 48}, sockets=2, cores_per_socket=24)
        assert result[1].num_cores == 48
        assert result[1].cores == tuple(range(48))

    def test_two_jobs_half_node_each_isolated_per_socket(self):
        result = distribute_cpus({1: 24, 2: 24}, sockets=2, cores_per_socket=24)
        assert result[1].num_cores == 24
        assert result[2].num_cores == 24
        assert set(result[1].cores).isdisjoint(result[2].cores)
        # The paper's SharingFactor=0.5 case: one socket each.
        assert result[1].sockets_used(24) != result[2].sockets_used(24)
        assert isolation_score(result, 24) == 1.0

    def test_counts_always_match_request(self):
        request = {1: 10, 2: 7, 3: 5}
        result = distribute_cpus(request, sockets=2, cores_per_socket=12)
        for job_id, cpus in request.items():
            assert result[job_id].num_cores == cpus

    def test_assignments_disjoint(self):
        result = distribute_cpus({1: 10, 2: 20, 3: 18}, sockets=2, cores_per_socket=24)
        seen = set()
        for assignment in result.values():
            assert seen.isdisjoint(assignment.cores)
            seen.update(assignment.cores)

    def test_over_subscription_rejected(self):
        with pytest.raises(AffinityError):
            distribute_cpus({1: 30, 2: 30}, sockets=2, cores_per_socket=24)

    def test_zero_cpus_rejected(self):
        with pytest.raises(AffinityError):
            distribute_cpus({1: 0}, sockets=2, cores_per_socket=24)

    def test_deterministic(self):
        a = distribute_cpus({3: 8, 1: 16, 2: 8}, sockets=2, cores_per_socket=16)
        b = distribute_cpus({3: 8, 1: 16, 2: 8}, sockets=2, cores_per_socket=16)
        assert a == b

    def test_large_job_claims_whole_sockets_first(self):
        result = distribute_cpus({1: 24, 2: 4}, sockets=2, cores_per_socket=24)
        # Job 1 should sit entirely on one socket.
        assert len(result[1].sockets_used(24)) == 1

    def test_empty_request(self):
        assert distribute_cpus({}, sockets=2, cores_per_socket=24) == {}


class TestIsolationScore:
    def test_perfect_isolation(self):
        result = distribute_cpus({1: 4, 2: 4}, sockets=2, cores_per_socket=4)
        assert isolation_score(result, 4) == 1.0

    def test_shared_socket_detected(self):
        result = distribute_cpus({1: 2, 2: 2}, sockets=1, cores_per_socket=8)
        assert isolation_score(result, 8) == 0.0

    def test_empty_assignment(self):
        assert isolation_score({}, 24) == 1.0
