"""Unit tests for the future-availability profile (ReservationMap)."""

from __future__ import annotations

import math

import pytest

from repro.simulator.reservation import ReservationMap
from tests.conftest import make_job


class TestBasics:
    def test_free_now(self):
        profile = ReservationMap(total_nodes=10, now=0.0, free_now=4)
        assert profile.free_nodes_at(0.0) == 4
        assert profile.earliest_start(4) == 0.0
        assert profile.earliest_start(5) == math.inf

    def test_invalid_free_now(self):
        with pytest.raises(ValueError):
            ReservationMap(total_nodes=4, now=0.0, free_now=5)

    def test_release_increases_future_availability(self):
        profile = ReservationMap(total_nodes=10, now=0.0, free_now=2, releases=[(100.0, 4)])
        assert profile.free_nodes_at(50.0) == 2
        assert profile.free_nodes_at(100.0) == 6
        assert profile.earliest_start(5) == 100.0

    def test_zero_nodes_needed_starts_now(self):
        profile = ReservationMap(total_nodes=10, now=5.0, free_now=0)
        assert profile.earliest_start(0) == 5.0

    def test_request_larger_than_cluster_never_starts(self):
        profile = ReservationMap(total_nodes=4, now=0.0, free_now=4)
        assert profile.earliest_start(5) == math.inf

    def test_availability_clamped_to_total(self):
        profile = ReservationMap(
            total_nodes=4, now=0.0, free_now=4, releases=[(10.0, 100)]
        )
        assert profile.free_nodes_at(20.0) == 4


class TestReservations:
    def test_reservation_blocks_interval(self):
        profile = ReservationMap(total_nodes=10, now=0.0, free_now=10)
        profile.add_reservation(start=100.0, duration=50.0, nodes=8)
        # A short 4-node job fits entirely before the reservation.
        assert profile.earliest_start(4, duration=60.0) == 0.0
        # A 4-node 200s job would overlap the reservation window (where only
        # 2 nodes remain free), so it must start after the reservation ends.
        assert profile.earliest_start(4, duration=200.0) == 150.0
        # Same for an 8-node 200s job.
        assert profile.earliest_start(8, duration=200.0) == 150.0

    def test_duration_window_honoured(self):
        profile = ReservationMap(total_nodes=4, now=0.0, free_now=4)
        profile.add_reservation(start=50.0, duration=10.0, nodes=4)
        # Short job fits before the reservation.
        assert profile.earliest_start(4, duration=50.0) == 0.0
        # Longer job would collide, so it starts after the reservation.
        assert profile.earliest_start(4, duration=51.0) == 60.0

    def test_infinite_duration_ignores_window(self):
        profile = ReservationMap(total_nodes=4, now=0.0, free_now=2, releases=[(30.0, 2)])
        assert profile.earliest_start(3, duration=None) == 30.0
        assert profile.earliest_start(3, duration=math.inf) == 30.0

    def test_reservation_with_zero_nodes_is_noop(self):
        profile = ReservationMap(total_nodes=4, now=0.0, free_now=4)
        profile.add_reservation(10.0, 10.0, 0)
        assert profile.earliest_start(4) == 0.0

    def test_profile_points_sorted(self):
        profile = ReservationMap(total_nodes=8, now=0.0, free_now=3,
                                 releases=[(50.0, 2), (20.0, 3)])
        points = profile.profile()
        times = [t for t, _ in points]
        assert times == sorted(times)
        assert points[0] == (0.0, 3)


class TestFromRunningJobs:
    def _running_job(self, job_id, start, req_time, nodes):
        job = make_job(job_id=job_id, submit=0.0, nodes=nodes, req_time=req_time,
                       runtime=req_time / 2)
        job.mark_started(start, list(range(nodes)))
        job.reconfigure(start, {n: 8 for n in range(nodes)}, speed=1.0)
        return job

    def test_uses_requested_time_by_default(self):
        job = self._running_job(1, start=0.0, req_time=100.0, nodes=2)
        profile = ReservationMap.from_running_jobs(
            total_nodes=4, now=10.0, free_now=2, running_jobs=[job]
        )
        assert profile.earliest_start(4) == 100.0

    def test_oracle_mode_uses_predicted_end(self):
        job = self._running_job(1, start=0.0, req_time=100.0, nodes=2)
        profile = ReservationMap.from_running_jobs(
            total_nodes=4, now=10.0, free_now=2, running_jobs=[job],
            use_requested_time=False,
        )
        # Actual runtime is 50s (half the request).
        assert profile.earliest_start(4) == 50.0

    def test_estimate_wait(self):
        job = self._running_job(1, start=0.0, req_time=100.0, nodes=4)
        profile = ReservationMap.from_running_jobs(
            total_nodes=4, now=10.0, free_now=0, running_jobs=[job]
        )
        waiting = make_job(job_id=2, nodes=2, req_time=50.0)
        assert profile.estimate_wait(waiting) == pytest.approx(90.0)

    def test_pending_job_ignored(self):
        pending = make_job(job_id=3, nodes=2)
        profile = ReservationMap.from_running_jobs(
            total_nodes=4, now=0.0, free_now=4, running_jobs=[pending]
        )
        assert profile.earliest_start(4) == 0.0
