"""Tests for the pluggable sweep execution backends.

Covers the :mod:`repro.experiments.executors` subsystem: the serial /
process-pool extraction, deterministic sharding with resumable manifests,
the merge step's bit-identity with a single-process run, and
interrupt/failure cleanup (no orphaned ``*.tmp`` cache files, no leftover
pool workers, resumed shards re-run only unfinished tasks).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.experiments.executors import (
    MANIFEST_DIR_NAME,
    ExecutorError,
    MergeExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    parse_shard,
    sweep_id,
)
from repro.experiments.sweep import SweepError, SweepRunner, SweepTask
from repro.workloads.cirne import CirneWorkloadModel

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=50, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.0, median_runtime_s=1800.0, seed=7, name="executor_test",
    ).generate()


@pytest.fixture(scope="module")
def tasks(workload):
    """Five tasks so a 2-way split is uneven (3 + 2)."""
    maxsd = [
        SweepTask(
            workload=workload, policy="sd_policy", key=f"MAXSD {m}", seed=0,
            kwargs={"runtime_model": "ideal", "max_slowdown": float(m),
                    "sharing_factor": 0.5},
        )
        for m in (5, 10, 50, 100)
    ]
    return [
        SweepTask(workload=workload, policy="static_backfill", key="static",
                  seed=0, kwargs={"runtime_model": "ideal"})
    ] + maxsd


def _job_times(run):
    return [(j.job_id, j.start_time, j.end_time) for j in run.jobs]


class TestParseShard:
    def test_valid(self):
        assert parse_shard("1/4") == (0, 4)
        assert parse_shard("4/4") == (3, 4)
        assert parse_shard(" 2/3 ") == (1, 3)

    @pytest.mark.parametrize("bad", ["0/4", "5/4", "1", "a/b", "1/0", "-1/2", "1/2/3"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_shard(bad)


class TestExecutorSelection:
    def test_serial_and_pool_match(self, tasks):
        serial = SweepRunner(max_workers=1).run(tasks)
        pooled = SweepRunner(max_workers=2).run(tasks)
        assert serial.complete and pooled.complete
        for key in serial.runs:
            assert serial[key].metrics.as_dict() == pooled[key].metrics.as_dict()

    def test_explicit_executor_override(self, tasks):
        result = SweepRunner(max_workers=4, executor=SerialExecutor()).run(tasks)
        assert result.complete and len(result) == len(tasks)

    def test_sharding_requires_cache(self, tasks):
        runner = SweepRunner(max_workers=1, executor=ShardedExecutor(0, 2))
        with pytest.raises(ExecutorError, match="cache"):
            runner.run(tasks)


class TestShardedExecution:
    def test_round_robin_partition_is_deterministic(self):
        ex = ShardedExecutor(1, 3)
        assert [i for i in range(7) if ex.owns(i)] == [1, 4]

    def test_shard_runs_only_its_slice(self, tasks, tmp_path):
        cache = tmp_path / "cache"
        part = SweepRunner(
            max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        assert not part.complete
        assert part.total_tasks == len(tasks)
        assert [e.key for e in part.entries] == [
            t.resolved_key() for i, t in enumerate(tasks) if i % 2 == 0
        ]

    def test_sharded_merge_is_bit_identical(self, tasks, tmp_path):
        golden = SweepRunner(max_workers=1).run(tasks)
        cache = tmp_path / "cache"
        for i in range(2):
            SweepRunner(
                max_workers=1, cache_dir=cache, executor=ShardedExecutor(i, 2)
            ).run(tasks)
        merged = SweepRunner(
            max_workers=1, cache_dir=cache, executor=MergeExecutor()
        ).run(tasks)
        assert merged.complete
        assert [e.key for e in merged.entries] == [t.resolved_key() for t in tasks]
        for key in golden.runs:
            assert golden[key].metrics.as_dict() == merged[key].metrics.as_dict()
            assert _job_times(golden[key]) == _job_times(merged[key])

    def test_manifest_layout(self, tasks, tmp_path):
        cache = tmp_path / "cache"
        SweepRunner(
            max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        manifest_dir = cache / MANIFEST_DIR_NAME
        files = sorted(manifest_dir.glob("*.json"))
        assert len(files) == 1
        manifest = json.loads(files[0].read_text(encoding="utf-8"))
        assert manifest["shard_index"] == 0
        assert manifest["shard_count"] == 2
        assert manifest["total_tasks"] == len(tasks)
        owned = [t for i, t in enumerate(tasks) if i % 2 == 0]
        assert [r["key"] for r in manifest["tasks"]] == [t.resolved_key() for t in owned]
        assert all(r["status"] == "done" for r in manifest["tasks"])
        assert all(Path(r["cache_path"]).exists() for r in manifest["tasks"])
        # v3: every done record carries the blob's SHA-256 content digest.
        assert all(
            isinstance(r["digest"], str) and len(r["digest"]) == 64
            for r in manifest["tasks"]
        )

    def test_custom_manifest_dir(self, tasks, tmp_path):
        cache, manifests = tmp_path / "cache", tmp_path / "m"
        SweepRunner(
            max_workers=1, cache_dir=cache,
            executor=ShardedExecutor(0, 1, manifest_dir=manifests),
        ).run(tasks)
        assert list(manifests.glob("*.json"))
        merged = SweepRunner(
            max_workers=1, cache_dir=cache,
            executor=MergeExecutor(manifest_dir=manifests),
        ).run(tasks)
        assert merged.complete

    def test_shard_inherits_runner_worker_budget(self, tasks, tmp_path, monkeypatch):
        """A runner configured serial must not get a forked pool behind its
        back: ShardedExecutor without an explicit max_workers inherits the
        runner's resolved budget."""
        import repro.experiments.executors as executors_mod

        budgets = []
        real = executors_mod.default_executor

        def recording(max_workers, pending_count):
            budgets.append(max_workers)
            return real(max_workers, pending_count)

        monkeypatch.setattr(executors_mod, "default_executor", recording)
        SweepRunner(
            max_workers=1, cache_dir=tmp_path / "a", executor=ShardedExecutor(0, 2)
        ).run(tasks)
        assert budgets == [1]
        budgets.clear()
        SweepRunner(
            max_workers=1, cache_dir=tmp_path / "b",
            executor=ShardedExecutor(0, 2, max_workers=2),
        ).run(tasks)
        assert budgets == [2]  # an explicit executor setting still wins

    def test_failed_task_marked_in_manifest(self, workload, tmp_path):
        cache = tmp_path / "cache"
        bad = [SweepTask(workload=workload, policy="no_such_policy", key="bad")]
        runner = SweepRunner(
            max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 1)
        )
        with pytest.raises(SweepError):
            runner.run(bad)
        manifest = json.loads(
            next((cache / MANIFEST_DIR_NAME).glob("*.json")).read_text(encoding="utf-8")
        )
        assert manifest["tasks"][0]["status"] == "failed"


class TestResume:
    def test_resumed_shard_reexecutes_only_unfinished(self, tasks, tmp_path):
        cache = tmp_path / "cache"

        def run_shard():
            events = []
            SweepRunner(
                max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 2),
                progress=lambda done, total, e: events.append(e),
            ).run(tasks)
            return events

        first = run_shard()
        assert all(not e.from_cache for e in first)
        owned_keys = [e.key for e in first]
        # Simulate a kill that lost one task's result but kept the others.
        lost = owned_keys[1]
        runner = SweepRunner(max_workers=1, cache_dir=cache)
        lost_index = [t.resolved_key() for t in tasks].index(lost)
        runner._cache_path(tasks[lost_index]).unlink()

        resumed = run_shard()
        executed = [e.key for e in resumed if not e.from_cache]
        assert executed == [lost]
        assert sorted(e.key for e in resumed if e.from_cache) == sorted(
            k for k in owned_keys if k != lost
        )

    def test_merge_refuses_missing_shard(self, tasks, tmp_path):
        cache = tmp_path / "cache"
        SweepRunner(
            max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 2)
        ).run(tasks)
        runner = SweepRunner(max_workers=1, cache_dir=cache, executor=MergeExecutor())
        with pytest.raises(ExecutorError, match="2/2"):
            runner.run(tasks)

    def test_merge_refuses_without_manifests(self, tasks, tmp_path):
        runner = SweepRunner(
            max_workers=1, cache_dir=tmp_path / "cache", executor=MergeExecutor()
        )
        with pytest.raises(ExecutorError, match="no shard manifests"):
            runner.run(tasks)

    def test_merge_distinguishes_corrupt_from_pruned_cache(self, tasks, tmp_path):
        cache = tmp_path / "cache"
        SweepRunner(
            max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 1)
        ).run(tasks)
        next(cache.glob("*.pkl")).write_bytes(b"torn write")
        runner = SweepRunner(max_workers=1, cache_dir=cache, executor=MergeExecutor())
        with pytest.raises(ExecutorError, match="quarantined"):
            runner.run(tasks)

    def test_merge_detects_pruned_cache(self, tasks, tmp_path):
        cache = tmp_path / "cache"
        SweepRunner(
            max_workers=1, cache_dir=cache, executor=ShardedExecutor(0, 1)
        ).run(tasks)
        next(cache.glob("*.pkl")).unlink()
        runner = SweepRunner(max_workers=1, cache_dir=cache, executor=MergeExecutor())
        with pytest.raises(ExecutorError, match="cache is missing"):
            runner.run(tasks)

    def test_sweep_id_is_order_sensitive_and_store_agnostic(self):
        keys = ["a", "b", "c"]
        assert sweep_id(keys) == sweep_id(list(keys))
        assert sweep_id(keys) != sweep_id(keys[::-1])
        with pytest.raises(ExecutorError, match="result store"):
            sweep_id(["a", None, "c"])


class TestInterruptAndFailureCleanup:
    def test_parallel_failure_leaves_no_tmp_and_no_workers(self, workload, tmp_path):
        tasks = [
            SweepTask(workload=workload, policy="fcfs", key="ok"),
            SweepTask(workload=workload, policy="no_such_policy", key="bad"),
            SweepTask(workload=workload, policy="fcfs", key="ok2"),
        ]
        runner = SweepRunner(max_workers=2, cache_dir=tmp_path)
        with pytest.raises(SweepError):
            runner.run(tasks)
        assert not list(tmp_path.glob("*.tmp")), "orphaned temp cache files"
        deadline = time.monotonic() + 10
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children(), "pool workers still alive"

    def test_sigint_mid_sweep_cleans_up(self, tmp_path):
        """A killed (SIGINT) parallel sweep leaves no ``*.tmp`` cache files
        and no live pool workers, and a rerun resumes from the cache."""
        cache = tmp_path / "cache"
        script = textwrap.dedent(
            """
            from repro.experiments.sweep import SweepRunner, SweepTask
            from repro.workloads.cirne import CirneWorkloadModel

            wl = CirneWorkloadModel(
                num_jobs=120, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
                target_load=1.2, median_runtime_s=1800.0, seed=9, name="interrupt",
            ).generate()
            tasks = [
                SweepTask(workload=wl, policy="sd_policy", key=f"m{i}", seed=0,
                          kwargs={"runtime_model": "ideal",
                                  "max_slowdown": 5.0 + i})
                for i in range(12)
            ]
            SweepRunner(max_workers=2, cache_dir=%r).run(tasks)
            """
            % str(cache)
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                if list(cache.glob("*.pkl")):
                    break
                if child.poll() is not None:
                    pytest.fail("sweep child exited before producing results")
                time.sleep(0.05)
            else:
                pytest.fail("sweep child produced no cache entries in time")
            child.send_signal(signal.SIGINT)
            child.wait(timeout=90)
        finally:
            if child.poll() is None:
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=30)
        assert child.returncode != 0  # KeyboardInterrupt, not success
        assert not list(cache.glob("*.tmp")), "orphaned temp cache files"
        # The whole process group (pool workers included) must be gone.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                os.killpg(child.pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        else:
            os.killpg(child.pid, signal.SIGKILL)
            pytest.fail("pool workers survived the interrupt")
        # Completed tasks are cache hits on resume; the pickles are intact.
        pickles = list(cache.glob("*.pkl"))
        assert pickles
        probe = SweepRunner(max_workers=1, cache_dir=cache)
        for path in pickles:
            run, corrupt, digest = probe._cache_load(path.stem)
            assert run is not None and not corrupt, f"torn cache entry {path.name}"
            assert digest, f"cache entry {path.name} has no content digest"


class TestPartialOutcomeConsumers:
    def test_emulator_compare_rejects_sharded_runner(self, tmp_path):
        from repro.realrun.emulator import RealRunEmulator

        runner = SweepRunner(
            max_workers=1, cache_dir=tmp_path, executor=ShardedExecutor(0, 2)
        )
        with pytest.raises(ExecutorError, match="unsharded runner"):
            RealRunEmulator(scale=0.05, seed=77).compare(runner=runner)


class TestPoolExecutorDirect:
    def test_pool_requires_positive_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(0)

    def test_sharded_rejects_bad_indices(self):
        with pytest.raises(ValueError):
            ShardedExecutor(2, 2)
        with pytest.raises(ValueError):
            ShardedExecutor(-1, 2)
        with pytest.raises(ValueError):
            ShardedExecutor(0, 0)
