"""Fixture: an unparseable file — the engine must report, not crash."""


def oops(:
    return 1
