"""Fixture: a suppression naming a rule that does not exist."""

VALUE = 1  # repro: allow[not-a-rule] fixture: should be reported
