"""Fixture: det-unseeded-random violations (scoped as ``simulator/``)."""

import random

import numpy as np
from random import shuffle


def bad_jitter():
    return random.random() + np.random.rand()


def allowed_generator(seed):
    rng = np.random.default_rng(seed)
    return rng.random()


def suppressed_jitter():
    # repro: allow[det-unseeded-random] fixture: demonstrates suppression
    return random.gauss(0.0, 1.0)


def uses_shuffle(items):
    shuffle(items)
    return items
