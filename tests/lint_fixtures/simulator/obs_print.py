"""Fixture: obs-print violations (scoped as ``simulator/``)."""

import logging

_log = logging.getLogger(__name__)


def report_progress(done, total):
    print(f"progress {done}/{total}")


def logging_is_fine(done, total):
    _log.info("progress %d/%d", done, total)


def suppressed_banner():
    # repro: allow[obs-print] fixture: demonstrates suppression
    print("starting up")
