"""Fixture: a suppression that silences nothing."""

# repro: allow[det-unseeded-random] fixture: nothing to silence here
VALUE = 1
