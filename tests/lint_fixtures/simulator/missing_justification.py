"""Fixture: a working suppression that carries no justification."""

import random


def bare():
    return random.random()  # repro: allow[det-unseeded-random]
