"""Fixture: det-set-order violations (scoped as ``workloads/``)."""


def collect_tags(tags):
    out = []
    for tag in {"alpha", "beta"} | set(tags):
        out.append(tag)
    return out


def sorted_is_fine(tags):
    return [tag for tag in sorted(set(tags))]


def suppressed_names(jobs):
    # repro: allow[det-set-order] fixture: demonstrates suppression
    return ",".join({job.name for job in jobs})
