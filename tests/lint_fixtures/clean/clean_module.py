"""Fixture: out-of-scope code — determinism rules do not apply here."""

import random


def jitter():
    return random.random()
