"""Fixture: arch-realrun-import violations (scoped as ``core/``)."""

import repro.realrun
import repro.realrun.emulator
from repro.realrun.apps import APPLICATIONS
from repro import realrun


def promoted_import_is_clean():
    from repro.core.profiles import APPLICATIONS as promoted

    return promoted


def suppressed_import():
    # repro: allow[arch-realrun-import] fixture: demonstrates suppression
    from repro.realrun.interference import co_run_slowdown

    return co_run_slowdown
