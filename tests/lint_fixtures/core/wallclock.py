"""Fixture: det-wallclock violations (scoped as ``core/``)."""

import time
import uuid
from datetime import datetime


def stamp_key(prefix):
    return f"{prefix}-{time.time()}-{uuid.uuid4()}"


def suppressed_stamp():
    # repro: allow[det-wallclock] fixture: demonstrates suppression
    return datetime.now().isoformat()
