"""Fixture: exception-discipline violations (scoped as ``experiments/``)."""


def bare(fn):
    try:
        return fn()
    except:
        return None


def quiet(fn):
    try:
        fn()
    except Exception:
        pass


def broad(fn):
    out = []
    try:
        out.append(fn())
    except Exception as exc:
        out.append(str(exc))
    return out


def reraising_is_fine(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def suppressed(fn):
    try:
        return fn()
    # repro: allow[exc-swallow] fixture: demonstrates suppression
    except ValueError:
        pass
