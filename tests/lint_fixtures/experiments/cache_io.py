"""Fixture: store-discipline violations (scoped as ``experiments/``)."""

import pickle
from pathlib import Path


def load_entry(cache_dir, key):
    blob = Path(cache_dir) / f"{key}.pkl"
    with open(blob, "rb") as fh:
        return pickle.load(fh)


def suppressed_dump(manifest_path, payload):
    # repro: allow[store-pickle] fixture: demonstrates suppression
    data = pickle.dumps(payload)
    # repro: allow[store-direct-io] fixture: demonstrates suppression
    Path(manifest_path).write_bytes(data)
