"""Unit tests for the pending-job queue."""

from __future__ import annotations

import pytest

from repro.simulator.pending_queue import PendingQueue
from tests.conftest import make_job


class TestPendingQueue:
    def test_add_and_contains(self):
        q = PendingQueue()
        q.add(make_job(job_id=1))
        assert 1 in q
        assert len(q) == 1
        assert bool(q)

    def test_duplicate_add_rejected(self):
        q = PendingQueue()
        q.add(make_job(job_id=1))
        with pytest.raises(ValueError):
            q.add(make_job(job_id=1))

    def test_remove(self):
        q = PendingQueue()
        q.add(make_job(job_id=1))
        job = q.remove(1)
        assert job.job_id == 1
        assert 1 not in q
        assert not q

    def test_get_returns_none_for_missing(self):
        assert PendingQueue().get(99) is None

    def test_fifo_order(self):
        q = PendingQueue()
        for i, submit in enumerate([0.0, 10.0, 20.0], start=1):
            q.add(make_job(job_id=i, submit=submit))
        assert [j.job_id for j in q.ordered()] == [1, 2, 3]
        assert q.head().job_id == 1

    def test_custom_priority_overrides_fifo(self):
        q = PendingQueue()
        q.add(make_job(job_id=1, submit=0.0))
        q.add(make_job(job_id=2, submit=10.0, priority=1e9))
        assert [j.job_id for j in q.ordered()] == [2, 1]

    def test_iteration_follows_order(self):
        q = PendingQueue()
        q.add(make_job(job_id=3, submit=5.0))
        q.add(make_job(job_id=4, submit=6.0))
        assert [j.job_id for j in q] == [3, 4]

    def test_head_of_empty_queue(self):
        assert PendingQueue().head() is None

    def test_remove_and_readd_preserves_fifo_order(self):
        """Regression: re-adding an earlier-submitted job after remove()
        appends it at the dict's end, so the FIFO fast path must not trust
        insertion order any more."""
        q = PendingQueue()
        for i, submit in enumerate([0.0, 10.0, 20.0], start=1):
            q.add(make_job(job_id=i, submit=submit))
        q.remove(1)
        q.add(make_job(job_id=1, submit=0.0))  # now last in insertion order
        assert [j.job_id for j in q.ordered()] == [1, 2, 3]
        assert q.head().job_id == 1

    def test_out_of_order_submit_times_are_sorted(self):
        q = PendingQueue()
        q.add(make_job(job_id=1, submit=50.0))
        q.add(make_job(job_id=2, submit=10.0))
        q.add(make_job(job_id=3, submit=30.0))
        assert [j.job_id for j in q.ordered()] == [2, 3, 1]

    def test_same_submit_time_ties_break_on_job_id(self):
        q = PendingQueue()
        q.add(make_job(job_id=5, submit=10.0))
        q.add(make_job(job_id=2, submit=10.0))
        assert [j.job_id for j in q.ordered()] == [2, 5]

    def test_in_order_insertion_keeps_fast_path(self):
        q = PendingQueue()
        for i in range(1, 5):
            q.add(make_job(job_id=i, submit=float(i)))
        assert q._fifo_only
        q.remove(4)
        q.add(make_job(job_id=6, submit=6.0))  # still behind the tail: fine
        assert q._fifo_only
        assert [j.job_id for j in q.ordered()] == [1, 2, 3, 6]
