"""Tests for the declarative scenario subsystem (:mod:`repro.experiments.scenario`)."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.scenario import (
    BUILTIN_SCENARIOS,
    ScenarioError,
    ScenarioSpec,
    WorkloadRef,
    builtin_scenario,
    decode_value,
    encode_value,
    load_spec,
    render_report,
    run_scenario,
    save_spec,
)
from repro.experiments.sweep import SweepRunner
from repro.workloads.cirne import CirneWorkloadModel


@pytest.fixture(scope="module")
def workload():
    return CirneWorkloadModel(
        num_jobs=60, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
        target_load=1.0, median_runtime_s=1800.0, seed=7, name="scenario_test",
    ).generate()


def _spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="test",
        workloads=[WorkloadRef(name="scenario_test")],
        policy="sd_policy",
        grid={"max_slowdown": [10.0, {"label": "MAXSD inf", "value": "inf"}]},
        base={"runtime_model": "ideal", "sharing_factor": 0.5},
        baseline={"policy": "static_backfill", "kwargs": {"runtime_model": "ideal"}},
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValueCoding:
    def test_inf_round_trip(self):
        assert encode_value(math.inf) == "inf"
        assert encode_value(-math.inf) == "-inf"
        assert decode_value("inf") == math.inf
        assert decode_value("-inf") == -math.inf

    def test_nested_structures(self):
        original = {"a": [1.5, math.inf], "b": {"c": "dynamic"}}
        encoded = encode_value(original)
        json.dumps(encoded)  # must be strict-JSON safe
        assert decode_value(encoded) == original

    def test_plain_strings_survive(self):
        assert decode_value("ideal") == "ideal"
        assert decode_value("dynamic") == "dynamic"

    def test_nan_rejected(self):
        with pytest.raises(ScenarioError):
            encode_value(math.nan)


class TestSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = _spec()
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_json_round_trip_with_inf_and_labels(self, tmp_path):
        spec = _spec()
        path = tmp_path / "spec.json"
        save_spec(spec, path)
        clone = load_spec(path)
        assert clone == spec
        # The inf cell survived as a real float infinity.
        points = clone.grid["max_slowdown"]
        assert points[1].label == "MAXSD inf"
        assert points[1].value == math.inf

    def test_builtin_specs_round_trip(self):
        for name in BUILTIN_SCENARIOS:
            spec = builtin_scenario(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec, name

    def test_single_workload_key_accepted(self):
        spec = ScenarioSpec.from_dict(
            {"name": "x", "workload": {"preset": 3, "scale": 0.01}, "grid": {}}
        )
        assert [ref.preset for ref in spec.workloads] == [3]

    def test_unknown_fields_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"name": "x", "workload": {"preset": 1}, "loops": 3})
        with pytest.raises(ScenarioError, match="unknown workload ref fields"):
            ScenarioSpec.from_dict({"name": "x", "workload": {"id": 1}})

    def test_unknown_report_rejected(self):
        with pytest.raises(ScenarioError, match="unknown report"):
            _spec(report="piechart")

    def test_scalar_grid_value_rejected(self):
        """Regression: a scalar string must not explode into per-char cells."""
        with pytest.raises(ScenarioError, match="list of values"):
            ScenarioSpec.from_dict(
                {"name": "x", "workload": {"preset": 3}, "grid": {"max_slowdown": "inf"}}
            )
        with pytest.raises(ScenarioError, match="list of values"):
            _spec(grid={"max_slowdown": 10.0})

    def test_unknown_builtin_rejected(self):
        with pytest.raises(ScenarioError, match="unknown built-in"):
            builtin_scenario("figure99")


class TestExpansion:
    def test_grid_order_and_labels(self):
        cells = _spec().cells()
        assert [label for label, _, _ in cells] == ["max_slowdown=10", "MAXSD inf"]
        for _, policy, params in cells:
            assert policy == "sd_policy"
            assert params["runtime_model"] == "ideal"
        assert cells[1][2]["max_slowdown"] == math.inf

    def test_cartesian_product_is_ordered(self):
        spec = _spec(grid={"max_slowdown": [5.0, 10.0], "sharing_factor": [0.25, 0.5]})
        labels = [label for label, _, _ in spec.cells()]
        assert labels == [
            "max_slowdown=5, sharing_factor=0.25",
            "max_slowdown=5, sharing_factor=0.5",
            "max_slowdown=10, sharing_factor=0.25",
            "max_slowdown=10, sharing_factor=0.5",
        ]

    def test_policy_grid_parameter_overrides_policy(self):
        spec = _spec(
            grid={"policy": [
                {"label": "fcfs", "value": "fcfs"},
                {"label": "backfill", "value": "static_backfill"},
            ]},
            base={},
            baseline=None,
        )
        assert [(label, policy) for label, policy, _ in spec.cells()] == [
            ("fcfs", "fcfs"), ("backfill", "static_backfill"),
        ]

    def test_empty_grid_single_cell(self):
        spec = _spec(grid={})
        cells = spec.cells()
        assert len(cells) == 1
        assert cells[0][0] == "sd_policy"

    def test_workload_only_scenario_has_no_cells(self):
        spec = _spec(policy=None, grid={}, baseline=None, report="mix")
        assert spec.cells() == []

    def test_duplicate_grid_labels_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate labels"):
            _spec(grid={"max_slowdown": [10.0, 10.0]})

    def test_tasks_have_unique_keys_and_seed(self, workload):
        spec = _spec(seed=3)
        tasks = spec.tasks({"scenario_test": workload})
        keys = [t.resolved_key() for t in tasks]
        assert len(set(keys)) == len(keys)
        assert all(t.resolved_seed() == 3 for t in tasks)
        assert keys[0].endswith("::baseline")


class TestExecution:
    def test_run_scenario_normalises_to_baseline(self, workload):
        outcome = run_scenario(_spec(), workloads=workload)
        assert outcome.baseline_run is not None
        assert len(outcome.cells) == 2
        for cell in outcome.cells:
            assert set(cell.normalized) == {"makespan", "avg_response_time", "avg_slowdown"}
            expected = (
                cell.run.metrics.avg_slowdown
                / outcome.baseline_run.metrics.avg_slowdown
            )
            assert cell.normalized["avg_slowdown"] == pytest.approx(expected)

    def test_runner_cache_is_hit_on_rerun(self, workload, tmp_path):
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        first = run_scenario(_spec(), runner=runner, workloads=workload)
        assert first.sweep_cache_hits == 0
        second = run_scenario(_spec(), runner=runner, workloads=workload)
        assert second.sweep_cache_hits == 3  # baseline + 2 cells
        for a, b in zip(first.cells, second.cells):
            assert a.run.metrics.as_dict() == b.run.metrics.as_dict()

    def test_serial_parallel_equivalence(self, workload):
        serial = run_scenario(_spec(), runner=SweepRunner(max_workers=1), workloads=workload)
        parallel = run_scenario(_spec(), runner=SweepRunner(max_workers=2), workloads=workload)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.run.metrics.as_dict() == b.run.metrics.as_dict()

    def test_abstract_ref_requires_override(self):
        with pytest.raises(ScenarioError, match="abstract"):
            run_scenario(_spec())

    def test_single_override_needs_single_workload(self, workload):
        spec = _spec(workloads=[WorkloadRef(name="a"), WorkloadRef(name="b")])
        with pytest.raises(ScenarioError, match="single-workload"):
            run_scenario(spec, workloads=workload)

    def test_multi_workload_baselines_are_per_workload(self, workload):
        other = CirneWorkloadModel(
            num_jobs=40, system_nodes=16, cpus_per_node=8, max_job_nodes=8,
            target_load=1.0, seed=11, name="scenario_other",
        ).generate()
        spec = _spec(
            workloads=[WorkloadRef(name="scenario_test"), WorkloadRef(name="scenario_other")],
            grid={"max_slowdown": [10.0]},
        )
        outcome = run_scenario(
            spec, workloads={"scenario_test": workload, "scenario_other": other}
        )
        assert set(outcome.baselines) == {"scenario_test", "scenario_other"}
        assert len(outcome.cells_for("scenario_test")) == 1
        assert len(outcome.cells_for("scenario_other")) == 1
        # Each cell normalises against its own workload's baseline.
        for wkey in outcome.baselines:
            cell = outcome.cells_for(wkey)[0]
            expected = cell.run.metrics.avg_slowdown / outcome.baselines[wkey].metrics.avg_slowdown
            assert cell.normalized["avg_slowdown"] == pytest.approx(expected)

    def test_report_table_renders(self, workload):
        outcome = run_scenario(_spec(), workloads=workload)
        text = render_report(outcome)
        assert "Scenario test" in text
        assert "MAXSD inf" in text
        assert "Normalised to static_backfill" in text

    def test_table_report_works_with_streamed_runs(self, workload):
        spec = _spec(
            base={"runtime_model": "ideal", "sharing_factor": 0.5,
                  "retain_jobs": False},
        )
        outcome = run_scenario(spec, workloads=workload)
        text = render_report(outcome)
        assert "Normalised to static_backfill" in text

    def test_per_job_report_rejects_streamed_runs(self, workload):
        """Heatmaps need retained jobs; a streamed run must fail loudly
        instead of rendering an empty figure."""
        spec = _spec(
            grid={"max_slowdown": [10.0]},
            base={"runtime_model": "ideal", "sharing_factor": 0.5,
                  "retain_jobs": False},
            report="heatmaps",
        )
        outcome = run_scenario(spec, workloads=workload)
        with pytest.raises(ScenarioError, match="retain_jobs=False"):
            render_report(outcome)

    def test_streamed_run_error_names_report_and_suggests_recovery(self, workload):
        """The streamed-run error must say which report needs per-job data
        and point at both escape hatches (--retain-jobs and --analytics)."""
        spec = _spec(
            grid={"max_slowdown": [10.0]},
            base={"runtime_model": "ideal", "sharing_factor": 0.5,
                  "retain_jobs": False},
            report="daily",
        )
        outcome = run_scenario(spec, workloads=workload)
        with pytest.raises(ScenarioError) as excinfo:
            render_report(outcome)
        message = str(excinfo.value)
        assert "'daily'" in message
        assert "--retain-jobs" in message
        assert "--analytics" in message
        assert "repro-sdpolicy query" in message

    def test_workload_only_scenario_runs_nothing(self):
        spec = ScenarioSpec(
            name="mixonly",
            workloads=[WorkloadRef(preset=5, scale=0.05)],
            policy=None,
            grid={},
            baseline=None,
            report="mix",
        )
        outcome = run_scenario(spec)
        assert outcome.sweep is None
        assert outcome.cells == []
        assert "Table 2" in render_report(outcome)


class TestBuiltinSeedConsistency:
    """``--seed`` (and the builders' defaults) must apply to *both* workload
    generation (``WorkloadRef.seed``) and the simulation seed
    (``ScenarioSpec.seed``) — the two used to be set independently and could
    drift."""

    SEEDED_BUILTINS = ("figure1-3", "figure4-6", "figure7", "figure8", "figure9")

    def test_seed_override_applies_to_workloads_and_simulation(self):
        for name in self.SEEDED_BUILTINS:
            spec = builtin_scenario(name, seed=42)
            assert spec.seed == 42, name
            assert all(ref.seed == 42 for ref in spec.workloads), name

    def test_figure9_default_seeds_agree(self):
        spec = builtin_scenario("figure9")
        assert spec.seed == 5005
        assert spec.workloads[0].seed == 5005

    def test_tasks_carry_the_override_seed(self, workload):
        spec = builtin_scenario("figure4-6", seed=11)
        spec.workloads = [WorkloadRef(name=workload.name)]
        tasks = spec.tasks({workload.name: workload})
        assert tasks and all(t.resolved_seed() == 11 for t in tasks)

    def test_scale_override_applies_to_every_ref(self):
        spec = builtin_scenario("figure8", scale=0.02, seed=9)
        assert all(ref.scale == 0.02 and ref.seed == 9 for ref in spec.workloads)


class TestShardedScenario:
    def test_partial_outcome_has_no_cells(self, workload, tmp_path):
        from repro.experiments.sweep import ShardedExecutor

        runner = SweepRunner(
            max_workers=1, cache_dir=tmp_path / "c", executor=ShardedExecutor(0, 2)
        )
        outcome = _spec().execute(runner=runner, workloads=workload)
        assert not outcome.complete
        assert outcome.cells == [] and outcome.baselines == {}
        assert outcome.sweep is not None and not outcome.sweep.complete

    def test_spec_execute_matches_run_scenario(self, workload):
        direct = run_scenario(_spec(), workloads=workload)
        via_method = _spec().execute(workloads=workload)
        assert direct.complete and via_method.complete
        for a, b in zip(direct.cells, via_method.cells):
            assert a.run.metrics.as_dict() == b.run.metrics.as_dict()


class TestWorkloadRef:
    def test_preset_build(self):
        ref = WorkloadRef(preset=3, scale=0.01)
        workload = ref.build()
        assert len(workload) == 100
        assert ref.key() == "workload3"

    def test_swf_build(self, tmp_path, tiny_workload):
        from repro.workloads.swf import write_swf

        path = tmp_path / "log.swf"
        write_swf(tiny_workload, path)
        ref = WorkloadRef(swf=str(path))
        assert ref.key() == "log"
        assert len(ref.build()) == len(tiny_workload)

    def test_preset_and_swf_mutually_exclusive(self):
        with pytest.raises(ScenarioError, match="mutually exclusive"):
            WorkloadRef(preset=1, swf="x.swf").build()


class TestMixedPaperScale:
    """The ROADMAP's paper-scale mixed rigid/malleable + SWF-replay study
    (`mixed_paper_scale`): a built-in sized for sharded fan-out."""

    def test_builtin_expands_the_full_grid(self):
        spec = builtin_scenario("mixed_paper_scale")
        assert [ref.preset for ref in spec.workloads] == [1, 2, 3, 4]
        assert all(ref.scale == 1.0 for ref in spec.workloads)  # paper scale
        cells = spec.cells()
        assert len(cells) == 8  # 4 malleable fractions x 2 MAXSD settings
        fractions = {params["malleable_fraction"] for _, _, params in cells}
        assert fractions == {0.25, 0.5, 0.75, 1.0}
        assert spec.baseline is not None

    def test_swf_override_adds_a_replay_ref(self, tmp_path, tiny_workload):
        from repro.workloads.swf import write_swf

        swf = tmp_path / "replay.swf"
        write_swf(tiny_workload, swf)
        spec = builtin_scenario("mixed_paper_scale", swf=str(swf))
        assert spec.workloads[-1].key() == "swf_replay"
        assert spec.workloads[-1].swf == str(swf)

    def test_example_spec_round_trips(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "examples" / "mixed_paper_scale.json"
        spec = load_spec(path)
        assert spec.name == "mixed_paper_scale"
        assert spec.report == "table"
        assert [ref.key() for ref in spec.workloads] == [
            "workload1", "workload2", "workload3", "workload4", "swf_replay",
        ]
        # The referenced sample log ships with the repo and parses.
        swf = path.parent / "sample.swf"
        assert swf.is_file()
        ref = spec.workloads[-1]
        assert ref.swf == "examples/sample.swf"
        assert spec.to_dict() == load_spec(path).to_dict()

    def test_sharded_run_and_merge_through_a_store(self, tmp_path, tiny_workload):
        """A scaled-down instance fans out across 2 shards against a shared
        store and merges into a full report."""
        from repro.experiments.sweep import MergeExecutor, ShardedExecutor
        from repro.workloads.swf import write_swf

        swf = tmp_path / "replay.swf"
        write_swf(tiny_workload, swf)
        spec = builtin_scenario(
            "mixed_paper_scale", scale=0.01, seed=3, swf=str(swf), workload_ids=(3,)
        )
        store = f"file://{tmp_path / 'store'}"
        for i in range(2):
            partial = spec.execute(
                runner=SweepRunner(
                    max_workers=1, store=store, executor=ShardedExecutor(i, 2)
                )
            )
            assert not partial.complete or i == 1
        merged = spec.execute(
            runner=SweepRunner(max_workers=1, store=store, executor=MergeExecutor())
        )
        assert merged.complete
        assert {c.workload_key for c in merged.cells} == {"workload3", "swf_replay"}
        assert len(merged.cells) == 16  # 2 workloads x 8 grid cells
        report = render_report(merged)
        assert "Scenario mixed_paper_scale" in report
        assert "Normalised to static_backfill" in report
