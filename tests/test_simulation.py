"""Tests for the simulation driver (event flow, allocation primitives, energy)."""

from __future__ import annotations


import pytest

from repro.schedulers.backfill import BackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.job import JobState
from repro.simulator.simulation import Simulation
from tests.conftest import make_job


def _sim(cluster=None, scheduler=None, **kwargs):
    cluster = cluster or Cluster(num_nodes=4, sockets=2, cores_per_socket=4)
    scheduler = scheduler or FCFSScheduler()
    return Simulation(cluster, scheduler, **kwargs)


class TestSubmission:
    def test_duplicate_job_id_rejected(self):
        sim = _sim()
        sim.submit_jobs([make_job(job_id=1)])
        with pytest.raises(ValueError):
            sim.submit_jobs([make_job(job_id=1)])

    def test_oversized_job_rejected(self):
        sim = _sim()
        with pytest.raises(ValueError):
            sim.submit_jobs([make_job(job_id=1, nodes=100)])

    def test_empty_run(self):
        result = _sim().run()
        assert result.num_jobs == 0
        assert result.makespan == 0.0


class TestSingleJob:
    def test_single_job_timing(self):
        sim = _sim()
        sim.submit_jobs([make_job(job_id=1, submit=100.0, runtime=500.0, req_time=900.0)])
        result = sim.run()
        job = result.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.start_time == 100.0
        assert job.end_time == 600.0
        assert result.makespan == 500.0
        assert result.avg_slowdown == pytest.approx(1.0)

    def test_job_runs_its_static_runtime_not_its_request(self):
        sim = _sim()
        sim.submit_jobs([make_job(job_id=1, runtime=300.0, req_time=7200.0)])
        result = sim.run()
        assert result.jobs[0].actual_runtime == pytest.approx(300.0)


class TestSequencing:
    def test_fcfs_queueing_when_cluster_full(self):
        sim = _sim()
        sim.submit_jobs(
            [
                make_job(job_id=1, submit=0.0, nodes=4, runtime=100.0, req_time=200.0),
                make_job(job_id=2, submit=10.0, nodes=4, runtime=50.0, req_time=100.0),
            ]
        )
        result = sim.run()
        jobs = {j.job_id: j for j in result.jobs}
        assert jobs[1].start_time == 0.0
        assert jobs[2].start_time == pytest.approx(100.0)
        assert jobs[2].wait_time == pytest.approx(90.0)

    def test_simultaneous_end_and_submit(self):
        # A job ending exactly when another is submitted frees the nodes for it.
        sim = _sim()
        sim.submit_jobs(
            [
                make_job(job_id=1, submit=0.0, nodes=4, runtime=100.0, req_time=100.0),
                make_job(job_id=2, submit=100.0, nodes=4, runtime=10.0, req_time=20.0),
            ]
        )
        result = sim.run()
        jobs = {j.job_id: j for j in result.jobs}
        assert jobs[2].start_time == pytest.approx(100.0)
        assert jobs[2].wait_time == 0.0

    def test_all_jobs_complete(self, tiny_workload):
        cluster = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, BackfillScheduler())
        sim.submit_jobs(tiny_workload.to_jobs(cpus_per_node=8))
        result = sim.run()
        assert result.num_jobs == len(tiny_workload)
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
        cluster.validate()


class TestAllocationPrimitives:
    def test_start_static_requires_pending(self):
        sim = _sim()
        job = make_job(job_id=1)
        with pytest.raises(RuntimeError):
            sim.start_job_static(job)

    def test_reconfigure_requires_running(self):
        sim = _sim()
        job = make_job(job_id=1)
        with pytest.raises(RuntimeError):
            sim.reconfigure_job(job, {0: 4})

    def test_reconfigure_changes_speed_and_end(self):
        cluster = Cluster(num_nodes=1, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, FCFSScheduler())
        job = make_job(job_id=1, nodes=1, runtime=100.0, req_time=200.0)
        sim.submit_jobs([job])
        sim.step()  # submit + start at t=0
        assert job.state is JobState.RUNNING
        sim.reconfigure_job(job, {0: 4})  # shrink to half the node
        assert job.current_speed == pytest.approx(0.5)
        result = sim.run()
        assert result.jobs[0].end_time == pytest.approx(200.0)

    def test_stale_end_in_same_batch_not_counted_as_processed(self):
        """A job reconfigured by an on_job_end hook while its own end event
        sits later in the same batch: the stale event is skipped AND excluded
        from total_events (it did no work).  Regression: the old loop counted
        every popped event, inflating the pin below to 5."""

        class ReconfOnEnd(FCFSScheduler):
            def on_job_end(self, sim, job):
                for other in list(sim.running.values()):
                    slot = other.resource_history[-1]
                    sim.reconfigure_job(other, dict(slot.cpus_per_node))

        cluster = Cluster(num_nodes=2, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, ReconfOnEnd())
        sim.submit_jobs([
            make_job(job_id=1, nodes=1, runtime=100.0, req_time=200.0),
            make_job(job_id=2, nodes=1, runtime=100.0, req_time=200.0),
        ])
        result = sim.run()
        assert result.num_jobs == 2
        assert {j.end_time for j in result.jobs} == {100.0}
        # 2 submits + job 1's end + job 2's reissued end; job 2's original
        # (staled in-batch by the reconfiguration) must not be counted.
        assert result.total_events == 4

    def test_partial_run_makespan_agrees_with_compute_metrics(self):
        """Satellite bugfix: with the run-level first submit threaded through,
        compute_metrics agrees with Simulation.result() even when the
        earliest-submitted job never completed."""
        from repro.metrics.aggregates import compute_metrics

        cluster = Cluster(num_nodes=2, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, FCFSScheduler())
        sim.submit_jobs([
            make_job(job_id=1, submit=0.0, nodes=1, runtime=10000.0, req_time=20000.0),
            make_job(job_id=2, submit=5.0, nodes=1, runtime=10.0, req_time=20.0),
        ])
        result = sim.run(until=100.0)
        assert result.num_jobs == 1  # job 2 only; job 1 still running
        assert result.first_submit == 0.0
        assert result.makespan == 15.0
        metrics = compute_metrics(result.jobs, first_submit=result.first_submit)
        assert metrics.makespan == result.makespan
        # Without the run context the origin drifts to job 2's submit.
        assert compute_metrics(result.jobs).makespan == 10.0

    def test_stale_end_events_are_ignored(self):
        cluster = Cluster(num_nodes=1, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, FCFSScheduler())
        job = make_job(job_id=1, nodes=1, runtime=100.0, req_time=400.0)
        sim.submit_jobs([job])
        sim.step()
        sim.reconfigure_job(job, {0: 4})   # end moves from 100 to 200
        sim.reconfigure_job(job, {0: 8})   # back to full speed, end ~100 again
        result = sim.run()
        assert result.num_jobs == 1
        assert result.jobs[0].end_time == pytest.approx(100.0)
        # The completed-job list must not contain duplicates.
        assert len({j.job_id for j in result.jobs}) == 1


class TestEnergyAccounting:
    def test_energy_zero_without_power_model(self):
        sim = _sim(power_model=None)
        sim.submit_jobs([make_job(job_id=1)])
        result = sim.run()
        assert result.energy_joules == 0.0

    def test_energy_matches_linear_model_single_job(self):
        cluster = Cluster(num_nodes=2, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, FCFSScheduler())
        sim.submit_jobs([make_job(job_id=1, nodes=1, runtime=1000.0, req_time=2000.0)])
        result = sim.run()
        # 2 nodes idle power over the 1000s makespan + dynamic part of one
        # fully-used 8-cpu node for 1000s.
        idle = 2 * 120.0 * 1000.0
        dynamic = (400.0 - 120.0) * 1000.0
        assert result.energy_joules == pytest.approx(idle + dynamic)

    def test_energy_increases_with_makespan(self):
        def run(runtime):
            cluster = Cluster(num_nodes=2, sockets=2, cores_per_socket=4)
            sim = Simulation(cluster, FCFSScheduler())
            sim.submit_jobs([make_job(job_id=1, nodes=1, runtime=runtime, req_time=2 * runtime)])
            return sim.run().energy_joules

        assert run(2000.0) > run(1000.0)


class TestResultSummary:
    def test_result_counts_malleable_flags(self):
        sim = _sim()
        sim.submit_jobs([make_job(job_id=1)])
        result = sim.run()
        assert result.malleable_scheduled_jobs == 0
        assert result.mate_jobs == 0
        assert result.scheduler_name == "fcfs"
        assert result.total_events >= 2  # submit + end
