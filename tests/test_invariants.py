"""Property-style invariant tests over randomized workloads.

These lock down the simulator's conservation laws so hot-path refactors
(availability-profile caching, event deduplication, ``__slots__``) cannot
silently corrupt scheduling state:

* **CPU conservation** — the cluster-wide used-CPU counter matches the
  per-node truth at every event boundary, never exceeds the total, and no
  node is ever oversubscribed, including after arbitrary shrink/expand
  sequences driven by SD-Policy mate selection.
* **Event-time monotonicity** — simulation time never goes backwards.
* **Resource-history coverage** — every completed job's history tiles
  ``[start_time, end_time]`` exactly, with no gaps or overlaps.

The workloads are randomized (several generator seeds, mixed malleability)
but fully deterministic per seed, so failures reproduce.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.schedulers.backfill import BackfillScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job, JobState
from repro.simulator.node import NodeAllocationError
from repro.simulator.simulation import Simulation
from repro.workloads.cirne import CirneWorkloadModel

SEEDS = (11, 23, 47)


def _random_workload(seed: int):
    return CirneWorkloadModel(
        num_jobs=50,
        system_nodes=12,
        cpus_per_node=8,
        max_job_nodes=6,
        target_load=1.1,
        median_runtime_s=1800.0,
        seed=seed,
        name=f"invariant_{seed}",
    ).generate()


def _schedulers():
    return {
        "static_backfill": lambda: BackfillScheduler(),
        "sd_inf": lambda: SDPolicyScheduler(SDPolicyConfig(max_slowdown=math.inf)),
        "sd_dynamic": lambda: SDPolicyScheduler(SDPolicyConfig(max_slowdown="dynamic")),
    }


def _run_checked(seed: int, scheduler_factory, malleable_fraction: float = 1.0):
    """Run a workload stepwise, asserting the invariants at every event batch."""
    workload = _random_workload(seed)
    cluster = Cluster(num_nodes=workload.system_nodes, sockets=2, cores_per_socket=4)
    sim = Simulation(cluster, scheduler_factory())
    sim.submit_jobs(
        workload.to_jobs(
            cpus_per_node=cluster.cpus_per_node,
            malleable_fraction=malleable_fraction,
            seed=seed,
        )
    )
    last_now = sim.now
    steps = 0
    while sim.step():
        steps += 1
        # Event-time monotonicity.
        assert sim.now >= last_now, f"time went backwards at step {steps}"
        last_now = sim.now
        # CPU conservation: counters consistent, totals respected, no node
        # oversubscribed (validate() checks all three from the ground truth).
        cluster.validate()
        assert 0 <= cluster.used_cpus <= cluster.total_cpus
        # Running jobs hold exactly the CPUs the cluster thinks they hold.
        for job in sim.running.values():
            for nid, cpus in job.assigned_cpus.items():
                assert cluster.node(nid).cpus_of(job.job_id) == cpus
    return sim, workload


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", sorted(_schedulers()))
def test_conservation_and_monotonicity(seed, policy):
    sim, workload = _run_checked(seed, _schedulers()[policy])
    assert len(sim.completed) == len(workload), "every job must complete"
    # Everything released at the end.
    assert sim.cluster.used_cpus == 0
    assert sim.cluster.num_free_nodes == sim.cluster.num_nodes


@pytest.mark.parametrize("seed", SEEDS)
def test_mixed_malleability_conserves_cpus(seed):
    sim, workload = _run_checked(
        seed,
        _schedulers()["sd_inf"],
        malleable_fraction=0.6,
    )
    assert len(sim.completed) == len(workload)


@pytest.mark.parametrize("seed", SEEDS)
def test_resource_history_covers_run_without_gaps(seed):
    sim, _ = _run_checked(seed, _schedulers()["sd_inf"])
    for job in sim.completed:
        assert job.state is JobState.COMPLETED
        assert job.start_time is not None and job.end_time is not None
        assert job.submit_time <= job.start_time <= job.end_time
        history = job.resource_history
        assert history, f"job {job.job_id} has no resource history"
        assert history[0].start == job.start_time
        assert history[-1].end == job.end_time
        for prev, nxt in zip(history, history[1:]):
            assert prev.end == nxt.start, (
                f"job {job.job_id}: gap/overlap between slots "
                f"[{prev.start}, {prev.end}) and [{nxt.start}, {nxt.end})"
            )
        for slot in history:
            assert slot.start <= slot.end
            assert slot.total_cpus > 0
            assert slot.speed >= 0


def test_cluster_random_shrink_expand_never_oversubscribes():
    """Direct fuzz of the allocation primitives, independent of a scheduler."""
    rng = random.Random(99)
    cluster = Cluster(num_nodes=8, sockets=2, cores_per_socket=4)
    width = cluster.cpus_per_node
    next_id = 1
    running = {}  # job_id -> Job

    def new_job(nodes: int) -> Job:
        nonlocal next_id
        job = Job(
            job_id=next_id,
            submit_time=0.0,
            requested_nodes=nodes,
            requested_time=1000.0,
            static_runtime=500.0,
            cpus_per_node=width,
        )
        next_id += 1
        return job

    for _ in range(600):
        action = rng.choice(("start", "shrink", "expand", "release"))
        try:
            if action == "start" and cluster.num_free_nodes:
                job = new_job(rng.randint(1, cluster.num_free_nodes))
                nodes = cluster.allocate_static(job)
                job.assigned_cpus = {nid: width for nid in nodes}
                running[job.job_id] = job
            elif action in ("shrink", "expand") and running:
                job = running[rng.choice(sorted(running))]
                new_map = dict(job.assigned_cpus)
                nid = rng.choice(sorted(new_map))
                if action == "shrink":
                    new_map[nid] = rng.randint(1, max(1, new_map[nid]))
                else:
                    new_map[nid] = new_map[nid] + cluster.node(nid).free_cpus
                cluster.reconfigure_allocation(job.job_id, new_map)
                job.assigned_cpus = new_map
            elif action == "release" and running:
                job = running.pop(rng.choice(sorted(running)))
                cluster.release_job(job)
        except NodeAllocationError:
            pass  # an infeasible random op is fine; state must stay consistent
        cluster.validate()
        assert 0 <= cluster.used_cpus <= cluster.total_cpus

    for job in running.values():
        cluster.release_job(job)
    cluster.validate()
    assert cluster.used_cpus == 0
