"""Tests for JobRecord and the Workload container."""

from __future__ import annotations

import pytest

from repro.workloads.job_record import JobRecord, Workload


class TestJobRecord:
    def test_requested_nodes_rounds_up(self, record_factory):
        record = record_factory(procs=9)
        assert record.requested_nodes(8) == 2
        assert record.requested_nodes(16) == 1

    def test_area(self, record_factory):
        record = record_factory(run_time=100.0, procs=8)
        assert record.area() == 800.0

    def test_validation(self, record_factory):
        with pytest.raises(ValueError):
            record_factory(run_time=0.0)
        with pytest.raises(ValueError):
            record_factory(req_time=0.0)
        with pytest.raises(ValueError):
            record_factory(procs=0)
        with pytest.raises(ValueError):
            record_factory(submit=-1.0)


class TestWorkload:
    def _workload(self, record_factory, n=5):
        records = [
            record_factory(job_id=i, submit=i * 10.0, run_time=100.0, req_time=200.0, procs=8)
            for i in range(n, 0, -1)  # deliberately unsorted
        ]
        return Workload(name="test", records=records, system_nodes=4, cpus_per_node=8)

    def test_records_sorted_by_submission(self, record_factory):
        wl = self._workload(record_factory)
        submits = [r.submit_time for r in wl.records]
        assert submits == sorted(submits)

    def test_len_and_iter(self, record_factory):
        wl = self._workload(record_factory, n=3)
        assert len(wl) == 3
        assert len(list(wl)) == 3

    def test_system_cpus_and_span(self, record_factory):
        wl = self._workload(record_factory, n=5)
        assert wl.system_cpus == 32
        assert wl.span == 40.0

    def test_offered_load_positive(self, record_factory):
        wl = self._workload(record_factory)
        assert wl.offered_load() > 0

    def test_to_jobs_conversion(self, record_factory):
        wl = self._workload(record_factory, n=3)
        jobs = wl.to_jobs()
        assert len(jobs) == 3
        assert all(j.requested_nodes == 1 for j in jobs)
        assert all(j.malleable for j in jobs)

    def test_to_jobs_malleable_fraction_zero(self, record_factory):
        wl = self._workload(record_factory, n=10)
        jobs = wl.to_jobs(malleable_fraction=0.0)
        assert not any(j.malleable for j in jobs)

    def test_to_jobs_invalid_fraction(self, record_factory):
        wl = self._workload(record_factory)
        with pytest.raises(ValueError):
            wl.to_jobs(malleable_fraction=1.5)

    def test_to_jobs_caps_runtime_at_request(self, record_factory):
        record = record_factory(job_id=1, run_time=500.0, req_time=200.0)
        wl = Workload("t", [record], system_nodes=4, cpus_per_node=8)
        job = wl.to_jobs()[0]
        assert job.static_runtime == 200.0

    def test_filter(self, record_factory):
        wl = self._workload(record_factory, n=5)
        small = wl.filter(lambda r: r.submit_time < 25.0)
        assert len(small) == 2
        assert small.system_nodes == wl.system_nodes

    def test_head(self, record_factory):
        wl = self._workload(record_factory, n=5)
        assert len(wl.head(2)) == 2

    def test_describe_keys(self, record_factory):
        wl = self._workload(record_factory)
        desc = wl.describe()
        for key in ("jobs", "system_nodes", "max_job_nodes", "offered_load"):
            assert key in desc

    def test_describe_empty(self):
        wl = Workload("empty", [], system_nodes=4, cpus_per_node=8)
        assert wl.describe() == {"jobs": 0}
        assert wl.span == 0.0
        assert wl.offered_load() == 0.0
