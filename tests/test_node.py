"""Unit tests for the Node allocation model."""

from __future__ import annotations

import pytest

from repro.simulator.node import Node, NodeAllocationError


@pytest.fixture
def node() -> Node:
    return Node(0, sockets=2, cores_per_socket=4)


class TestNodeBasics:
    def test_total_cpus(self, node):
        assert node.total_cpus == 8

    def test_initially_free(self, node):
        assert node.is_free
        assert node.free_cpus == 8
        assert node.used_cpus == 0
        assert node.utilization == 0.0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Node(0, sockets=0, cores_per_socket=4)


class TestAllocate:
    def test_allocate_marks_owner(self, node):
        node.allocate(1, 8, owner=True)
        assert node.owner == 1
        assert node.used_cpus == 8
        assert not node.is_free

    def test_allocate_guest_keeps_owner(self, node):
        node.allocate(1, 4, owner=True)
        node.allocate(2, 4, owner=False)
        assert node.owner == 1
        assert node.is_shared
        assert sorted(node.jobs) == [1, 2]

    def test_over_allocation_rejected(self, node):
        node.allocate(1, 6)
        with pytest.raises(NodeAllocationError):
            node.allocate(2, 4, owner=False)

    def test_double_allocation_same_job_rejected(self, node):
        node.allocate(1, 4)
        with pytest.raises(NodeAllocationError):
            node.allocate(1, 2, owner=False)

    def test_zero_cpus_rejected(self, node):
        with pytest.raises(NodeAllocationError):
            node.allocate(1, 0)

    def test_two_owners_rejected(self, node):
        node.allocate(1, 4, owner=True)
        with pytest.raises(NodeAllocationError):
            node.allocate(2, 4, owner=True)


class TestResize:
    def test_shrink(self, node):
        node.allocate(1, 8)
        node.resize(1, 4)
        assert node.cpus_of(1) == 4
        assert node.free_cpus == 4

    def test_expand_within_capacity(self, node):
        node.allocate(1, 4)
        node.resize(1, 8)
        assert node.cpus_of(1) == 8

    def test_expand_beyond_capacity_rejected(self, node):
        node.allocate(1, 4)
        node.allocate(2, 2, owner=False)
        with pytest.raises(NodeAllocationError):
            node.resize(1, 7)

    def test_resize_unknown_job_rejected(self, node):
        with pytest.raises(NodeAllocationError):
            node.resize(99, 4)

    def test_resize_to_zero_rejected(self, node):
        node.allocate(1, 4)
        with pytest.raises(NodeAllocationError):
            node.resize(1, 0)


class TestRelease:
    def test_release_returns_cpus(self, node):
        node.allocate(1, 6)
        assert node.release(1) == 6
        assert node.is_free
        assert node.owner is None

    def test_release_guest_keeps_owner(self, node):
        node.allocate(1, 4, owner=True)
        node.allocate(2, 4, owner=False)
        node.release(2)
        assert node.owner == 1
        assert node.cpus_of(1) == 4

    def test_release_unknown_job_rejected(self, node):
        with pytest.raises(NodeAllocationError):
            node.release(42)

    def test_cpus_of_missing_job_is_zero(self, node):
        assert node.cpus_of(3) == 0
