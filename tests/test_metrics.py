"""Tests for aggregate metrics, heatmaps, time series and energy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.metrics.aggregates import (
    average_bounded_slowdown,
    average_response_time,
    average_slowdown,
    average_wait_time,
    compute_metrics,
    makespan,
)
from repro.metrics.energy import LinearPowerModel, workload_energy
from repro.metrics.heatmap import category_heatmap, heatmap_ratio
from repro.metrics.timeseries import daily_malleable_counts, daily_series_table, daily_slowdown
from tests.conftest import make_job


def finished_job(job_id=1, submit=0.0, start=10.0, runtime=100.0, nodes=1,
                 cpus_per_node=8, malleable_scheduled=False):
    job = make_job(job_id=job_id, submit=submit, nodes=nodes, runtime=runtime,
                   req_time=runtime * 2, cpus_per_node=cpus_per_node)
    job.mark_started(start, list(range(nodes)))
    job.reconfigure(start, {n: cpus_per_node for n in range(nodes)}, speed=1.0)
    job.mark_finished(start + runtime)
    job.scheduled_malleable = malleable_scheduled
    return job


class TestAggregates:
    def test_empty_set(self):
        assert makespan([]) == 0.0
        assert average_response_time([]) == 0.0
        assert average_slowdown([]) == 0.0
        assert average_wait_time([]) == 0.0
        assert compute_metrics([]).num_jobs == 0

    def test_single_job_values(self):
        job = finished_job(submit=0.0, start=50.0, runtime=100.0)
        assert makespan([job]) == 150.0
        assert average_response_time([job]) == 150.0
        assert average_wait_time([job]) == 50.0
        assert average_slowdown([job]) == pytest.approx(1.5)

    def test_makespan_spans_first_arrival_to_last_end(self):
        jobs = [finished_job(1, submit=0.0, start=0.0, runtime=10.0),
                finished_job(2, submit=100.0, start=100.0, runtime=50.0)]
        assert makespan(jobs) == 150.0

    def test_unfinished_jobs_ignored(self):
        done = finished_job(1)
        pending = make_job(job_id=2)
        metrics = compute_metrics([done, pending])
        assert metrics.num_jobs == 1

    def test_makespan_run_level_origin_with_dropped_first_job(self):
        """Regression: the earliest-submitted job never completed, so the
        per-job origin drifts late; the run-level first submit restores the
        origin Simulation.result() uses."""
        dropped = make_job(job_id=1, submit=0.0)  # submitted first, never ran
        late = finished_job(2, submit=100.0, start=100.0, runtime=50.0)
        jobs = [dropped, late]
        assert makespan(jobs) == 50.0  # drifted: anchored at the survivor
        assert makespan(jobs, first_submit=0.0) == 150.0
        assert compute_metrics(jobs, first_submit=0.0).makespan == 150.0
        # The origin never produces a negative makespan.
        assert makespan(jobs, first_submit=1e9) == 0.0

    def test_compute_metrics_single_pass_matches_per_metric_helpers(self):
        jobs = [finished_job(i, submit=10.0 * i, start=10.0 * i + 5.0,
                             runtime=50.0 + 7.0 * i) for i in range(1, 8)]
        metrics = compute_metrics(jobs)
        assert metrics.makespan == makespan(jobs)
        assert metrics.avg_response_time == average_response_time(jobs)
        assert metrics.avg_wait_time == average_wait_time(jobs)
        assert metrics.avg_slowdown == average_slowdown(jobs)
        assert metrics.avg_bounded_slowdown == average_bounded_slowdown(jobs)

    def test_bounded_slowdown_at_least_one(self):
        job = finished_job(runtime=1.0, start=0.0, submit=0.0)
        assert average_bounded_slowdown([job]) >= 1.0

    def test_compute_metrics_fields(self):
        jobs = [finished_job(i, submit=i * 10.0, start=i * 10.0 + 5, runtime=50.0,
                             malleable_scheduled=(i % 2 == 0)) for i in range(6)]
        metrics = compute_metrics(jobs, energy_joules=123.0)
        assert metrics.num_jobs == 6
        assert metrics.energy_joules == 123.0
        assert metrics.malleable_scheduled == 3
        assert metrics.median_slowdown <= metrics.p95_slowdown
        assert set(metrics.as_dict()) >= {"makespan", "avg_slowdown", "num_jobs"}


class TestHeatmap:
    def _jobs(self):
        return [
            finished_job(1, nodes=1, runtime=1800.0),     # small short
            finished_job(2, nodes=1, runtime=1800.0),
            finished_job(3, nodes=8, runtime=90000.0),    # large long
        ]

    def test_cells_average_per_category(self):
        grid = category_heatmap(self._jobs(), metric="slowdown")
        rows = [r for r in grid.to_rows() if r["count"] > 0]
        assert sum(r["count"] for r in rows) == 3
        assert len(rows) == 2  # two distinct categories

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            category_heatmap(self._jobs(), metric="nonsense")

    def test_custom_value_function(self):
        grid = category_heatmap(self._jobs(), value_fn=lambda j: 2.0)
        values = grid.values[np.isfinite(grid.values)]
        assert np.allclose(values, 2.0)

    def test_ratio_grid(self):
        baseline = category_heatmap(self._jobs(), metric="wait")
        # Same jobs -> ratio 1 everywhere a category exists.
        ratio = heatmap_ratio(baseline, baseline)
        finite = ratio.values[np.isfinite(ratio.values)]
        assert np.allclose(finite, 1.0)

    def test_ratio_shape_mismatch_rejected(self):
        a = category_heatmap(self._jobs(), node_edges=(1, 2))
        b = category_heatmap(self._jobs())
        with pytest.raises(ValueError):
            heatmap_ratio(a, b)

    def test_labels_available(self):
        grid = category_heatmap(self._jobs())
        assert len(grid.node_labels) == len(grid.node_edges)
        assert len(grid.runtime_labels) == len(grid.runtime_edges)


class TestTimeSeries:
    def _jobs(self):
        day = 86400.0
        return [
            finished_job(1, submit=0.0, start=10.0, runtime=100.0),
            finished_job(2, submit=0.5 * day, start=0.5 * day + 50, runtime=100.0),
            finished_job(3, submit=1.2 * day, start=1.2 * day + 10, runtime=100.0,
                         malleable_scheduled=True),
        ]

    def test_daily_slowdown_grouping(self):
        series = daily_slowdown(self._jobs())
        assert set(series) == {0, 1}
        assert series[0] > 1.0

    def test_daily_malleable_counts(self):
        counts = daily_malleable_counts(self._jobs())
        assert counts == {1: 1}

    def test_empty(self):
        assert daily_slowdown([]) == {}
        assert daily_malleable_counts([]) == {}

    def test_series_table_combines_runs(self):
        rows = daily_series_table(self._jobs(), self._jobs())
        assert [r["day"] for r in rows] == [0, 1]
        assert rows[1]["malleable_jobs"] == 1
        assert rows[0]["static_slowdown"] == pytest.approx(rows[0]["sd_slowdown"])

    def test_series_table_shares_one_origin_across_runs(self):
        """Regression: runs whose earliest *completed* job differs must not
        derive shifted per-run day axes."""
        day = 86400.0
        # The static run never completes the day-0 job (end_time None), so
        # its own earliest completion is on day 1 of the workload.
        unfinished = finished_job(1, submit=0.0, start=10.0, runtime=100.0)
        unfinished.end_time = None
        static = [
            unfinished,
            finished_job(2, submit=1.0 * day, start=1.0 * day + 60, runtime=100.0),
            finished_job(3, submit=2.0 * day, start=2.0 * day + 60, runtime=100.0),
        ]
        sd = [
            finished_job(1, submit=0.0, start=10.0, runtime=100.0),
            finished_job(2, submit=1.0 * day, start=1.0 * day + 30, runtime=100.0),
            finished_job(3, submit=2.0 * day, start=2.0 * day + 30, runtime=100.0),
        ]
        rows = daily_series_table(static, sd)
        by_day = {r["day"]: r for r in rows}
        # Day 0 exists only in the SD run; the static series starts on day 1
        # of the *shared* axis instead of being pulled back to its own day 0.
        assert set(by_day) == {0, 1, 2}
        assert math.isnan(by_day[0]["static_slowdown"])
        assert math.isfinite(by_day[0]["sd_slowdown"])
        assert math.isfinite(by_day[1]["static_slowdown"])

    def test_series_table_explicit_origin(self):
        rows = daily_series_table(self._jobs(), self._jobs(), origin=-86400.0)
        assert [r["day"] for r in rows] == [1, 2]


class TestEnergy:
    def test_power_model_bounds(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=300.0)
        assert model.node_power(0.0) == 100.0
        assert model.node_power(1.0) == 300.0
        assert model.node_power(2.0) == 300.0  # clamped

    def test_invalid_power_model(self):
        with pytest.raises(ValueError):
            LinearPowerModel(idle_watts=500.0, peak_watts=100.0)

    def test_workload_energy_single_job(self):
        job = finished_job(runtime=1000.0, start=0.0, submit=0.0, cpus_per_node=8)
        energy = workload_energy([job], num_nodes=2, cpus_per_node=8,
                                 power_model=LinearPowerModel(120.0, 400.0))
        expected = 2 * 120.0 * 1000.0 + (400.0 - 120.0) * 1000.0
        assert energy == pytest.approx(expected)

    def test_utilization_factor_scales_dynamic_part(self):
        job = finished_job(runtime=1000.0, start=0.0, submit=0.0)
        full = workload_energy([job], 2, 8)
        half = workload_energy([job], 2, 8, utilization_of=lambda j: 0.5)
        assert half < full

    def test_empty_jobs(self):
        assert workload_energy([], 4, 8) == 0.0
