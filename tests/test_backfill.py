"""Tests for FCFS and the static (conservative) backfill baseline."""

from __future__ import annotations

import pytest

from repro.schedulers.backfill import BackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.simulation import Simulation
from tests.conftest import make_job


def _run(scheduler, jobs, nodes=4, cpus=8):
    cluster = Cluster(num_nodes=nodes, sockets=2, cores_per_socket=cpus // 2)
    sim = Simulation(cluster, scheduler)
    sim.submit_jobs(jobs)
    result = sim.run()
    cluster.validate()
    return {j.job_id: j for j in result.jobs}, result


class TestFCFS:
    def test_starts_in_submission_order(self):
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=3, runtime=100.0, req_time=100.0),
            make_job(job_id=2, submit=1.0, nodes=3, runtime=100.0, req_time=100.0),
            make_job(job_id=3, submit=2.0, nodes=1, runtime=10.0, req_time=10.0),
        ]
        by_id, _ = _run(FCFSScheduler(), jobs)
        # Strict FCFS: job 3 cannot jump ahead of job 2 even though a node is free.
        assert by_id[2].start_time == pytest.approx(100.0)
        assert by_id[3].start_time >= by_id[2].start_time

    def test_invalid_max_job_test(self):
        with pytest.raises(ValueError):
            BackfillScheduler(max_job_test=0)


class TestBackfill:
    def test_small_job_backfills_into_hole(self):
        # Job1 occupies 3 nodes for 100s; job2 needs 4 nodes and must wait;
        # job3 needs 1 node for 50s and fits in the hole without delaying job2.
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=3, runtime=100.0, req_time=100.0),
            make_job(job_id=2, submit=1.0, nodes=4, runtime=100.0, req_time=100.0),
            make_job(job_id=3, submit=2.0, nodes=1, runtime=50.0, req_time=50.0),
        ]
        by_id, _ = _run(BackfillScheduler(), jobs)
        assert by_id[3].start_time == pytest.approx(2.0)      # backfilled immediately
        assert by_id[2].start_time == pytest.approx(100.0)    # not delayed

    def test_backfill_does_not_delay_reserved_job(self):
        # A long job that would overlap the reservation must NOT be backfilled.
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=3, runtime=100.0, req_time=100.0),
            make_job(job_id=2, submit=1.0, nodes=4, runtime=100.0, req_time=100.0),
            make_job(job_id=3, submit=2.0, nodes=1, runtime=500.0, req_time=500.0),
        ]
        by_id, _ = _run(BackfillScheduler(), jobs)
        assert by_id[2].start_time == pytest.approx(100.0)
        # Job3 overlaps job2's reservation on its node, so it waits for job2.
        assert by_id[3].start_time >= by_id[2].start_time

    def test_uses_requested_time_for_reservations(self):
        # Job1 occupies 3 nodes: it really runs 50s but requested 1000s, so
        # job2's (4-node) reservation is placed at t=1000.  Job3 (1 node,
        # 200s) therefore backfills immediately on the free node — and ends
        # up delaying job2, which could have started at t=50 with perfect
        # runtime knowledge.  This is exactly SLURM's requested-time
        # behaviour that the paper's estimates inherit.
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=3, runtime=50.0, req_time=1000.0),
            make_job(job_id=2, submit=1.0, nodes=4, runtime=100.0, req_time=100.0),
            make_job(job_id=3, submit=2.0, nodes=1, runtime=200.0, req_time=200.0),
        ]
        by_id, _ = _run(BackfillScheduler(), jobs)
        assert by_id[3].start_time == pytest.approx(2.0)
        assert by_id[2].start_time == pytest.approx(202.0)

    def test_priority_respected_under_equal_conditions(self):
        jobs = [
            make_job(job_id=1, submit=0.0, nodes=2, runtime=100.0, req_time=100.0),
            make_job(job_id=2, submit=1.0, nodes=2, runtime=100.0, req_time=100.0),
            make_job(job_id=3, submit=2.0, nodes=2, runtime=100.0, req_time=100.0),
        ]
        by_id, _ = _run(BackfillScheduler(), jobs)
        assert by_id[1].start_time <= by_id[2].start_time <= by_id[3].start_time

    def test_max_job_test_limits_examination(self):
        # With max_job_test=1 only the head job is examined per pass, so the
        # backfillable job 3 cannot start early.  Fresh job objects are built
        # per run because Job instances are stateful.
        def jobs():
            return [
                make_job(job_id=1, submit=0.0, nodes=3, runtime=100.0, req_time=100.0),
                make_job(job_id=2, submit=1.0, nodes=4, runtime=100.0, req_time=100.0),
                make_job(job_id=3, submit=2.0, nodes=1, runtime=50.0, req_time=50.0),
            ]

        by_id_deep, _ = _run(BackfillScheduler(max_job_test=100), jobs())
        by_id_shallow, _ = _run(BackfillScheduler(max_job_test=1), jobs())
        assert by_id_deep[3].start_time < by_id_shallow[3].start_time

    def test_makespan_never_worse_than_fcfs(self, tiny_workload):
        def run_policy(scheduler):
            cluster = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
            sim = Simulation(cluster, scheduler)
            sim.submit_jobs(tiny_workload.to_jobs(cpus_per_node=8))
            return sim.run()

        fcfs = run_policy(FCFSScheduler())
        backfill = run_policy(BackfillScheduler())
        assert backfill.num_jobs == fcfs.num_jobs
        # Backfill should not increase the average wait time of the workload.
        assert backfill.avg_wait_time <= fcfs.avg_wait_time * 1.001

    def test_all_allocations_whole_node_and_exclusive(self, tiny_workload):
        cluster = Cluster(num_nodes=16, sockets=2, cores_per_socket=4)
        sim = Simulation(cluster, BackfillScheduler())
        sim.submit_jobs(tiny_workload.to_jobs(cpus_per_node=8))
        result = sim.run()
        for job in result.jobs:
            for slot in job.resource_history:
                assert all(cpus == 8 for cpus in slot.cpus_per_node.values())
