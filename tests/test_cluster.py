"""Unit tests for the Cluster whole-node allocation layer."""

from __future__ import annotations

import pytest

from repro.simulator.cluster import Cluster
from repro.simulator.node import NodeAllocationError
from tests.conftest import make_job


class TestClusterBasics:
    def test_geometry(self, small_cluster):
        assert small_cluster.num_nodes == 4
        assert small_cluster.cpus_per_node == 8
        assert small_cluster.total_cpus == 32

    def test_initially_all_free(self, small_cluster):
        assert small_cluster.num_free_nodes == 4
        assert small_cluster.free_node_ids == [0, 1, 2, 3]
        assert small_cluster.used_cpus == 0
        assert small_cluster.utilization == 0.0

    def test_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=0)


class TestStaticAllocation:
    def test_allocate_lowest_ids_first(self, small_cluster):
        job = make_job(nodes=2)
        nodes = small_cluster.allocate_static(job)
        assert nodes == [0, 1]
        assert small_cluster.num_free_nodes == 2
        assert small_cluster.used_cpus == 16

    def test_can_allocate(self, small_cluster):
        assert small_cluster.can_allocate(make_job(nodes=4))
        assert not small_cluster.can_allocate(make_job(nodes=5))

    def test_explicit_node_list(self, small_cluster):
        job = make_job(nodes=2)
        nodes = small_cluster.allocate_static(job, node_ids=[2, 3])
        assert nodes == [2, 3]
        assert small_cluster.free_node_ids == [0, 1]

    def test_wrong_node_count_rejected(self, small_cluster):
        with pytest.raises(NodeAllocationError):
            small_cluster.allocate_static(make_job(nodes=2), node_ids=[0])

    def test_allocating_busy_node_rejected(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=1, nodes=1), node_ids=[0])
        with pytest.raises(NodeAllocationError):
            small_cluster.allocate_static(make_job(job_id=2, nodes=1), node_ids=[0])

    def test_pick_free_nodes_insufficient(self, small_cluster):
        small_cluster.allocate_static(make_job(nodes=3))
        with pytest.raises(NodeAllocationError):
            small_cluster.pick_free_nodes(2)

    def test_validate_after_allocations(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=1, nodes=2))
        small_cluster.allocate_static(make_job(job_id=2, nodes=1))
        small_cluster.validate()


class TestSharedAllocation:
    def test_shared_allocation_on_occupied_node(self, small_cluster):
        owner = make_job(job_id=1, nodes=1)
        small_cluster.allocate_static(owner, node_ids=[0])
        small_cluster.shrink_job_on_node(1, 0, 4)
        guest = make_job(job_id=2, nodes=1)
        nodes = small_cluster.allocate_shared(guest, {0: 4})
        assert nodes == [0]
        assert small_cluster.node(0).is_shared
        assert small_cluster.node(0).free_cpus == 0
        small_cluster.validate()

    def test_shared_allocation_needs_free_cpus(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=1, nodes=1), node_ids=[0])
        with pytest.raises(NodeAllocationError):
            small_cluster.allocate_shared(make_job(job_id=2, nodes=1), {0: 4})

    def test_shared_allocation_on_free_node_becomes_owner(self, small_cluster):
        guest = make_job(job_id=2, nodes=1)
        small_cluster.allocate_shared(guest, {1: 8})
        assert small_cluster.node(1).owner == 2


class TestReconfigureAndRelease:
    def test_release_job_frees_nodes(self, small_cluster):
        job = make_job(job_id=1, nodes=2)
        small_cluster.allocate_static(job)
        job.assigned_cpus = {0: 8, 1: 8}
        small_cluster.release_job(job)
        assert small_cluster.num_free_nodes == 4
        assert small_cluster.used_cpus == 0
        small_cluster.validate()

    def test_release_shared_node_stays_occupied(self, small_cluster):
        owner = make_job(job_id=1, nodes=1)
        small_cluster.allocate_static(owner, node_ids=[0])
        owner.assigned_cpus = {0: 8}
        small_cluster.shrink_job_on_node(1, 0, 4)
        guest = make_job(job_id=2, nodes=1)
        small_cluster.allocate_shared(guest, {0: 4})
        guest.assigned_cpus = {0: 4}
        small_cluster.release_job(guest)
        assert 0 not in small_cluster.free_node_ids
        assert small_cluster.node(0).cpus_of(1) == 4
        small_cluster.validate()

    def test_reconfigure_allocation_shrink_and_expand(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=1, nodes=2))
        small_cluster.reconfigure_allocation(1, {0: 4, 1: 4})
        assert small_cluster.used_cpus == 8
        small_cluster.reconfigure_allocation(1, {0: 8, 1: 8})
        assert small_cluster.used_cpus == 16
        small_cluster.validate()

    def test_reconfigure_allocation_releases_dropped_nodes(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=1, nodes=2))
        small_cluster.reconfigure_allocation(1, {0: 8})
        assert small_cluster.free_node_ids == [1, 2, 3]
        small_cluster.validate()

    def test_reconfigure_allocation_empty_map_rejected(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=1, nodes=1))
        with pytest.raises(NodeAllocationError):
            small_cluster.reconfigure_allocation(1, {})

    def test_release_all(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=1, nodes=3))
        small_cluster.release_all()
        assert small_cluster.num_free_nodes == 4
        assert small_cluster.used_cpus == 0
        small_cluster.validate()

    def test_nodes_of_job(self, small_cluster):
        small_cluster.allocate_static(make_job(job_id=7, nodes=2))
        assert small_cluster.nodes_of_job(7) == [0, 1]
        assert small_cluster.jobs_on_node(0) == [7]
