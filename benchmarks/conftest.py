"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md
for the experiment index).  The paper-scale workloads are far too large for
a benchmark budget, so each experiment runs on a proportionally scaled
workload; the scales below were chosen so the full suite completes in
roughly ten minutes while preserving the qualitative shape of every result.
Set the environment variable ``REPRO_BENCH_SCALE_FACTOR`` (e.g. ``2.0`` or
``10.0``) to enlarge all workloads towards paper scale.

Each benchmark also writes the rendered text of its figure/table to
``benchmarks/output/`` so the regenerated artefacts can be inspected and
compared against the paper (EXPERIMENTS.md records that comparison).
``tests/test_regression_golden.py`` pins the Table 1 and Figures 1-3 values
against the committed artefacts, so regenerate them deliberately.

The sweep-shaped benchmarks (Table 1, Figures 1-3, Figure 8) fan their
independent simulations out over a process pool via
:class:`repro.experiments.sweep.SweepRunner`; set ``REPRO_SWEEP_WORKERS``
to control the worker count (default: the CPU count; serial and parallel
execution produce identical metrics).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Baseline scales per paper workload id (fraction of the Table 1 size).
BENCH_SCALES = {1: 0.04, 2: 0.04, 3: 0.02, 4: 0.01, 5: 0.35}

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale(workload_id: int) -> float:
    """Benchmark scale for a paper workload, honouring the env override."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE_FACTOR", "1.0"))
    return min(1.0, BENCH_SCALES[workload_id] * factor)


def save_artifact(name: str, text: str) -> Path:
    """Write a regenerated figure/table to benchmarks/output/<name>.txt."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def scales():
    """Expose the per-workload benchmark scales to the benchmark modules."""
    return {wid: bench_scale(wid) for wid in BENCH_SCALES}
