"""Table 2 — application mix of the real-run workload.

Checks that the generated workload 5 reproduces the paper's application
shares (PILS 30.5%, STREAM 30.8%, CoreNeuron 35.5%, NEST 2.6%, Alya 0.6%).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.paper import table_2_application_mix
from repro.workloads.applications import APPLICATION_MIX


def test_table2_application_mix(benchmark):
    result = run_once(benchmark, lambda: table_2_application_mix(scale=1.0))
    save_artifact("table2_application_mix", result.text)
    shares = result.data["shares"]
    expected = {m.name: m.share for m in APPLICATION_MIX}
    for app, share in expected.items():
        assert shares.get(app, 0.0) == pytest.approx(share, abs=0.06), app
    assert result.data["num_jobs"] == 2000
