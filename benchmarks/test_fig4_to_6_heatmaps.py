"""Figures 4, 5, 6 — per-category heatmaps on the big (CEA-Curie-like) workload.

Static backfill and SD-Policy MAXSD 10 are compared per (requested nodes ×
runtime) category; the grids report the ratio static / SD-Policy, as in the
paper (values above 1.0 mean SD-Policy improved the category).

Expected shape (paper): small and short job categories improve the most
(slowdown ratios well above 1), the wait-time heatmap improves broadly, and
the runtime heatmap shows values slightly below 1 for categories whose jobs
were dilated by malleability.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import bench_scale, run_once, save_artifact
from repro.experiments.paper import figure_4_to_6_heatmaps
from repro.workloads.presets import build_workload


def test_fig4_to_6_category_heatmaps(benchmark):
    workload = build_workload(4, scale=bench_scale(4))

    def experiment():
        return figure_4_to_6_heatmaps(workload, max_slowdown=10.0)

    result = run_once(benchmark, experiment)
    save_artifact("fig4-6_heatmaps_workload4", result.text)
    grids = result.data["grids"]

    slowdown_grid = grids["slowdown"]
    populated = slowdown_grid.values[np.isfinite(slowdown_grid.values)]
    assert populated.size >= 4, "expected several populated job categories"

    # Figure 4 shape: the small/short corner improves strongly.
    small_short = slowdown_grid.values[0, 0]
    assert math.isfinite(small_short)
    assert small_short > 1.2

    # Aggregate slowdown improves (the weighted effect the paper reports).
    sd = result.data["sd_metrics"]["avg_slowdown"]
    static = result.data["static_metrics"]["avg_slowdown"]
    assert sd < static

    # Figure 5 shape: runtime ratios never exceed 1 by construction (SD can
    # only dilate runtimes), and some categories are dilated.
    runtime_grid = grids["runtime"].values
    finite_runtime = runtime_grid[np.isfinite(runtime_grid)]
    assert np.all(finite_runtime <= 1.0 + 1e-9)
    assert np.any(finite_runtime < 0.999)

    # Figure 6 shape: wait time improves on average over populated categories.
    wait_grid = grids["wait"].values
    finite_wait = wait_grid[np.isfinite(wait_grid)]
    assert np.nanmean(finite_wait) > 1.0
