"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary the maximum number of mates
(the paper fixes m = 2), the SharingFactor (the paper uses 0.5 = one
socket), and the malleable fraction of the workload (the paper's
simulations assume every job is malleable), quantifying how sensitive
SD-Policy's gains are to each choice.

Each ablation is a declarative :class:`repro.experiments.scenario.ScenarioSpec`
(one grid parameter swept against the static baseline) executed through the
parallel sweep runner, so the independent simulations fan out over the
process pool instead of running in a serial loop.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.analysis.tables import metrics_table
from repro.experiments.scenario import ScenarioSpec, WorkloadRef, run_scenario
from repro.workloads.cirne import CirneWorkloadModel


def _ablation_workload():
    return CirneWorkloadModel(
        num_jobs=400, system_nodes=48, cpus_per_node=8, max_job_nodes=16,
        target_load=1.05, median_runtime_s=2400.0, seed=911, name="ablation",
    ).generate()


def _ablation_spec(name: str, grid, baseline=True, policy="sd_policy", base=None) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        workloads=[WorkloadRef(name="ablation")],
        policy=policy,
        grid=grid,
        base={"runtime_model": "ideal", **(base or {})},
        baseline=(
            {"policy": "static_backfill", "kwargs": {"runtime_model": "ideal"}}
            if baseline
            else None
        ),
    )


def _run_ablation(spec: ScenarioSpec, workload, baseline_label="static"):
    """Execute an ablation scenario and collect {label: metrics} rows."""
    outcome = run_scenario(spec, workloads=workload)
    runs = {}
    if outcome.baselines:
        runs[baseline_label] = outcome.baseline_run.metrics
    for cell in outcome.cells:
        runs[cell.label] = cell.run.metrics
    return runs


def test_ablation_max_mates(benchmark):
    """m = 1 vs m = 2 vs m = 3 (the paper found no benefit beyond 2)."""
    workload = _ablation_workload()
    spec = _ablation_spec(
        "ablation-max-mates",
        grid={"max_mates": [1, 2, 3]},
        base={"max_slowdown": "inf"},
    )

    runs = run_once(benchmark, lambda: _run_ablation(spec, workload))
    save_artifact("ablation_max_mates", metrics_table(runs, title="Ablation: max mates"))
    static_sd = runs["static"].avg_slowdown
    sd = {m: runs[f"max_mates={m}"].avg_slowdown for m in (1, 2, 3)}
    # Two mates help over one; three gives no substantial further gain
    # (matching the paper's observation that m = 2 is enough).
    assert sd[2] <= sd[1] * 1.02
    assert sd[3] >= sd[2] * 0.9
    assert sd[2] < static_sd


def test_ablation_sharing_factor(benchmark):
    """SharingFactor 0.25 / 0.5 / 0.75 (the paper uses 0.5 = one socket)."""
    workload = _ablation_workload()
    spec = _ablation_spec(
        "ablation-sharing-factor",
        grid={"sharing_factor": [0.25, 0.5, 0.75]},
        base={"max_slowdown": "inf"},
    )

    runs = run_once(benchmark, lambda: _run_ablation(spec, workload))
    save_artifact("ablation_sharing_factor",
                  metrics_table(runs, title="Ablation: SharingFactor"))
    static_sd = runs["static"].avg_slowdown
    for sf in (0.25, 0.5, 0.75):
        assert runs[f"sharing_factor={sf}"].avg_slowdown <= static_sd * 1.05
    # Giving guests more of the node (larger factor) must not be worse for
    # the guests' slowdown than the most conservative split.
    assert (
        runs["sharing_factor=0.5"].avg_slowdown
        <= runs["sharing_factor=0.25"].avg_slowdown * 1.10
    )


def test_ablation_malleable_fraction(benchmark):
    """0% / 50% / 100% of the workload malleable (mixed workloads)."""
    workload = _ablation_workload()
    spec = _ablation_spec(
        "ablation-malleable-fraction",
        grid={"malleable_fraction": [
            {"label": "malleable=0%", "value": 0.0},
            {"label": "malleable=50%", "value": 0.5},
            {"label": "malleable=100%", "value": 1.0},
        ]},
        base={"max_slowdown": "inf"},
        baseline=False,
    )

    runs = run_once(benchmark, lambda: _run_ablation(spec, workload))
    save_artifact("ablation_malleable_fraction",
                  metrics_table(runs, title="Ablation: malleable fraction"))
    # With no malleable jobs SD-Policy degenerates to static backfill; gains
    # grow with the malleable share.
    assert runs["malleable=0%"].malleable_scheduled == 0
    assert runs["malleable=100%"].avg_slowdown <= runs["malleable=50%"].avg_slowdown * 1.05
    assert runs["malleable=50%"].avg_slowdown <= runs["malleable=0%"].avg_slowdown * 1.05


def test_ablation_backfill_depth(benchmark):
    """Backfill depth (SLURM's bf_max_job_test) sensitivity for the baseline."""
    workload = _ablation_workload()
    spec = _ablation_spec(
        "ablation-backfill-depth",
        grid={"max_job_test": [
            {"label": "depth=10", "value": 10},
            {"label": "depth=100", "value": 100},
        ]},
        policy="static_backfill",
        baseline=False,
    )

    runs = run_once(benchmark, lambda: _run_ablation(spec, workload))
    save_artifact("ablation_backfill_depth",
                  metrics_table(runs, title="Ablation: backfill depth"))
    # A deeper backfill window can only help (or leave unchanged) the
    # average wait of the static baseline.
    assert runs["depth=100"].avg_wait_time <= runs["depth=10"].avg_wait_time * 1.05
