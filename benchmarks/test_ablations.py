"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary the maximum number of mates
(the paper fixes m = 2), the SharingFactor (the paper uses 0.5 = one
socket), and the malleable fraction of the workload (the paper's
simulations assume every job is malleable), quantifying how sensitive
SD-Policy's gains are to each choice.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.analysis.tables import metrics_table
from repro.experiments.runner import run_workload
from repro.workloads.cirne import CirneWorkloadModel


def _ablation_workload():
    return CirneWorkloadModel(
        num_jobs=400, system_nodes=48, cpus_per_node=8, max_job_nodes=16,
        target_load=1.05, median_runtime_s=2400.0, seed=911, name="ablation",
    ).generate()


def test_ablation_max_mates(benchmark):
    """m = 1 vs m = 2 vs m = 3 (the paper found no benefit beyond 2)."""
    workload = _ablation_workload()

    def experiment():
        baseline = run_workload(workload, "static_backfill", runtime_model="ideal")
        runs = {"static": baseline.metrics}
        for m in (1, 2, 3):
            run = run_workload(workload, "sd_policy", runtime_model="ideal",
                               max_slowdown=math.inf, max_mates=m,
                               label=f"sd_m{m}")
            runs[f"max_mates={m}"] = run.metrics
        return runs

    runs = run_once(benchmark, experiment)
    save_artifact("ablation_max_mates", metrics_table(runs, title="Ablation: max mates"))
    static_sd = runs["static"].avg_slowdown
    sd = {m: runs[f"max_mates={m}"].avg_slowdown for m in (1, 2, 3)}
    # Two mates help over one; three gives no substantial further gain
    # (matching the paper's observation that m = 2 is enough).
    assert sd[2] <= sd[1] * 1.02
    assert sd[3] >= sd[2] * 0.9
    assert sd[2] < static_sd


def test_ablation_sharing_factor(benchmark):
    """SharingFactor 0.25 / 0.5 / 0.75 (the paper uses 0.5 = one socket)."""
    workload = _ablation_workload()

    def experiment():
        baseline = run_workload(workload, "static_backfill", runtime_model="ideal")
        runs = {"static": baseline.metrics}
        for sf in (0.25, 0.5, 0.75):
            run = run_workload(workload, "sd_policy", runtime_model="ideal",
                               max_slowdown=math.inf, sharing_factor=sf,
                               label=f"sd_sf{sf}")
            runs[f"sharing_factor={sf}"] = run.metrics
        return runs

    runs = run_once(benchmark, experiment)
    save_artifact("ablation_sharing_factor",
                  metrics_table(runs, title="Ablation: SharingFactor"))
    static_sd = runs["static"].avg_slowdown
    for sf in (0.25, 0.5, 0.75):
        assert runs[f"sharing_factor={sf}"].avg_slowdown <= static_sd * 1.05
    # Giving guests more of the node (larger factor) must not be worse for
    # the guests' slowdown than the most conservative split.
    assert (
        runs["sharing_factor=0.5"].avg_slowdown
        <= runs["sharing_factor=0.25"].avg_slowdown * 1.10
    )


def test_ablation_malleable_fraction(benchmark):
    """0% / 50% / 100% of the workload malleable (mixed workloads)."""
    workload = _ablation_workload()

    def experiment():
        runs = {}
        for fraction in (0.0, 0.5, 1.0):
            run = run_workload(workload, "sd_policy", runtime_model="ideal",
                               max_slowdown=math.inf, malleable_fraction=fraction,
                               label=f"sd_f{fraction}")
            runs[f"malleable={fraction:.0%}"] = run.metrics
        return runs

    runs = run_once(benchmark, experiment)
    save_artifact("ablation_malleable_fraction",
                  metrics_table(runs, title="Ablation: malleable fraction"))
    # With no malleable jobs SD-Policy degenerates to static backfill; gains
    # grow with the malleable share.
    assert runs["malleable=0%"].malleable_scheduled == 0
    assert runs["malleable=100%"].avg_slowdown <= runs["malleable=50%"].avg_slowdown * 1.05
    assert runs["malleable=50%"].avg_slowdown <= runs["malleable=0%"].avg_slowdown * 1.05


def test_ablation_backfill_depth(benchmark):
    """Backfill depth (SLURM's bf_max_job_test) sensitivity for the baseline."""
    workload = _ablation_workload()

    def experiment():
        runs = {}
        for depth in (10, 100):
            run = run_workload(workload, "static_backfill", runtime_model="ideal",
                               max_job_test=depth, label=f"static_d{depth}")
            runs[f"depth={depth}"] = run.metrics
        return runs

    runs = run_once(benchmark, experiment)
    save_artifact("ablation_backfill_depth",
                  metrics_table(runs, title="Ablation: backfill depth"))
    # A deeper backfill window can only help (or leave unchanged) the
    # average wait of the static baseline.
    assert runs["depth=100"].avg_wait_time <= runs["depth=10"].avg_wait_time * 1.05
