#!/usr/bin/env python
"""Pinned-workload performance harness (BENCH_10).

Measures the simulation core's throughput (jobs/sec, events/sec) and memory
high-water mark on fixed workloads and writes the results to
``BENCH_10.json`` so the perf trajectory is tracked next to correctness:

* ``swf_replay`` — the committed ``examples/sample.swf`` log tiled end to
  end and replayed in streaming mode (``retain_jobs=False``) under
  SD-Policy; the CI smoke preset.
* ``swf_100k`` — the same replay tiled to >= 100k jobs, demonstrating that
  a streaming run's memory stays bounded by the metric buffers (about 40
  bytes per job) instead of retained ``Job`` objects.
* ``mixed_paper_scale_cell`` — one cell of the
  ``examples/mixed_paper_scale.json`` grid (workload 1, 50/50
  rigid/malleable, MAXSD 10) through the regular ``run_workload`` path.
* ``swf_replay_analytics`` / ``swf_100k_analytics`` — the same streaming
  replays with a ``JobRecordSink`` riding the completion dispatch, pinning
  the analytics layer's overhead: the sink must stay within the jobs/sec
  tolerance of the plain replay and the columnar buffer (~115 bytes/job)
  must stay inside the streaming RSS cap.
* ``mixed_paper_scale_cell_ub`` — the same grid cell under the
  contention-aware UB-Policy with the application-aware runtime model,
  pinning the bandwidth-feasibility check's scheduling-time overhead.
* ``mixed_paper_scale_cell_traced`` — the same grid cell with the decision
  trace recorder attached (informational, no pinned floor); the *plain*
  cell's pinned floor is the disabled-telemetry overhead guard, since every
  trace emission site is a single ``trace is not None`` check on the
  default path.

Per-run phase timers (``simulate`` / ``metrics``) ride every
``run_workload``-path preset so the breakdown lands in ``BENCH_10.json``
alongside the totals.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench.py \
        [--presets swf_replay,swf_100k,mixed_paper_scale_cell] \
        [--out benchmarks/output/BENCH_10.json] \
        [--check --baseline benchmarks/perf/baseline.json]

``--check`` compares jobs/sec against the committed baseline and exits
non-zero on a regression beyond the tolerance (default 25%), so CI fails on
speed regressions like it fails on correctness regressions.
``REPRO_BENCH_SCALE_FACTOR`` scales the workload sizes up towards paper
scale (it never shrinks the pinned CI presets below their committed size).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.runtime_model import IdealRuntimeModel  # noqa: E402
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler  # noqa: E402
from repro.analytics.records import JobRecordSink  # noqa: E402
from repro.experiments.runner import run_workload  # noqa: E402
from repro.simulator.cluster import Cluster  # noqa: E402
from repro.simulator.job import Job  # noqa: E402
from repro.simulator.simulation import Simulation  # noqa: E402
from repro.workloads.presets import build_workload  # noqa: E402
from repro.workloads.swf import read_swf  # noqa: E402

SAMPLE_SWF = REPO_ROOT / "examples" / "sample.swf"
DEFAULT_OUT = REPO_ROOT / "benchmarks" / "output" / "BENCH_10.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "perf" / "baseline.json"


def _scale_factor() -> float:
    return max(1.0, float(os.environ.get("REPRO_BENCH_SCALE_FACTOR", "1.0")))


def _peak_rss_kib() -> int:
    """Process peak RSS in KiB (ru_maxrss unit on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def tiled_swf_jobs(tiles: int, malleable_fraction: float = 1.0, seed: int = 0):
    """Lazily yield the sample SWF log tiled ``tiles`` times end to end.

    Each tile shifts submit times by one full submission period (so offered
    load is preserved) and job ids by a fixed stride (so ids stay unique);
    jobs are yielded in globally nondecreasing submit order, ready for
    ``Simulation.submit_stream``.  Returns ``(workload, generator)``.
    """
    workload = read_swf(SAMPLE_SWF)
    base = workload.to_jobs(malleable_fraction=malleable_fraction, seed=seed)
    submits = [job.submit_time for job in base]
    span = max(submits) - min(submits)
    period = span * (len(base) + 1) / len(base)
    id_stride = max(job.job_id for job in base) + 1

    def generate() -> Iterator[Job]:
        for tile in range(tiles):
            offset = tile * period
            for job in base:
                yield Job(
                    job_id=job.job_id + tile * id_stride,
                    submit_time=job.submit_time + offset,
                    requested_nodes=job.requested_nodes,
                    requested_time=job.requested_time,
                    static_runtime=job.static_runtime,
                    cpus_per_node=job.cpus_per_node,
                    malleable=job.malleable,
                    tasks_per_node=job.tasks_per_node,
                )

    return workload, generate()


def _swf_replay_preset(tiles: int, analytics: bool = False) -> Dict[str, float]:
    workload, stream = tiled_swf_jobs(tiles)
    cluster = Cluster(
        num_nodes=workload.system_nodes,
        sockets=2,
        cores_per_socket=max(1, workload.cpus_per_node // 2),
    )
    scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown=10.0))
    sink = JobRecordSink() if analytics else None
    sim = Simulation(
        cluster,
        scheduler,
        runtime_model=IdealRuntimeModel(),
        retain_jobs=False,
        sinks=(sink,) if sink is not None else (),
    )
    sim.submit_stream(stream)
    rss_before = _peak_rss_kib()
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    rss_after = _peak_rss_kib()
    jobs = result.num_jobs
    expected = tiles * len(workload)
    if jobs != expected:
        raise RuntimeError(f"swf replay completed {jobs} of {expected} jobs")
    return {
        "jobs": jobs,
        "total_events": result.total_events,
        "wall_seconds": elapsed,
        "jobs_per_sec": jobs / elapsed,
        "events_per_sec": result.total_events / elapsed,
        "peak_rss_kib": rss_after,
        "rss_delta_kib": rss_after - rss_before,
        "streaming_buffer_bytes": sim.streaming.buffer_bytes,
        "analytics": analytics,
        "records_rows": len(sink) if sink is not None else 0,
        "records_bytes": sink.nbytes if sink is not None else 0,
        "retain_jobs": False,
        "makespan": result.makespan,
        "avg_slowdown": result.avg_slowdown,
    }


def preset_swf_replay() -> Dict[str, float]:
    """CI smoke preset: the sample log tiled x10 (2000 jobs), streaming."""
    return _swf_replay_preset(tiles=int(round(10 * _scale_factor())))


def preset_swf_100k() -> Dict[str, float]:
    """The >=100k-job streaming replay (memory-bound demonstration)."""
    return _swf_replay_preset(tiles=int(round(500 * _scale_factor())))


def _mixed_cell_preset(
    trace: bool = False,
    policy: str = "sd_policy",
    runtime_model: str = "ideal",
    profiles: str | None = None,
) -> Dict[str, float]:
    scale = min(1.0, 0.02 * _scale_factor())
    workload = build_workload(1, scale=scale)
    rss_before = _peak_rss_kib()
    run = run_workload(
        workload,
        policy=policy,
        runtime_model=runtime_model,
        malleable_fraction=0.5,
        max_slowdown=10.0,
        sharing_factor=0.5,
        profiles=profiles,
        seed=0,
        retain_jobs=False,
        trace=trace,
    )
    rss_after = _peak_rss_kib()
    result = run.result
    elapsed = run.wall_clock_seconds
    return {
        "jobs": result.num_jobs,
        "total_events": result.total_events,
        "wall_seconds": elapsed,
        "jobs_per_sec": result.num_jobs / elapsed,
        "events_per_sec": result.total_events / elapsed,
        "peak_rss_kib": rss_after,
        "rss_delta_kib": rss_after - rss_before,
        "retain_jobs": False,
        "makespan": result.makespan,
        "avg_slowdown": run.metrics.avg_slowdown,
        "phases": dict(run.phases),
        "trace": trace,
        "trace_events": len(run.trace) if run.trace is not None else 0,
    }


def preset_mixed_paper_scale_cell() -> Dict[str, float]:
    """One mixed_paper_scale grid cell: workload 1, 50/50 mix, MAXSD 10."""
    return _mixed_cell_preset()


def preset_mixed_paper_scale_cell_ub() -> Dict[str, float]:
    """The same grid cell under UB-Policy + the application-aware model."""
    return _mixed_cell_preset(
        policy="ub_policy", runtime_model="application_aware", profiles="table2"
    )


def preset_mixed_paper_scale_cell_traced() -> Dict[str, float]:
    """The same grid cell with the decision-trace recorder attached."""
    return _mixed_cell_preset(trace=True)


def preset_swf_replay_analytics() -> Dict[str, float]:
    """The CI smoke replay with the per-job analytics sink attached."""
    return _swf_replay_preset(tiles=int(round(10 * _scale_factor())), analytics=True)


def preset_swf_100k_analytics() -> Dict[str, float]:
    """The >=100k-job streaming replay with the analytics sink attached."""
    return _swf_replay_preset(tiles=int(round(500 * _scale_factor())), analytics=True)


PRESETS: Dict[str, Callable[[], Dict[str, float]]] = {
    "swf_replay": preset_swf_replay,
    "swf_100k": preset_swf_100k,
    "swf_replay_analytics": preset_swf_replay_analytics,
    "swf_100k_analytics": preset_swf_100k_analytics,
    "mixed_paper_scale_cell": preset_mixed_paper_scale_cell,
    "mixed_paper_scale_cell_ub": preset_mixed_paper_scale_cell_ub,
    "mixed_paper_scale_cell_traced": preset_mixed_paper_scale_cell_traced,
}


def check_against_baseline(
    results: Dict[str, Dict[str, float]],
    baseline_path: Path,
    tolerance: float,
) -> List[str]:
    """Regressions vs the committed baseline (empty list when clean)."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures: List[str] = []
    for name, measured in results.items():
        pinned = baseline.get("presets", {}).get(name)
        if pinned is None:
            continue
        floor = pinned["jobs_per_sec"] * (1.0 - tolerance)
        if measured["jobs_per_sec"] < floor:
            failures.append(
                f"{name}: {measured['jobs_per_sec']:.0f} jobs/sec is below the "
                f"baseline floor {floor:.0f} "
                f"(baseline {pinned['jobs_per_sec']:.0f}, tolerance {tolerance:.0%})"
            )
        rss_cap = pinned.get("max_rss_delta_kib")
        if rss_cap is not None and measured["rss_delta_kib"] > rss_cap:
            failures.append(
                f"{name}: RSS grew {measured['rss_delta_kib']} KiB during the "
                f"run, above the {rss_cap} KiB cap — jobs are likely being "
                "retained despite retain_jobs=False"
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--presets",
        default=",".join(PRESETS),
        help=f"comma-separated subset of: {', '.join(PRESETS)}",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--check", action="store_true",
                        help="fail on regression against --baseline")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed jobs/sec regression fraction (default 0.25)")
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.presets.split(",") if n.strip()]
    unknown = [n for n in names if n not in PRESETS]
    if unknown:
        parser.error(f"unknown preset(s): {', '.join(unknown)}")

    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        print(f"[bench] running {name} ...", flush=True)
        results[name] = PRESETS[name]()
        r = results[name]
        print(
            f"[bench] {name}: {r['jobs']} jobs, {r['total_events']} events in "
            f"{r['wall_seconds']:.2f}s -> {r['jobs_per_sec']:.0f} jobs/sec, "
            f"peak RSS {r['peak_rss_kib']} KiB (delta {r['rss_delta_kib']} KiB)",
            flush=True,
        )

    payload = {
        "bench_id": 10,
        "schema": 1,
        "timestamp": time.time(),
        "scale_factor": _scale_factor(),
        "presets": results,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"[bench] wrote {args.out}")

    if args.check:
        if not args.baseline.exists():
            print(f"[bench] baseline {args.baseline} missing", file=sys.stderr)
            return 2
        failures = check_against_baseline(results, args.baseline, args.tolerance)
        for failure in failures:
            print(f"[bench] REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("[bench] no regression against baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
