"""Figure 9 — improvements of SD-Policy in the emulated MareNostrum4 run.

The real-run emulation replays workload 5 (Cirne model converted to the
Table 2 application mix) on the 49-node system with the application-aware
runtime, interference and energy models, under static backfill and under
SD-Policy.

Expected shape (paper): makespan improves by single-digit percent, average
response time and slowdown by double-digit percent, and energy by a few
percent; most malleable-scheduled jobs use resources more efficiently than
their static execution.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, run_once, save_artifact
from repro.experiments.paper import figure_9_real_run


def test_fig9_real_run_improvements(benchmark):
    def experiment():
        return figure_9_real_run(scale=bench_scale(5), max_slowdown="dynamic")

    result = run_once(benchmark, experiment)
    save_artifact("fig9_real_run", result.text)
    improvements = result.data["improvements"]

    # Response time and slowdown improve by double digits.
    assert improvements["avg_response_time"] > 10.0
    assert improvements["avg_slowdown"] > 10.0
    # Energy does not regress meaningfully (the paper reports a 6% saving).
    assert improvements["energy_joules"] > -5.0
    # Makespan stays within a few percent of static backfill.
    assert improvements["makespan"] > -8.0
    # Most malleable-scheduled jobs used resources more efficiently than the
    # static execution (paper: 449 of 539).
    assert result.data["malleable_scheduled"] > 0
    assert result.data["better_runtime_jobs"] >= 0.6 * result.data["malleable_scheduled"]
