"""Figures 1, 2, 3 — MAX_SLOWDOWN parameter sweep.

For each workload, SD-Policy is simulated with MAXSD 5 / 10 / 50 / infinite
and the dynamic DynAVGSD cut-off (SharingFactor 0.5, ideal runtime model),
and makespan / average response time / average slowdown are reported
normalised to the static backfill run — the paper's Figures 1-3.

Expected shape (paper): average slowdown and response time improve under
every setting and broadly improve as the cut-off is relaxed; makespan stays
roughly constant; the biggest slowdown reductions are tens of percent.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, run_once, save_artifact
from repro.experiments.paper import figure_1_to_3_maxsd_sweep
from repro.workloads.presets import build_workload

WORKLOAD_IDS = (1, 2, 3, 4)


@pytest.mark.parametrize("workload_id", WORKLOAD_IDS)
def test_fig1_to_3_maxsd_sweep(benchmark, workload_id):
    workload = build_workload(workload_id, scale=bench_scale(workload_id))

    def experiment():
        return figure_1_to_3_maxsd_sweep(workload)

    result = run_once(benchmark, experiment)
    save_artifact(f"fig1-3_maxsd_sweep_workload{workload_id}", result.text)
    normalized = result.data["normalized"]
    assert set(normalized) == {"MAXSD 5", "MAXSD 10", "MAXSD 50", "MAXSD inf", "DynAVGSD"}

    slowdowns = {label: vals["avg_slowdown"] for label, vals in normalized.items()}
    responses = {label: vals["avg_response_time"] for label, vals in normalized.items()}
    makespans = {label: vals["makespan"] for label, vals in normalized.items()}

    # Figure 3 shape: SD-Policy never loses on average slowdown, and the
    # best setting achieves a clear reduction.
    assert all(value <= 1.05 for value in slowdowns.values()), slowdowns
    assert min(slowdowns.values()) < 0.9, slowdowns
    # Relaxing the cut-off from 5 upward must not make slowdown drastically
    # worse (the paper observes monotone-ish improvement with small bumps).
    assert slowdowns["MAXSD inf"] <= slowdowns["MAXSD 5"] * 1.15
    # Figure 2 shape: response time improves for the best setting.
    assert min(responses.values()) < 1.0
    # Figure 1 shape: makespan stays roughly constant.  At benchmark scale
    # the tail of the last few (possibly dilated) jobs weighs much more than
    # at paper scale, so the band is ±25%; EXPERIMENTS.md discusses the
    # tighter behaviour observed at larger scales.
    assert all(0.75 <= value <= 1.25 for value in makespans.values()), makespans
