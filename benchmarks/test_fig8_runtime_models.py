"""Figure 8 — ideal vs worst-case runtime model.

Runs SD-Policy DynAVGSD under both runtime models of Section 3.4 on
workloads 1-4 and reports makespan / response time / slowdown normalised to
static backfill.

Expected shape (paper): the worst-case model costs at most a few to ~15
percent over the ideal model, both still outperform static backfill on
slowdown, and the workload with exact requests (workload 2) is the least
affected by the model choice.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, run_once, save_artifact
from repro.experiments.paper import figure_8_runtime_models
from repro.workloads.presets import build_workload


def test_fig8_runtime_model_comparison(benchmark):
    workloads = {
        f"workload{wid}": build_workload(wid, scale=bench_scale(wid)) for wid in (1, 2, 3, 4)
    }

    def experiment():
        return figure_8_runtime_models(workloads, max_slowdown="dynamic")

    result = run_once(benchmark, experiment)
    save_artifact("fig8_runtime_models", result.text)
    per_workload = result.data["per_workload"]
    assert set(per_workload) == set(workloads)

    for name, entry in per_workload.items():
        ideal = entry["ideal"]
        worst = entry["worst_case"]
        # Both models outperform (or at least match) static backfill on slowdown.
        assert ideal["avg_slowdown"] <= 1.05, name
        assert worst["avg_slowdown"] <= 1.10, name
        # The worst-case model is never dramatically worse than the ideal one
        # (the paper reports overheads up to ~16% on slowdown).
        assert worst["avg_slowdown"] <= ideal["avg_slowdown"] * 1.35 + 0.05, name
        assert worst["avg_response_time"] <= ideal["avg_response_time"] * 1.30 + 0.05, name
