"""Table 1 — workload descriptions under static backfill.

Regenerates, for every paper workload (at benchmark scale), the number of
jobs, system size, maximum job size, and the average response time, average
slowdown and makespan measured with the static backfill simulation.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, run_once, save_artifact
from repro.experiments.paper import table_1_workloads


def test_table1_workload_descriptions(benchmark):
    def experiment():
        return table_1_workloads(scale=bench_scale(3), workload_ids=(1, 2, 3, 5))

    result = run_once(benchmark, experiment)
    save_artifact("table1_workloads", result.text)
    rows = result.data["rows"]
    assert set(rows) == {1, 2, 3, 5}
    for row in rows.values():
        # Every workload is congested enough for queueing to matter
        # (the paper's Table 1 slowdowns are in the thousands).
        assert row["avg_slowdown"] > 1.0
        assert row["makespan"] > 0
        assert row["max_job_nodes"] <= row["system_nodes"]
    # Workloads 1 and 2 share the size distribution; workload 2 has exact
    # requests, which the paper notes does not automatically improve the
    # static backfill slowdown.
    assert rows[1]["jobs"] == rows[2]["jobs"]


def test_table1_big_workload_row(benchmark):
    """The CEA-Curie-like row is regenerated separately (it dominates cost)."""

    def experiment():
        return table_1_workloads(scale=bench_scale(4), workload_ids=(4,))

    result = run_once(benchmark, experiment)
    save_artifact("table1_workload4", result.text)
    row = result.data["rows"][4]
    assert row["avg_slowdown"] > 1.0
    assert row["jobs"] >= 1000
