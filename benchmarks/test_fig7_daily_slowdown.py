"""Figure 7 — daily average slowdown trend and malleable-job counts.

Compares the per-day average slowdown of static backfill and SD-Policy
MAXSD 10 on the CEA-Curie-like workload, together with the number of jobs
scheduled with malleability each day.

Expected shape (paper): the slowdown peaks of the static run are strongly
reduced, the SD series rarely exceeds the static one, and roughly 10% of
the jobs are malleable-scheduled with a somewhat smaller share of mates.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import bench_scale, run_once, save_artifact
from repro.experiments.paper import figure_7_daily_series
from repro.workloads.presets import build_workload


def test_fig7_daily_slowdown_series(benchmark):
    workload = build_workload(4, scale=bench_scale(4))

    def experiment():
        return figure_7_daily_series(workload, max_slowdown=10.0)

    result = run_once(benchmark, experiment)
    save_artifact("fig7_daily_slowdown_workload4", result.text)
    rows = result.data["rows"]
    assert len(rows) >= 3, "expected a multi-day workload"

    static = np.array([r["static_slowdown"] for r in rows if math.isfinite(r["static_slowdown"])])
    sd = np.array([r["sd_slowdown"] for r in rows if math.isfinite(r["sd_slowdown"])])

    # Peak reduction: the worst static day improves under SD-Policy.
    assert sd.max() <= static.max() * 1.05
    # The mean daily slowdown improves.
    assert sd.mean() < static.mean()
    # Malleability is actually exercised, day after day.
    assert sum(r["malleable_jobs"] for r in rows) > 0
    assert result.data["malleable_fraction"] > 0.02
    # Mates are never more numerous than malleable-scheduled guests by much
    # (the paper reports 10.3% guests vs 8.6% mates).
    assert result.data["mate_fraction"] <= result.data["malleable_fraction"] * 1.5
