"""Setup shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks the ``wheel`` package (legacy
``setup.py develop`` path via ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
