#!/usr/bin/env python3
"""Per-category analysis of SD-Policy on a large workload (Figures 4-7).

Runs static backfill and SD-Policy MAXSD 10 on the CEA-Curie-like workload
(scaled), then prints:

* the slowdown / runtime / wait-time ratio heatmaps per job category
  (requested nodes x runtime) — the paper's Figures 4, 5 and 6;
* the per-day average slowdown of both policies with the number of jobs
  scheduled through malleability — the paper's Figure 7.

Run with::

    python examples/heatmap_analysis.py --scale 0.01 --maxsd 10
"""

from __future__ import annotations

import argparse

from repro.experiments.paper import figure_4_to_6_heatmaps, figure_7_daily_series
from repro.workloads.presets import build_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01,
                        help="fraction of the full 198K-job CEA-Curie-like workload")
    parser.add_argument("--maxsd", type=float, default=10.0)
    parser.add_argument("--workload", type=int, default=4, choices=[1, 2, 3, 4, 5])
    args = parser.parse_args()

    workload = build_workload(args.workload, scale=args.scale)
    print(f"Workload {args.workload} at scale {args.scale:g}: {len(workload)} jobs on "
          f"{workload.system_nodes} nodes\n")

    heatmaps = figure_4_to_6_heatmaps(workload, max_slowdown=args.maxsd)
    print(heatmaps.text)
    print()
    static_sd = heatmaps.data["static_metrics"]["avg_slowdown"]
    sd_sd = heatmaps.data["sd_metrics"]["avg_slowdown"]
    print(f"Average slowdown: static {static_sd:.1f} -> SD-Policy {sd_sd:.1f} "
          f"({(1 - sd_sd / static_sd) * 100:.1f}% reduction)\n")

    daily = figure_7_daily_series(workload, max_slowdown=args.maxsd)
    print(daily.text)
    print()
    print(f"Jobs scheduled with malleability: {daily.data['malleable_scheduled']} "
          f"({daily.data['malleable_fraction'] * 100:.1f}% of the workload), "
          f"mates: {daily.data['mate_jobs']} ({daily.data['mate_fraction'] * 100:.1f}%)")


if __name__ == "__main__":
    main()
