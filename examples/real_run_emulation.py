#!/usr/bin/env python3
"""Emulated MareNostrum4 "real run" (the paper's Section 4.4 / Figure 9).

Replays the real-run workload (Cirne model converted to the Table 2
application mix: PILS, STREAM, CoreNeuron, NEST, Alya) on the 49-node
system with the application-aware performance, interference and energy
models, under static backfill and under SD-Policy, and prints the
improvement percentages of Figure 9.

Run with::

    python examples/real_run_emulation.py --scale 0.5
"""

from __future__ import annotations

import argparse

from repro.analysis.figures import render_bar_chart
from repro.realrun.emulator import RealRunEmulator
from repro.workloads.applications import application_shares


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="fraction of the paper's 2000-job / 49-node configuration")
    parser.add_argument("--maxsd", default="dynamic",
                        help="MAX_SLOWDOWN setting: a number, 'inf' or 'dynamic'")
    parser.add_argument("--sharing-factor", type=float, default=0.5)
    args = parser.parse_args()

    maxsd = args.maxsd if args.maxsd == "dynamic" else float(args.maxsd)
    emulator = RealRunEmulator(
        scale=args.scale, sharing_factor=args.sharing_factor, max_slowdown=maxsd
    )
    workload = emulator.workload
    print(f"Real-run workload: {len(workload)} jobs on {workload.system_nodes} nodes "
          f"({workload.cpus_per_node} cores each)")
    print("Application mix (Table 2):")
    for app, share in application_shares(workload).items():
        print(f"  {app:12s} {share * 100:5.1f}%")
    print()

    outcome = emulator.compare()
    print(render_bar_chart(
        outcome.improvements,
        title="Figure 9 — improvement (%) of SD-Policy over static backfill",
        reference=0.0,
        fmt="{:.1f}%",
    ))
    print()
    print(f"Jobs scheduled with malleability: {outcome.malleable_scheduled}")
    print(f"Of those, using resources more efficiently than static execution: "
          f"{outcome.better_runtime_jobs}")
    print(f"Static energy: {outcome.static_metrics.energy_joules / 3.6e6:.1f} kWh, "
          f"SD-Policy energy: {outcome.sd_metrics.energy_joules / 3.6e6:.1f} kWh")
    print(f"(comparison took {outcome.wall_clock_seconds:.1f}s of wall-clock time)")


if __name__ == "__main__":
    main()
