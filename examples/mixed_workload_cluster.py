#!/usr/bin/env python3
"""Mixed malleable/static workloads and custom cluster assembly.

The paper stresses that SD-Policy "supports mixed workloads with malleable,
moldable and static applications, ideal for being used in transition to a
malleable environment".  This example uses the lower-level API directly
(cluster, jobs, simulation) instead of the experiment harness:

1. builds a MareNostrum4-like cluster by hand;
2. constructs jobs explicitly, marking only a fraction of them malleable;
3. runs SD-Policy and shows how the gains grow with the malleable share;
4. inspects individual malleable jobs' resource histories (shrink/expand).

Run with::

    python examples/mixed_workload_cluster.py
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.core.runtime_model import IdealRuntimeModel
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.metrics.aggregates import compute_metrics
from repro.simulator.cluster import Cluster
from repro.simulator.simulation import Simulation
from repro.workloads.cirne import CirneWorkloadModel


def run_with_malleable_fraction(fraction: float, seed: int = 123):
    """Run the same workload with a given fraction of malleable jobs."""
    workload = CirneWorkloadModel(
        num_jobs=300, system_nodes=32, cpus_per_node=48, max_job_nodes=8,
        target_load=1.1, seed=7, name="mixed",
    ).generate()
    # MareNostrum4-like nodes: 2 sockets x 24 cores, 96 GB.
    cluster = Cluster(num_nodes=32, sockets=2, cores_per_socket=24, memory_gb=96.0)
    scheduler = SDPolicyScheduler(SDPolicyConfig(max_slowdown="dynamic", sharing_factor=0.5))
    sim = Simulation(cluster, scheduler, runtime_model=IdealRuntimeModel())
    sim.submit_jobs(workload.to_jobs(cpus_per_node=48, malleable_fraction=fraction, seed=seed))
    result = sim.run()
    return result, compute_metrics(result.jobs, energy_joules=result.energy_joules)


def main() -> None:
    rows = []
    last_result = None
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        result, metrics = run_with_malleable_fraction(fraction)
        last_result = result
        rows.append([
            f"{fraction:.0%}",
            metrics.avg_slowdown,
            metrics.avg_response_time,
            metrics.makespan,
            metrics.malleable_scheduled,
            metrics.mate_jobs,
        ])
    print(format_table(
        ["malleable share", "avg slowdown", "avg response (s)", "makespan (s)",
         "malleable-scheduled", "mates"],
        rows,
        precision=1,
        title="SD-Policy on a mixed workload (DynAVGSD, SharingFactor 0.5)",
    ))

    # Inspect a few malleable jobs' shrink/expand histories from the last run.
    print("\nResource histories of the first three co-scheduled guests:")
    shown = 0
    for job in last_result.jobs:
        if not job.scheduled_malleable:
            continue
        segments = ", ".join(
            f"[{slot.start:.0f}s-{slot.end:.0f}s: {slot.total_cpus} cpus @ x{slot.speed:.2f}]"
            for slot in job.resource_history
            if math.isfinite(slot.end)
        )
        print(f"  job {job.job_id} ({job.requested_nodes} nodes, "
              f"static {job.static_runtime:.0f}s, actual {job.actual_runtime:.0f}s): {segments}")
        shown += 1
        if shown == 3:
            break


if __name__ == "__main__":
    main()
