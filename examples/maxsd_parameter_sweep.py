#!/usr/bin/env python3
"""MAX_SLOWDOWN parameter study (the paper's Figures 1-3) on a chosen workload.

Sweeps the MAXSD 5 / 10 / 50 / infinite and DynAVGSD settings on one of the
paper's workloads and prints the three figures (makespan, response time,
slowdown — all normalised to static backfill) as text bar charts.

Run with::

    python examples/maxsd_parameter_sweep.py --workload 3 --scale 0.03
"""

from __future__ import annotations

import argparse

from repro.experiments.paper import figure_1_to_3_maxsd_sweep
from repro.workloads.presets import build_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", type=int, default=3, choices=[1, 2, 3, 4, 5],
                        help="paper workload id (Table 1)")
    parser.add_argument("--scale", type=float, default=0.03,
                        help="fraction of the paper-scale workload (1.0 = full size)")
    parser.add_argument("--sharing-factor", type=float, default=0.5)
    args = parser.parse_args()

    workload = build_workload(args.workload, scale=args.scale)
    print(f"Workload {args.workload} at scale {args.scale:g}: {len(workload)} jobs on "
          f"{workload.system_nodes} nodes (offered load {workload.offered_load():.2f})\n")

    result = figure_1_to_3_maxsd_sweep(workload, sharing_factor=args.sharing_factor)
    print(result.text)
    print()

    best = min(result.data["normalized"].items(), key=lambda kv: kv[1]["avg_slowdown"])
    print(f"Best setting for average slowdown: {best[0]} "
          f"({(1 - best[1]['avg_slowdown']) * 100:.1f}% reduction vs static backfill)")


if __name__ == "__main__":
    main()
