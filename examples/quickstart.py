#!/usr/bin/env python3
"""Quickstart: simulate a workload under static backfill and SD-Policy.

This is the smallest end-to-end use of the library's public API:

1. generate a Cirne-model workload scaled to a 64-node system;
2. run it under the static backfill baseline;
3. run it under SD-Policy (dynamic MAX_SLOWDOWN, SharingFactor 0.5);
4. print the paper's metrics side by side and the improvement percentages.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.comparison import improvement_percent
from repro.analysis.tables import metrics_table
from repro.experiments.runner import run_workload
from repro.workloads.cirne import CirneWorkloadModel


def main() -> None:
    # 1. A 600-job workload on a 64-node x 48-core system, mildly congested.
    workload = CirneWorkloadModel(
        num_jobs=600,
        system_nodes=64,
        cpus_per_node=48,
        max_job_nodes=16,
        target_load=1.05,
        seed=42,
        name="quickstart",
    ).generate()
    print(f"Workload: {len(workload)} jobs, offered load {workload.offered_load():.2f}")

    # 2. Static backfill baseline (SLURM sched/backfill style).
    static = run_workload(workload, "static_backfill", runtime_model="ideal")

    # 3. SD-Policy with the dynamic average-slowdown cut-off.
    sd = run_workload(
        workload,
        "sd_policy",
        runtime_model="ideal",
        max_slowdown="dynamic",
        sharing_factor=0.5,
    )

    # 4. Report.
    print()
    print(metrics_table({"static_backfill": static.metrics, sd.label: sd.metrics},
                        title="Static backfill vs SD-Policy"))
    print()
    print("Improvement of SD-Policy over static backfill:")
    for metric, value in improvement_percent(sd.metrics, static.metrics).items():
        print(f"  {metric:20s} {value:+6.1f}%")
    print()
    print(f"Jobs scheduled with malleability: {sd.metrics.malleable_scheduled} "
          f"({100 * sd.metrics.malleable_scheduled / sd.metrics.num_jobs:.1f}%), "
          f"mates: {sd.metrics.mate_jobs}")


if __name__ == "__main__":
    main()
