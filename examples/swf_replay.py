#!/usr/bin/env python3
"""Replay a real Standard Workload Format (SWF) log under SD-Policy.

The paper evaluates SD-Policy on logs from the Parallel Workloads Archive
(RICC 2010, CEA-Curie 2011).  This example shows the drop-in path for real
logs: parse an SWF file, optionally truncate/rescale it, and compare static
backfill against SD-Policy on it.  Without an ``--swf`` argument it
generates a synthetic RICC-like log, writes it to SWF, and replays that
file — exercising the exact same code path a real archive log would take.

Run with::

    python examples/swf_replay.py --max-jobs 1000
    python examples/swf_replay.py --swf /path/to/RICC-2010-2.swf --max-jobs 5000
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.analysis.comparison import improvement_percent
from repro.analysis.tables import metrics_table
from repro.experiments.runner import run_workload
from repro.workloads.swf import read_swf, write_swf
from repro.workloads.synthetic import RICCLikeModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--swf", type=str, default=None, help="path to an SWF log")
    parser.add_argument("--max-jobs", type=int, default=1000,
                        help="truncate the log to this many jobs")
    parser.add_argument("--cpus-per-node", type=int, default=8)
    parser.add_argument("--maxsd", default="10")
    args = parser.parse_args()

    if args.swf is None:
        # Generate a synthetic RICC-like log and round-trip it through SWF.
        synthetic = RICCLikeModel(num_jobs=args.max_jobs, system_nodes=128,
                                  max_job_nodes=36, seed=5).generate()
        tmp = Path(tempfile.mkstemp(suffix=".swf")[1])
        write_swf(synthetic, tmp, comments=["synthetic RICC-like log for swf_replay.py"])
        swf_path = tmp
        print(f"No --swf given; wrote a synthetic RICC-like log to {tmp}")
    else:
        swf_path = Path(args.swf)

    workload = read_swf(swf_path, cpus_per_node=args.cpus_per_node, max_jobs=args.max_jobs)
    print(f"Parsed {len(workload)} jobs; system: {workload.system_nodes} nodes x "
          f"{workload.cpus_per_node} cores; offered load {workload.offered_load():.2f}\n")

    maxsd = "dynamic" if args.maxsd == "dynamic" else float(args.maxsd)
    static = run_workload(workload, "static_backfill", runtime_model="ideal")
    sd = run_workload(workload, "sd_policy", runtime_model="ideal", max_slowdown=maxsd)

    print(metrics_table({"static_backfill": static.metrics, sd.label: sd.metrics},
                        title=f"Replay of {swf_path.name}"))
    print("\nImprovement of SD-Policy over static backfill:")
    for metric, value in improvement_percent(sd.metrics, static.metrics).items():
        print(f"  {metric:20s} {value:+6.1f}%")


if __name__ == "__main__":
    main()
