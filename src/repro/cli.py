"""Command-line driver.

Provides a small set of subcommands to run the paper's experiments from the
shell (installed as ``repro-sdpolicy`` or via ``python -m repro``):

* ``run`` — simulate one workload under one policy and print the metrics;
* ``compare`` — run static backfill and SD-Policy on a workload and print
  the normalised comparison;
* ``sweep`` — run the MAX_SLOWDOWN sweep (Figures 1-3) through the parallel
  sweep runner, with ``--workers`` and an optional on-disk result cache;
  ``--shard I/N`` executes one deterministic slice (resumable via a shard
  manifest next to the cache) and ``sweep merge`` assembles the full,
  bit-identical result once every shard has run;
* ``scenario`` — run a declarative scenario spec (a JSON file, or a named
  built-in such as ``figure4-6``) through the sweep runner;
* ``table1`` / ``table2`` — regenerate the paper's tables;
* ``figure`` — regenerate a figure by number (1–9; 1/2/3 and 4/5/6 are
  grouped as in the paper); every figure honours ``--workers`` and
  ``--cache-dir``/``--store``;
* ``store`` — inspect and manage result stores (``stats``, ``prune``,
  manifest-aware ``gc``, integrity ``verify``/``repair``,
  ``push``/``pull`` mirroring, and ``serve`` — an in-process
  S3-compatible endpoint for tests and CI);
* ``query`` — aggregate persisted per-job records (``--analytics`` runs)
  across every sweep in a store, or regenerate Figures 1-3/7 and Table 1
  byte-identically from the records without re-simulating;
* ``trace`` — inspect stored scheduler decision traces recorded by
  ``--trace`` sweeps (``summary``, ``grep``, ``timeline``);
* ``swf`` — inspect a Standard Workload Format file;
* ``lint`` — the repro-lint static-analysis pass (determinism, store
  discipline, exception discipline; ``--list-rules`` prints the catalog).

Every sweep-backed subcommand accepts ``--store URL`` selecting a result
store backend (``file://…``, ``memory://…``, ``s3+http(s)://…``) instead
of the local ``--cache-dir``; with neither flag set, ``REPRO_STORE_URL``
applies.

Example::

    repro-sdpolicy figure 3 --workload 3 --scale 0.05
    repro-sdpolicy compare --workload 1 --scale 0.05 --maxsd 10
    repro-sdpolicy sweep --workload 1 --scale 0.04 --workers 4 --cache-dir auto
    repro-sdpolicy sweep --workload 1 --scale 0.04 --store s3+http://cache:9000/repro --shard 1/2
    repro-sdpolicy sweep merge --workload 1 --scale 0.04 --store s3+http://cache:9000/repro
    repro-sdpolicy store stats s3+http://cache:9000/repro
    repro-sdpolicy store pull s3+http://cache:9000/repro ~/.cache/repro/sweeps
    repro-sdpolicy scenario examples/figure7_scenario.json --workers 2
    repro-sdpolicy scenario --list
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import Optional, Sequence

from repro.analysis.tables import metrics_table
from repro.core.policy import available_policies
from repro.core.profiles import PROFILE_SET_NAMES
from repro.devtools.lint import cli as lint_cli
from repro.experiments.executors import parse_shard
from repro.experiments.paper import (
    figure_1_to_3_maxsd_sweep,
    figure_4_to_6_heatmaps,
    figure_7_daily_series,
    figure_8_runtime_models,
    figure_9_real_run,
    table_1_workloads,
    table_2_application_mix,
)
from repro.experiments.runner import run_workload
from repro.experiments.scenario import (
    BUILTIN_SCENARIOS,
    ScenarioError,
    builtin_scenario,
    load_spec,
    render_report,
)
from repro.experiments.sweep import (
    ExecutorError,
    MergeExecutor,
    ShardedExecutor,
    SweepRunner,
)
from repro.store import (
    StoreError,
    gc,
    mirror,
    open_store,
    parse_age,
    prune,
    repair,
    verify,
)
from repro.telemetry import LOG_LEVELS, TraceError, setup_logging
from repro.workloads.presets import build_workload
from repro.workloads.swf import read_swf, summarize_swf


def _parse_maxsd(value: str):
    if value.lower() in ("dynamic", "dynavgsd", "dyn"):
        return "dynamic"
    if value.lower() in ("inf", "infinite", "infinity"):
        return math.inf
    return float(value)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", type=int, default=1, choices=[1, 2, 3, 4, 5],
        help="paper workload id (Table 1)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="fraction of the full workload/system size (1.0 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=None, help="workload generation seed")
    parser.add_argument(
        "--swf", type=str, default=None,
        help="path to a real SWF log to use instead of the synthetic workload",
    )


def _load_workload(args: argparse.Namespace):
    if getattr(args, "swf", None):
        return read_swf(args.swf)
    return build_workload(args.workload, scale=args.scale, seed=args.seed)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def _parse_shard_arg(value: str):
    try:
        return parse_shard(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="sweep worker processes; an explicit value always beats "
             "REPRO_SWEEP_WORKERS (default: the env var or the CPU count)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="on-disk sweep result cache; 'auto' selects the XDG cache dir "
             "(default: caching disabled)",
    )
    parser.add_argument(
        "--store", type=str, default=None, metavar="URL",
        help="result-store backend URL (file://…, memory://…, "
             "s3+http(s)://host/prefix); REPRO_STORE_URL applies when "
             "neither --store nor --cache-dir is given",
    )
    parser.add_argument(
        "--shard", type=_parse_shard_arg, default=None, metavar="I/N",
        help="run only shard I of N (1-based) of the expanded sweep tasks and "
             "record a resumable manifest; requires --cache-dir or --store",
    )
    parser.add_argument(
        "--manifest", type=str, default=None, metavar="DIR",
        help="local shard manifest directory override "
             "(default: the manifests/ namespace of the store)",
    )
    parser.add_argument(
        "--analytics", action="store_true",
        help="persist per-job records to the store alongside each run's "
             "aggregates, for 'repro-sdpolicy query'; requires --cache-dir "
             "or --store",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record scheduler decision traces and publish them to the "
             "store under <cache_key>-trace, for 'repro-sdpolicy trace'; "
             "requires --cache-dir or --store",
    )


def _make_runner(
    args: argparse.Namespace, progress: bool = False, merge: bool = False
) -> SweepRunner:
    callback = None
    if progress:
        def callback(done, total, entry):  # noqa: ANN001 - argparse-local helper
            origin = "cache" if entry.from_cache else f"{entry.wall_clock_seconds:.1f}s"
            phases = getattr(entry, "phases", None)
            detail = ""
            if phases:
                detail = " [" + " ".join(
                    f"{name} {seconds:.2f}s" for name, seconds in phases.items()
                ) + "]"
            print(f"  [{done}/{total}] {entry.key} ({origin}){detail}", file=sys.stderr)
    cache_dir = getattr(args, "cache_dir", None)
    store = getattr(args, "store", None)
    shard = getattr(args, "shard", None)
    manifest = getattr(args, "manifest", None)
    if store and cache_dir:
        print(
            "error: --store and --cache-dir are mutually exclusive "
            "(--cache-dir PATH is shorthand for --store file://PATH)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    has_store = bool(store or cache_dir or os.environ.get("REPRO_STORE_URL"))
    analytics = bool(getattr(args, "analytics", False))
    if analytics and not has_store:
        print(
            "error: --analytics needs a result store to publish per-job "
            "records (--cache-dir or --store)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    trace = bool(getattr(args, "trace", False))
    if trace and not has_store:
        print(
            "error: --trace needs a result store to publish decision traces "
            "(--cache-dir or --store)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    executor = None
    if merge:
        if shard is not None:
            print("error: --shard cannot be combined with merge", file=sys.stderr)
            raise SystemExit(2)
        if not has_store:
            print(
                "error: merging a sharded sweep requires a result store "
                "(--cache-dir or --store)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        executor = MergeExecutor(manifest_dir=manifest)
    elif shard is not None:
        if not has_store:
            print(
                "error: --shard requires a result store (--cache-dir or --store; "
                "the store carries results between shard invocations)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        executor = ShardedExecutor(
            shard[0], shard[1], manifest_dir=manifest,
            max_workers=getattr(args, "workers", None),
        )
    return SweepRunner(
        max_workers=getattr(args, "workers", None),
        cache_dir=cache_dir,
        store=store,
        progress=callback,
        executor=executor,
        analytics=analytics,
        trace=trace,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    kwargs = {}
    if args.policy in ("sd_policy", "ub_policy"):
        # Only the malleable policies take the SD-Policy family knobs.
        kwargs["max_slowdown"] = _parse_maxsd(args.maxsd)
        kwargs["sharing_factor"] = args.sharing_factor
    run = run_workload(
        workload,
        args.policy,
        runtime_model=args.runtime_model,
        retain_jobs=args.retain_jobs,
        profiles=args.profiles,
        **kwargs,
    )
    print(metrics_table({run.label: run.metrics}, title=f"{workload.name} ({len(workload)} jobs)"))
    print(f"wall-clock: {run.wall_clock_seconds:.1f}s  scheduler stats: {run.scheduler_stats}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import improvement_percent

    workload = _load_workload(args)
    static = run_workload(
        workload, "static_backfill", runtime_model=args.runtime_model,
        retain_jobs=args.retain_jobs,
    )
    sd = run_workload(
        workload,
        "sd_policy",
        runtime_model=args.runtime_model,
        retain_jobs=args.retain_jobs,
        max_slowdown=_parse_maxsd(args.maxsd),
        sharing_factor=args.sharing_factor,
    )
    print(metrics_table({"static_backfill": static.metrics, sd.label: sd.metrics},
                        title=f"{workload.name} ({len(workload)} jobs)"))
    improvements = improvement_percent(sd.metrics, static.metrics)
    print("\nImprovement of SD-Policy over static backfill (%):")
    for key, value in improvements.items():
        print(f"  {key:20s} {value:+7.1f}%")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    merge = args.mode == "merge"
    runner = _make_runner(args, progress=not merge, merge=merge)
    result = figure_1_to_3_maxsd_sweep(
        workload,
        sharing_factor=args.sharing_factor,
        runtime_model=args.runtime_model,
        runner=runner,
    )
    print(result.text)
    if not result.complete:
        return 0
    sweep_seconds = result.data.get("sweep_wall_clock_seconds")
    cache_hits = result.data.get("sweep_cache_hits", 0)
    workers = result.data.get("sweep_workers", 1)
    if sweep_seconds is not None:
        print(
            f"\nsweep wall-clock: {sweep_seconds:.1f}s  workers: {workers}  "
            f"cache hits: {cache_hits}",
            file=sys.stderr,
        )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.table == 1:
        print(table_1_workloads(scale=args.scale, runner=_make_runner(args)).text)
    else:
        print(table_2_application_mix(scale=args.scale, runner=_make_runner(args)).text)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    figure = args.figure
    runner = _make_runner(args)
    if figure in (1, 2, 3):
        workload = _load_workload(args)
        result = figure_1_to_3_maxsd_sweep(workload, runner=runner)
    elif figure in (4, 5, 6):
        workload = _load_workload(args)
        result = figure_4_to_6_heatmaps(
            workload, max_slowdown=_parse_maxsd(args.maxsd), runner=runner
        )
    elif figure == 7:
        workload = _load_workload(args)
        result = figure_7_daily_series(
            workload, max_slowdown=_parse_maxsd(args.maxsd), runner=runner
        )
    elif figure == 8:
        workloads = {
            f"workload{wid}": build_workload(wid, scale=args.scale, seed=args.seed)
            for wid in (1, 2, 3, 4)
        }
        result = figure_8_runtime_models(workloads, runner=runner)
    elif figure == 9:
        if args.swf or args.workload != 1:
            print(
                "warning: figure 9 always replays the real-run workload 5; "
                "--workload/--swf are ignored (use --scale/--seed to vary it)",
                file=sys.stderr,
            )
        result = figure_9_real_run(
            scale=args.scale,
            seed=args.seed if args.seed is not None else 5005,
            runner=runner,
        )
    else:
        print(f"unknown figure {figure}", file=sys.stderr)
        return 2
    print(result.text)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.list or not args.spec:
        print("built-in scenarios:")
        for name in sorted(BUILTIN_SCENARIOS):
            print(f"  {name:12s} {builtin_scenario(name).description}")
        if not args.spec and not args.list:
            print("\nusage: repro-sdpolicy scenario <spec.json | builtin name>",
                  file=sys.stderr)
            return 2
        return 0
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        if os.path.exists(args.spec):
            spec = load_spec(args.spec)
            if overrides:
                print(
                    "note: --scale/--seed only apply to built-in scenarios; "
                    "spec files define their own workload refs",
                    file=sys.stderr,
                )
        elif args.spec in BUILTIN_SCENARIOS:
            spec = builtin_scenario(args.spec, **overrides)
        else:
            print(
                f"error: {args.spec!r} is neither a spec file nor a built-in "
                f"scenario (available: {', '.join(sorted(BUILTIN_SCENARIOS))})",
                file=sys.stderr,
            )
            return 2
    except (ScenarioError, ValueError, OSError) as exc:
        # ValueError covers malformed JSON / wrong-typed scalar fields.
        print(f"error: invalid scenario spec {args.spec!r}: {exc}", file=sys.stderr)
        return 2
    try:
        outcome = spec.execute(runner=_make_runner(args, progress=True))
        report = render_report(outcome) if outcome.complete else None
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if report is None:
        sweep = outcome.sweep
        print(
            f"scenario {spec.name}: shard run finished — {len(sweep)}/"
            f"{sweep.total_tasks} sweep tasks complete."
        )
        print(
            "run the remaining shards with the same --cache-dir, then re-run "
            "without --shard to render the report",
            file=sys.stderr,
        )
        return 0
    print(report)
    if outcome.sweep is not None:
        print(
            f"\nscenario {spec.name}: {len(outcome.sweep)} runs  "
            f"wall-clock: {outcome.sweep_wall_clock_seconds:.1f}s  "
            f"workers: {outcome.sweep_workers}  "
            f"cache hits: {outcome.sweep_cache_hits}",
            file=sys.stderr,
        )
    return 0


def _human_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{int(size)} B"  # pragma: no cover - unreachable


def _open_cli_store(url: Optional[str]):
    """Open a store for the ``store`` subcommands (REPRO_STORE_URL fallback)."""
    url = url or os.environ.get("REPRO_STORE_URL")
    if not url:
        print(
            "error: give a store URL (file://…, memory://…, s3+http(s)://…) "
            "or set REPRO_STORE_URL",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return open_store(url)


def _cmd_store_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import InstrumentedStore

    store = InstrumentedStore(_open_cli_store(args.url))
    stats = store.stats()
    print(f"store:       {store.url}")
    print(f"blobs:       {stats.blobs} ({_human_bytes(stats.blob_bytes)})")
    print(f"manifests:   {stats.manifests} ({_human_bytes(stats.manifest_bytes)})")
    print(f"quarantined: {stats.quarantined}")
    snapshot = store.snapshot()
    counters = snapshot["counters"]
    print(
        f"requests:    {counters.get('requests', 0)} "
        f"({_human_bytes(counters.get('bytes_read', 0))} read, "
        f"{counters.get('retries', 0)} retries)"
    )
    for op, timer in snapshot["timers"].items():
        print(
            f"latency:     {op} p50 {timer['p50'] * 1000:.1f}ms  "
            f"p95 {timer['p95'] * 1000:.1f}ms  p99 {timer['p99'] * 1000:.1f}ms  "
            f"max {timer['max'] * 1000:.1f}ms  (n={timer['count']})"
        )
    if stats.unknown_size:
        print(
            f"note: {stats.unknown_size} object(s) reported no size; "
            "byte totals are a lower bound",
            file=sys.stderr,
        )
    return 0


def _cmd_store_prune(args: argparse.Namespace) -> int:
    try:
        age = parse_age(args.older_than)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = _open_cli_store(args.url)
    stats = prune(store, age, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{store.url}: {verb} {stats.blobs_removed} blob(s) "
        f"({_human_bytes(stats.blob_bytes_freed)}) and "
        f"{stats.quarantined_removed} quarantined entr"
        f"{'y' if stats.quarantined_removed == 1 else 'ies'}; "
        f"kept {stats.kept}"
        + (
            f", kept {stats.kept_referenced} manifest-referenced"
            if stats.kept_referenced
            else ""
        )
        + (f", skipped {stats.unknown_age} of unknown age" if stats.unknown_age else "")
    )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    try:
        grace = parse_age(args.grace)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = _open_cli_store(args.url)
    stats = gc(store, grace_seconds=grace, dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    print(
        f"{store.url}: {verb} {stats.blobs_deleted} unreferenced blob(s) "
        f"({_human_bytes(stats.blob_bytes_freed)}) and {stats.temp_deleted} "
        f"stale temp file(s); kept {stats.kept_referenced} referenced by "
        f"{stats.manifests_walked} shard manifest(s), "
        f"{stats.kept_young} within the grace period"
        + (f", skipped {stats.unknown_age} of unknown age" if stats.unknown_age else "")
    )
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    import json as _json

    store = _open_cli_store(args.url)
    report = verify(store, dry_run=args.dry_run)
    if args.json:
        print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"store:    {store.url}")
        print(f"checked:  {report.checked} blob(s)")
        print(f"ok:       {report.ok}")
        print(f"legacy:   {report.legacy} (pre-envelope, no digest to verify)")
        print(f"corrupt:  {len(report.corrupt)}")
        for entry in report.corrupt:
            action = "would quarantine" if args.dry_run else "quarantined"
            print(f"  {action} {entry['key']}: {entry['error']}")
        for entry in report.drift:
            print(
                f"warning: {entry['key']} verifies but differs from the digest "
                f"its shard manifest recorded (manifest {entry['manifest'][:12]}…, "
                f"blob {entry['blob'][:12]}…) — recomputed, or replaced?",
                file=sys.stderr,
            )
        for key in report.missing_referenced:
            print(
                f"warning: manifest-referenced blob {key} is missing "
                "(pruned store, or wrong URL?)",
                file=sys.stderr,
            )
    return 0 if report.clean else 1


def _cmd_store_repair(args: argparse.Namespace) -> int:
    store = _open_cli_store(args.url)
    source = open_store(args.source)
    stats = repair(store, source, dry_run=args.dry_run)
    verb = "would repair" if args.dry_run else "repaired"
    print(
        f"{store.url}: {verb} {stats.repaired} quarantined blob(s) from "
        f"{source.url}; {stats.missing_in_source} missing in the mirror, "
        f"{stats.still_corrupt} corrupt there too"
    )
    return 0 if stats.missing_in_source == 0 and stats.still_corrupt == 0 else 1


def _cmd_store_mirror(args: argparse.Namespace) -> int:
    source = _open_cli_store(args.source)
    target = _open_cli_store(args.dest)
    stats = mirror(source, target, overwrite=args.overwrite)
    print(
        f"{source.url} -> {target.url}: copied {stats.blobs_copied} blob(s) "
        f"({_human_bytes(stats.blob_bytes_copied)}), skipped "
        f"{stats.blobs_skipped} already present, "
        f"{stats.manifests_copied} manifest(s)"
        + (
            f", {stats.quarantined_copied} quarantined entr"
            f"{'y' if stats.quarantined_copied == 1 else 'ies'}"
            if stats.quarantined_copied
            else ""
        )
    )
    return 0


def _cmd_store_serve(args: argparse.Namespace) -> int:
    from repro.store.fake import ObjectStoreServer

    try:
        server = ObjectStoreServer(host=args.host, port=args.port, verbose=args.verbose)
    except OSError as exc:  # port in use, unresolvable host…
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(
        f"serving object store on {server.store_url()} "
        "(in-memory, unauthenticated — testing/CI only; Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.analytics.query import (
        QueryError,
        list_runs,
        parse_metrics,
        parse_where,
        render_stored_report,
        run_query,
    )
    from repro.analytics.store import AnalyticsError
    from repro.store import resolve_store

    if args.store and args.cache_dir:
        print(
            "error: --store and --cache-dir are mutually exclusive "
            "(--cache-dir PATH is shorthand for --store file://PATH)",
            file=sys.stderr,
        )
        return 2
    store = resolve_store(args.store, args.cache_dir)
    if store is None:
        print(
            "error: query reads a result store; give --cache-dir or --store "
            "(or set REPRO_STORE_URL)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.phases:
            from repro.telemetry.report import phase_report

            print(phase_report(store))
            return 0
        if args.list:
            print(list_runs(store))
            return 0
        if args.report:
            workload = None
            if args.report != "table1":
                workload = _load_workload(args)
            print(
                render_stored_report(
                    store,
                    args.report,
                    workload=workload,
                    scale=args.scale,
                    seed=args.seed,
                    sharing_factor=args.sharing_factor,
                    runtime_model=args.runtime_model,
                    max_slowdown=_parse_maxsd(args.maxsd),
                )
            )
            return 0
        print(
            run_query(
                store,
                where=parse_where(args.where),
                group_by=args.group_by,
                metrics=parse_metrics(args.metrics),
            )
        )
        return 0
    except (QueryError, AnalyticsError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.store import resolve_store
    from repro.telemetry.report import trace_grep, trace_summary, trace_timeline

    if args.store and args.cache_dir:
        print(
            "error: --store and --cache-dir are mutually exclusive "
            "(--cache-dir PATH is shorthand for --store file://PATH)",
            file=sys.stderr,
        )
        return 2
    store = resolve_store(args.store, args.cache_dir)
    if store is None:
        print(
            "error: trace reads a result store; give --cache-dir or --store "
            "(or set REPRO_STORE_URL)",
            file=sys.stderr,
        )
        return 2
    if args.trace_command == "summary":
        print(trace_summary(store, key_prefix=args.key))
    elif args.trace_command == "grep":
        output = trace_grep(
            store,
            pattern=args.pattern,
            event=args.event,
            job=args.job,
            key_prefix=args.key,
        )
        if output:
            print(output)
    else:
        print(trace_timeline(store, job=args.job, key_prefix=args.key))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return lint_cli.run(
        paths=args.paths,
        rules=args.rules,
        as_json=args.json,
        list_rules=args.list_rules,
        show_suppressed=args.show_suppressed,
    )


def _cmd_swf(args: argparse.Namespace) -> int:
    # One streaming pass: same output as read_swf().describe(), without
    # materialising the record list (100k-line logs inspect in ~1.6 MiB).
    for key, value in summarize_swf(args.path, max_jobs=args.max_jobs).items():
        print(f"{key:20s} {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sdpolicy",
        description="SD-Policy (ICPP 2019) reproduction: simulate, compare, regenerate figures.",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default=None,
        help="stderr logging verbosity for repro.* loggers "
             "(default: REPRO_LOG_LEVEL or 'warning')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload under one policy")
    _add_workload_args(p_run)
    p_run.add_argument("--policy", default="sd_policy",
                       choices=list(available_policies()),
                       help="co-scheduling policy (the registered policy family)")
    p_run.add_argument("--runtime-model", default="ideal",
                       choices=["ideal", "worst_case", "application_aware"])
    p_run.add_argument("--maxsd", default="dynamic", help="MAX_SLOWDOWN: number, 'inf' or 'dynamic'")
    p_run.add_argument("--sharing-factor", type=float, default=0.5)
    p_run.add_argument(
        "--profiles", default=None, choices=list(PROFILE_SET_NAMES),
        help="application-profile set for profile-aware policies (UB-Policy) "
             "and the application-aware runtime model",
    )
    p_run.add_argument(
        "--retain-jobs", action=argparse.BooleanOptionalAction, default=True,
        help="keep per-job records (default); --no-retain-jobs streams the run "
             "in near-constant memory (aggregates only)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare SD-Policy against static backfill")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--runtime-model", default="ideal", choices=["ideal", "worst_case"])
    p_cmp.add_argument("--maxsd", default="dynamic")
    p_cmp.add_argument("--sharing-factor", type=float, default=0.5)
    p_cmp.add_argument(
        "--retain-jobs", action=argparse.BooleanOptionalAction, default=True,
        help="keep per-job records (default); --no-retain-jobs streams both "
             "runs in near-constant memory (aggregates only)",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="run the MAX_SLOWDOWN sweep (figures 1-3) in parallel"
    )
    p_sweep.add_argument(
        "mode", nargs="?", choices=["run", "merge"], default="run",
        help="'run' executes the sweep (optionally one --shard of it); "
             "'merge' validates the shard manifests and renders the full "
             "result from the cache",
    )
    _add_workload_args(p_sweep)
    _add_sweep_args(p_sweep)
    p_sweep.add_argument("--runtime-model", default="ideal", choices=["ideal", "worst_case"])
    p_sweep.add_argument("--sharing-factor", type=float, default=0.5)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_sc = sub.add_parser(
        "scenario",
        help="run a declarative scenario spec (JSON file or built-in name)",
    )
    p_sc.add_argument(
        "spec", nargs="?", default=None,
        help="path to a scenario spec JSON file, or a built-in scenario name",
    )
    p_sc.add_argument(
        "--list", action="store_true", help="list the built-in scenarios and exit"
    )
    p_sc.add_argument(
        "--scale", type=float, default=None,
        help="workload scale override for built-in scenarios (1.0 = paper scale)",
    )
    p_sc.add_argument(
        "--seed", type=int, default=None,
        help="workload seed override for built-in scenarios",
    )
    _add_sweep_args(p_sc)
    p_sc.set_defaults(func=_cmd_scenario)

    p_tab = sub.add_parser("table", help="regenerate Table 1 or Table 2")
    p_tab.add_argument("table", type=int, choices=[1, 2])
    p_tab.add_argument("--scale", type=float, default=0.05)
    _add_sweep_args(p_tab)
    p_tab.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate a figure (1-9)")
    p_fig.add_argument("figure", type=int, choices=range(1, 10))
    _add_workload_args(p_fig)
    p_fig.add_argument("--maxsd", default="10")
    _add_sweep_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_store = sub.add_parser(
        "store",
        help="inspect/manage result stores (stats, prune, gc, verify, "
             "repair, push/pull, serve)",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_st_stats = store_sub.add_parser(
        "stats", help="blob/manifest counts and sizes of a store"
    )
    p_st_stats.add_argument(
        "url", nargs="?", default=None,
        help="store URL (default: REPRO_STORE_URL)",
    )
    p_st_stats.set_defaults(func=_cmd_store_stats)

    p_st_prune = store_sub.add_parser(
        "prune",
        help="delete blobs older than a cutoff (quarantined entries always go)",
    )
    p_st_prune.add_argument("url", nargs="?", default=None,
                            help="store URL (default: REPRO_STORE_URL)")
    p_st_prune.add_argument(
        "--older-than", required=True, metavar="AGE",
        help="age cutoff: 90s, 45m, 12h, 30d, 2w (a bare number means days)",
    )
    p_st_prune.add_argument("--dry-run", action="store_true",
                            help="report what would be removed, delete nothing")
    p_st_prune.set_defaults(func=_cmd_store_prune)

    p_st_gc = store_sub.add_parser(
        "gc",
        help="delete blobs no shard manifest references (plus stale *.tmp "
             "debris); referenced blobs are never deleted",
    )
    p_st_gc.add_argument("url", nargs="?", default=None,
                         help="store URL (default: REPRO_STORE_URL)")
    p_st_gc.add_argument(
        "--grace", default="1h", metavar="AGE",
        help="age floor: unreferenced blobs younger than this are kept "
             "(default: 1h; 90s, 45m, 12h, 30d — a bare number means days)",
    )
    p_st_gc.add_argument("--dry-run", action="store_true",
                         help="report what would be deleted, delete nothing")
    p_st_gc.set_defaults(func=_cmd_store_gc)

    p_st_verify = store_sub.add_parser(
        "verify",
        help="re-hash every blob against its integrity envelope, "
             "quarantining mismatches (exit 1 when any are found)",
    )
    p_st_verify.add_argument("url", nargs="?", default=None,
                             help="store URL (default: REPRO_STORE_URL)")
    p_st_verify.add_argument("--json", action="store_true",
                             help="emit the machine-readable report as JSON")
    p_st_verify.add_argument("--dry-run", action="store_true",
                             help="report mismatches without quarantining them")
    p_st_verify.set_defaults(func=_cmd_store_verify)

    p_st_repair = store_sub.add_parser(
        "repair",
        help="re-fetch quarantined blobs from a mirror store and republish "
             "the ones that verify",
    )
    p_st_repair.add_argument("url", nargs="?", default=None,
                             help="store URL to repair (default: REPRO_STORE_URL)")
    p_st_repair.add_argument(
        "--from", dest="source", required=True, metavar="URL",
        help="mirror store to re-fetch good copies from",
    )
    p_st_repair.add_argument("--dry-run", action="store_true",
                             help="report what would be repaired, change nothing")
    p_st_repair.set_defaults(func=_cmd_store_repair)

    p_st_push = store_sub.add_parser(
        "push", help="mirror a local cache into a (remote) store"
    )
    p_st_push.add_argument("source", help="local cache dir or store URL to copy from")
    p_st_push.add_argument("dest", help="store URL to copy into")
    p_st_push.add_argument("--overwrite", action="store_true",
                           help="re-copy blobs already present in the target")
    p_st_push.set_defaults(func=_cmd_store_mirror)

    p_st_pull = store_sub.add_parser(
        "pull", help="mirror a (remote) store into a local cache"
    )
    p_st_pull.add_argument("source", help="store URL to copy from")
    p_st_pull.add_argument("dest", help="local cache dir or store URL to copy into")
    p_st_pull.add_argument("--overwrite", action="store_true",
                           help="re-copy blobs already present in the target")
    p_st_pull.set_defaults(func=_cmd_store_mirror)

    p_st_serve = store_sub.add_parser(
        "serve",
        help="run the in-process S3-compatible object endpoint (testing/CI)",
    )
    p_st_serve.add_argument("--host", default="127.0.0.1")
    p_st_serve.add_argument("--port", type=int, default=9317)
    p_st_serve.add_argument("--verbose", action="store_true",
                            help="log every request to stderr")
    p_st_serve.set_defaults(func=_cmd_store_serve)

    p_trace = sub.add_parser(
        "trace",
        help="inspect stored scheduler decision traces (--trace sweeps): "
             "summary, grep, timeline",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    def _add_trace_store_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--cache-dir", type=str, default=None,
            help="result store to read, as a local cache dir ('auto' = XDG dir)",
        )
        sub_parser.add_argument(
            "--store", type=str, default=None, metavar="URL",
            help="result store to read, as a URL (file://…, memory://…, "
                 "s3+http(s)://…); REPRO_STORE_URL applies when neither "
                 "--store nor --cache-dir is given",
        )
        sub_parser.add_argument(
            "--key", type=str, default=None, metavar="PREFIX",
            help="only traces whose cache key starts with PREFIX",
        )

    p_tr_summary = trace_sub.add_parser(
        "summary",
        help="per-policy decision counts and phase-timer breakdown "
             "(every blob envelope-verified)",
    )
    _add_trace_store_args(p_tr_summary)
    p_tr_summary.set_defaults(func=_cmd_trace)

    p_tr_grep = trace_sub.add_parser(
        "grep", help="print matching raw JSONL trace events (pipe into jq)"
    )
    p_tr_grep.add_argument(
        "pattern", nargs="?", default=None,
        help="regex matched against each canonical JSON event line",
    )
    p_tr_grep.add_argument(
        "--event", type=str, default=None,
        help="only events of this type (job_submit, mate_selected, …)",
    )
    p_tr_grep.add_argument(
        "--job", type=int, default=None,
        help="only events mentioning this job id (as job, guest, or mate)",
    )
    _add_trace_store_args(p_tr_grep)
    p_tr_grep.set_defaults(func=_cmd_trace)

    p_tr_timeline = trace_sub.add_parser(
        "timeline",
        help="human chronology of a stored run; --job N answers 'why did "
             "SD-Policy pair these two jobs'",
    )
    p_tr_timeline.add_argument(
        "--job", type=int, default=None,
        help="collapse to the decisions that touched this job id",
    )
    _add_trace_store_args(p_tr_timeline)
    p_tr_timeline.set_defaults(func=_cmd_trace)

    p_query = sub.add_parser(
        "query",
        help="filter/group/aggregate persisted per-job records across every "
             "sweep in a store, or regenerate figures/tables from them",
    )
    _add_workload_args(p_query)
    p_query.add_argument(
        "--cache-dir", type=str, default=None,
        help="result store to query, as a local cache dir ('auto' = XDG dir)",
    )
    p_query.add_argument(
        "--store", type=str, default=None, metavar="URL",
        help="result store to query, as a URL (file://…, memory://…, "
             "s3+http(s)://…); REPRO_STORE_URL applies when neither "
             "--store nor --cache-dir is given",
    )
    p_query.add_argument(
        "--list", action="store_true",
        help="list every analytics run in the store and exit",
    )
    p_query.add_argument(
        "--phases", action="store_true",
        help="print the per-run phase-timer table from stored trace "
             "manifests (--trace sweeps) and exit",
    )
    p_query.add_argument(
        "--where", action="append", default=[], metavar="FIELD=VALUE",
        help="filter clause, repeatable; run-level fields (workload, policy, "
             "label, seed, task_key) select runs, record columns (slowdown, "
             "malleable, …) select job rows",
    )
    p_query.add_argument(
        "--group-by", type=str, default=None, metavar="FIELD",
        help="group the aggregation by a run-level field or a record column",
    )
    p_query.add_argument(
        "--metrics", type=str, default="slowdown:mean,slowdown:p95",
        metavar="COL:AGG,...",
        help="aggregations to compute (aggs: mean, median, p50, p95, p99, "
             "min, max, count); default: slowdown:mean,slowdown:p95",
    )
    p_query.add_argument(
        "--report", type=str, default=None,
        choices=["fig1", "fig2", "fig3", "fig1-3", "fig7", "table1"],
        help="regenerate a paper figure/table from stored records alone "
             "(no simulation); output is byte-identical to the sweep-"
             "rendered version",
    )
    p_query.add_argument("--maxsd", default="10",
                         help="MAX_SLOWDOWN for --report fig7")
    p_query.add_argument("--sharing-factor", type=float, default=0.5)
    p_query.add_argument("--runtime-model", default="ideal",
                         choices=["ideal", "worst_case"])
    p_query.set_defaults(func=_cmd_query)

    p_lint = sub.add_parser(
        "lint",
        help="run the repro-lint static-analysis pass (determinism, store "
             "discipline, exception discipline) over source paths",
    )
    lint_cli.add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_swf = sub.add_parser("swf", help="inspect a Standard Workload Format log")
    p_swf.add_argument("path")
    p_swf.add_argument("--max-jobs", type=int, default=None)
    p_swf.set_defaults(func=_cmd_swf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-sdpolicy`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(args.log_level)
    try:
        return args.func(args)
    except BrokenPipeError:
        # The downstream consumer (head, less, …) closed the pipe: not an
        # error.  Point stdout at devnull so the interpreter's shutdown
        # flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ExecutorError, StoreError, TraceError) as exc:
        # Sharded-execution / result-store / stored-trace problems (missing
        # cache dir, bad store URL, unreachable endpoint, incomplete shard
        # manifests, no traces recorded) are user-fixable: no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
