"""Command-line driver.

Provides a small set of subcommands to run the paper's experiments from the
shell (installed as ``repro-sdpolicy`` or via ``python -m repro``):

* ``run`` — simulate one workload under one policy and print the metrics;
* ``compare`` — run static backfill and SD-Policy on a workload and print
  the normalised comparison;
* ``sweep`` — run the MAX_SLOWDOWN sweep (Figures 1-3) through the parallel
  sweep runner, with ``--workers`` and an optional on-disk result cache;
* ``table1`` / ``table2`` — regenerate the paper's tables;
* ``figure`` — regenerate a figure by number (1–9; 1/2/3 and 4/5/6 are
  grouped as in the paper);
* ``swf`` — inspect a Standard Workload Format file.

Example::

    repro-sdpolicy figure 3 --workload 3 --scale 0.05
    repro-sdpolicy compare --workload 1 --scale 0.05 --maxsd 10
    repro-sdpolicy sweep --workload 1 --scale 0.04 --workers 4 --cache-dir auto
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional, Sequence

from repro.analysis.tables import metrics_table
from repro.experiments.paper import (
    figure_1_to_3_maxsd_sweep,
    figure_4_to_6_heatmaps,
    figure_7_daily_series,
    figure_8_runtime_models,
    figure_9_real_run,
    table_1_workloads,
    table_2_application_mix,
)
from repro.experiments.runner import run_workload
from repro.experiments.sweep import SweepRunner
from repro.workloads.presets import build_workload
from repro.workloads.swf import read_swf


def _parse_maxsd(value: str):
    if value.lower() in ("dynamic", "dynavgsd", "dyn"):
        return "dynamic"
    if value.lower() in ("inf", "infinite", "infinity"):
        return math.inf
    return float(value)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", type=int, default=1, choices=[1, 2, 3, 4, 5],
        help="paper workload id (Table 1)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="fraction of the full workload/system size (1.0 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=None, help="workload generation seed")
    parser.add_argument(
        "--swf", type=str, default=None,
        help="path to a real SWF log to use instead of the synthetic workload",
    )


def _load_workload(args: argparse.Namespace):
    if getattr(args, "swf", None):
        return read_swf(args.swf)
    return build_workload(args.workload, scale=args.scale, seed=args.seed)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="sweep worker processes (default: REPRO_SWEEP_WORKERS or the CPU count)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="on-disk sweep result cache; 'auto' selects ~/.cache/repro/sweeps "
             "(default: caching disabled)",
    )


def _make_runner(args: argparse.Namespace, progress: bool = False) -> SweepRunner:
    callback = None
    if progress:
        def callback(done, total, entry):  # noqa: ANN001 - argparse-local helper
            origin = "cache" if entry.from_cache else f"{entry.wall_clock_seconds:.1f}s"
            print(f"  [{done}/{total}] {entry.key} ({origin})", file=sys.stderr)
    return SweepRunner(
        max_workers=getattr(args, "workers", None),
        cache_dir=getattr(args, "cache_dir", None),
        progress=callback,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    run = run_workload(
        workload,
        args.policy,
        runtime_model=args.runtime_model,
        max_slowdown=_parse_maxsd(args.maxsd),
        sharing_factor=args.sharing_factor,
    ) if args.policy.startswith("sd") else run_workload(
        workload, args.policy, runtime_model=args.runtime_model
    )
    print(metrics_table({run.label: run.metrics}, title=f"{workload.name} ({len(workload)} jobs)"))
    print(f"wall-clock: {run.wall_clock_seconds:.1f}s  scheduler stats: {run.scheduler_stats}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import improvement_percent

    workload = _load_workload(args)
    static = run_workload(workload, "static_backfill", runtime_model=args.runtime_model)
    sd = run_workload(
        workload,
        "sd_policy",
        runtime_model=args.runtime_model,
        max_slowdown=_parse_maxsd(args.maxsd),
        sharing_factor=args.sharing_factor,
    )
    print(metrics_table({"static_backfill": static.metrics, sd.label: sd.metrics},
                        title=f"{workload.name} ({len(workload)} jobs)"))
    improvements = improvement_percent(sd.metrics, static.metrics)
    print("\nImprovement of SD-Policy over static backfill (%):")
    for key, value in improvements.items():
        print(f"  {key:20s} {value:+7.1f}%")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload = _load_workload(args)
    runner = _make_runner(args, progress=True)
    result = figure_1_to_3_maxsd_sweep(
        workload,
        sharing_factor=args.sharing_factor,
        runtime_model=args.runtime_model,
        runner=runner,
    )
    print(result.text)
    sweep_seconds = result.data.get("sweep_wall_clock_seconds")
    cache_hits = result.data.get("sweep_cache_hits", 0)
    workers = result.data.get("sweep_workers", 1)
    if sweep_seconds is not None:
        print(
            f"\nsweep wall-clock: {sweep_seconds:.1f}s  workers: {workers}  "
            f"cache hits: {cache_hits}",
            file=sys.stderr,
        )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.table == 1:
        print(table_1_workloads(scale=args.scale, runner=_make_runner(args)).text)
    else:
        print(table_2_application_mix(scale=args.scale).text)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    figure = args.figure
    if figure in (4, 5, 6, 7, 9) and (args.workers is not None or args.cache_dir):
        print(
            f"note: figure {figure} is not sweep-backed; "
            "--workers/--cache-dir only apply to figures 1-3 and 8",
            file=sys.stderr,
        )
    if figure in (1, 2, 3):
        workload = _load_workload(args)
        result = figure_1_to_3_maxsd_sweep(workload, runner=_make_runner(args))
    elif figure in (4, 5, 6):
        workload = _load_workload(args)
        result = figure_4_to_6_heatmaps(workload, max_slowdown=_parse_maxsd(args.maxsd))
    elif figure == 7:
        workload = _load_workload(args)
        result = figure_7_daily_series(workload, max_slowdown=_parse_maxsd(args.maxsd))
    elif figure == 8:
        workloads = {
            f"workload{wid}": build_workload(wid, scale=args.scale, seed=args.seed)
            for wid in (1, 2, 3, 4)
        }
        result = figure_8_runtime_models(workloads, runner=_make_runner(args))
    elif figure == 9:
        result = figure_9_real_run(scale=args.scale)
    else:
        print(f"unknown figure {figure}", file=sys.stderr)
        return 2
    print(result.text)
    return 0


def _cmd_swf(args: argparse.Namespace) -> int:
    workload = read_swf(args.path, max_jobs=args.max_jobs)
    for key, value in workload.describe().items():
        print(f"{key:20s} {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sdpolicy",
        description="SD-Policy (ICPP 2019) reproduction: simulate, compare, regenerate figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload under one policy")
    _add_workload_args(p_run)
    p_run.add_argument("--policy", default="sd_policy",
                       choices=["fcfs", "static_backfill", "sd_policy"])
    p_run.add_argument("--runtime-model", default="ideal", choices=["ideal", "worst_case"])
    p_run.add_argument("--maxsd", default="dynamic", help="MAX_SLOWDOWN: number, 'inf' or 'dynamic'")
    p_run.add_argument("--sharing-factor", type=float, default=0.5)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare SD-Policy against static backfill")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--runtime-model", default="ideal", choices=["ideal", "worst_case"])
    p_cmp.add_argument("--maxsd", default="dynamic")
    p_cmp.add_argument("--sharing-factor", type=float, default=0.5)
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="run the MAX_SLOWDOWN sweep (figures 1-3) in parallel"
    )
    _add_workload_args(p_sweep)
    _add_sweep_args(p_sweep)
    p_sweep.add_argument("--runtime-model", default="ideal", choices=["ideal", "worst_case"])
    p_sweep.add_argument("--sharing-factor", type=float, default=0.5)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_tab = sub.add_parser("table", help="regenerate Table 1 or Table 2")
    p_tab.add_argument("table", type=int, choices=[1, 2])
    p_tab.add_argument("--scale", type=float, default=0.05)
    _add_sweep_args(p_tab)
    p_tab.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate a figure (1-9)")
    p_fig.add_argument("figure", type=int, choices=range(1, 10))
    _add_workload_args(p_fig)
    p_fig.add_argument("--maxsd", default="10")
    _add_sweep_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_swf = sub.add_parser("swf", help="inspect a Standard Workload Format log")
    p_swf.add_argument("path")
    p_swf.add_argument("--max-jobs", type=int, default=None)
    p_swf.set_defaults(func=_cmd_swf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-sdpolicy`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
