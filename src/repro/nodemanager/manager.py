"""Node manager: the ``slurmd``/``slurmstepd`` logic of Listing 3.

One :class:`NodeManager` instance manages one compute node.  It keeps the
DROM registry and the per-job core assignments consistent with the
scheduler-level CPU counts:

* when a job is launched on the node (statically or as a co-scheduled
  guest), the manager recomputes the affinities of *all* jobs on the node —
  shrinking the owners through DROM and launching the new job's tasks on the
  freed cores;
* when a job ends, its cores are returned to their owner if the owner is
  still running, or redistributed to the remaining jobs otherwise;
* socket isolation and per-task balance are delegated to
  :func:`repro.nodemanager.affinity.distribute_cpus`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.nodemanager.affinity import CoreAssignment, distribute_cpus
from repro.nodemanager.drom import DromRegistry


class NodeManagerError(RuntimeError):
    """Raised on inconsistent node-manager operations."""


class NodeManager:
    """Per-node manager coordinating DROM masks and core assignments.

    Parameters
    ----------
    node_id:
        Identifier of the managed node (for error messages and reports).
    sockets / cores_per_socket:
        Node geometry.
    """

    def __init__(self, node_id: int, sockets: int = 2, cores_per_socket: int = 24) -> None:
        self.node_id = node_id
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        self.drom = DromRegistry(total_cpus=sockets * cores_per_socket)
        # job_id -> requested cpu count on this node (the scheduler's view).
        self._cpu_counts: Dict[int, int] = {}
        # job_id -> number of tasks (MPI ranks) of the job on this node.
        self._tasks: Dict[int, int] = {}
        # job_id -> current concrete core assignment.
        self.assignments: Dict[int, CoreAssignment] = {}

    # ------------------------------------------------------------------ #
    @property
    def total_cpus(self) -> int:
        """Total core count of the node."""
        return self.sockets * self.cores_per_socket

    @property
    def jobs(self) -> List[int]:
        """Jobs currently holding cores on the node."""
        return list(self._cpu_counts)

    def cpus_of(self, job_id: int) -> int:
        """Scheduler-level CPU count currently granted to a job."""
        return self._cpu_counts.get(job_id, 0)

    # ------------------------------------------------------------------ #
    # Listing 3: job launch
    # ------------------------------------------------------------------ #
    def launch_job(self, job_id: int, cpus: int, tasks: int = 1) -> CoreAssignment:
        """Launch a job on the node with ``cpus`` CPUs and ``tasks`` ranks.

        The existing jobs keep their CPU counts; the caller must first apply
        any shrink decided by the scheduler via :meth:`set_job_cpus`.
        """
        if job_id in self._cpu_counts:
            raise NodeManagerError(f"node {self.node_id}: job {job_id} already running here")
        if cpus <= 0 or tasks <= 0:
            raise NodeManagerError("cpus and tasks must be positive")
        used = sum(self._cpu_counts.values())
        if used + cpus > self.total_cpus:
            raise NodeManagerError(
                f"node {self.node_id}: launching job {job_id} with {cpus} cpus "
                f"exceeds capacity ({used} already in use of {self.total_cpus})"
            )
        self._cpu_counts[job_id] = cpus
        self._tasks[job_id] = tasks
        self._redistribute()
        # Register the new job's tasks in the DROM space with their masks.
        assignment = self.assignments[job_id]
        chunk = max(1, assignment.num_cores // tasks)
        cores = list(assignment.cores)
        for t in range(tasks):
            mask = cores[t * chunk : (t + 1) * chunk] or cores[-1:]
            self.drom.register(job_id, mask)
        return assignment

    def set_job_cpus(self, job_id: int, cpus: int) -> CoreAssignment:
        """Shrink or expand a job already running on the node."""
        if job_id not in self._cpu_counts:
            raise NodeManagerError(f"node {self.node_id}: job {job_id} not running here")
        if cpus <= 0:
            raise NodeManagerError("cpus must be positive")
        others = sum(c for j, c in self._cpu_counts.items() if j != job_id)
        if others + cpus > self.total_cpus:
            raise NodeManagerError(
                f"node {self.node_id}: resizing job {job_id} to {cpus} cpus exceeds capacity"
            )
        self._cpu_counts[job_id] = cpus
        self._redistribute()
        return self.assignments[job_id]

    # ------------------------------------------------------------------ #
    # Listing 3: job end
    # ------------------------------------------------------------------ #
    def end_job(self, job_id: int, redistribute: bool = True) -> None:
        """Remove a job from the node and hand its cores back.

        With ``redistribute=True`` (the paper's behaviour) the freed cores
        are given to the jobs remaining on the node, keeping them balanced;
        otherwise they are simply left idle.
        """
        if job_id not in self._cpu_counts:
            raise NodeManagerError(f"node {self.node_id}: job {job_id} not running here")
        freed = self._cpu_counts.pop(job_id)
        self._tasks.pop(job_id, None)
        self.assignments.pop(job_id, None)
        self.drom.clean_job(job_id)
        if redistribute and self._cpu_counts:
            share, remainder = divmod(freed, len(self._cpu_counts))
            for i, other in enumerate(sorted(self._cpu_counts)):
                self._cpu_counts[other] += share + (1 if i < remainder else 0)
        if self._cpu_counts:
            self._redistribute()

    # ------------------------------------------------------------------ #
    def _redistribute(self) -> None:
        """Recompute every job's core assignment and push masks via DROM."""
        self.assignments = distribute_cpus(
            self._cpu_counts, sockets=self.sockets, cores_per_socket=self.cores_per_socket
        )
        for job_id, assignment in self.assignments.items():
            if self.drom.processes_of(job_id):
                self.drom.set_job_mask(job_id, assignment.cores)

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check that assignments are disjoint and sizes match the counts."""
        seen: set = set()
        for job_id, assignment in self.assignments.items():
            if assignment.num_cores != self._cpu_counts[job_id]:
                raise AssertionError(
                    f"node {self.node_id}: job {job_id} assignment size "
                    f"{assignment.num_cores} != granted {self._cpu_counts[job_id]}"
                )
            overlap = seen.intersection(assignment.cores)
            if overlap:
                raise AssertionError(
                    f"node {self.node_id}: overlapping cores {sorted(overlap)}"
                )
            seen.update(assignment.cores)
        if self.drom.overlapping_masks():
            raise AssertionError(f"node {self.node_id}: overlapping DROM masks")
