"""Node-level resource management (the paper's DROM + task/affinity layer).

The scheduler decides *how many* CPUs of a node each job holds; this package
decides *which* CPUs, mirroring the paper's Section 3.3:

* :mod:`repro.nodemanager.drom` — an emulation of the DROM API: a per-node
  registry of processes with CPU masks that can be queried and changed at
  "malleability points";
* :mod:`repro.nodemanager.affinity` — the socket-aware CPU distribution
  algorithm that keeps co-scheduled jobs balanced and isolated on separate
  sockets;
* :mod:`repro.nodemanager.manager` — the node-manager logic of Listing 3:
  recompute affinities when a job starts or ends, return cores to their
  owner, or redistribute them when the owner already finished.
"""

from repro.nodemanager.affinity import CoreAssignment, distribute_cpus
from repro.nodemanager.drom import DromProcess, DromRegistry
from repro.nodemanager.manager import NodeManager

__all__ = [
    "CoreAssignment",
    "DromProcess",
    "DromRegistry",
    "NodeManager",
    "distribute_cpus",
]
