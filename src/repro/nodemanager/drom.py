"""Emulation of the DROM API (Dynamic Resource Ownership Management).

The real DROM library (D'Amico et al., ICPP'18) lets a resource manager talk
to running applications: processes register themselves in a shared "DROM
space", and the node manager can query the registered processes and change
their CPU masks; the application picks up the new mask at its next
malleability point.

For the reproduction we only need the bookkeeping semantics — which tasks
exist, which CPU mask each holds, and the attach/set-mask/clean life cycle —
because the performance effect of mask changes is already captured by the
runtime models.  The registry is nevertheless implemented faithfully enough
that the node manager (Listing 3) can be exercised and tested against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple


class DromError(RuntimeError):
    """Raised on invalid DROM operations (unknown pid, mask conflicts...)."""


@dataclass
class DromProcess:
    """One task registered in the DROM space of a node."""

    pid: int
    job_id: int
    cpu_mask: FrozenSet[int] = frozenset()
    #: Number of mask updates the process has observed (each corresponds to a
    #: malleability point at which the application adapted).
    mask_updates: int = 0

    @property
    def num_cpus(self) -> int:
        """Number of CPUs currently in the process mask."""
        return len(self.cpu_mask)


class DromRegistry:
    """The DROM space of a single node.

    Mirrors the API surface described in Section 2.1 of the paper:
    registering processes, listing the recorded processes, and getting /
    setting their CPU masks.
    """

    def __init__(self, total_cpus: int) -> None:
        if total_cpus <= 0:
            raise ValueError("total_cpus must be positive")
        self.total_cpus = total_cpus
        self._processes: Dict[int, DromProcess] = {}
        self._next_pid = 1

    # ------------------------------------------------------------------ #
    # DROM_register / DROM_clean
    # ------------------------------------------------------------------ #
    def register(self, job_id: int, cpu_mask: Iterable[int] = ()) -> DromProcess:
        """Attach a new task of ``job_id`` to the DROM space."""
        mask = frozenset(cpu_mask)
        self._validate_mask(mask)
        proc = DromProcess(pid=self._next_pid, job_id=job_id, cpu_mask=mask)
        self._next_pid += 1
        self._processes[proc.pid] = proc
        return proc

    def clean(self, pid: int) -> None:
        """Remove a task from the DROM space (DROM_clean at job end)."""
        if pid not in self._processes:
            raise DromError(f"unknown pid {pid}")
        del self._processes[pid]

    def clean_job(self, job_id: int) -> int:
        """Remove every task of a job; returns how many were removed."""
        pids = [pid for pid, proc in self._processes.items() if proc.job_id == job_id]
        for pid in pids:
            del self._processes[pid]
        return len(pids)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def processes(self) -> List[DromProcess]:
        """All registered processes (the DROM "get list" call)."""
        return list(self._processes.values())

    def processes_of(self, job_id: int) -> List[DromProcess]:
        """Registered processes belonging to one job."""
        return [p for p in self._processes.values() if p.job_id == job_id]

    def get_mask(self, pid: int) -> FrozenSet[int]:
        """Current CPU mask of a task."""
        if pid not in self._processes:
            raise DromError(f"unknown pid {pid}")
        return self._processes[pid].cpu_mask

    def job_cpus(self, job_id: int) -> FrozenSet[int]:
        """Union of the CPU masks of a job's tasks on this node."""
        cpus: set = set()
        for proc in self.processes_of(job_id):
            cpus.update(proc.cpu_mask)
        return frozenset(cpus)

    # ------------------------------------------------------------------ #
    # DROM_set_mask
    # ------------------------------------------------------------------ #
    def set_mask(self, pid: int, cpu_mask: Iterable[int]) -> None:
        """Change the CPU mask of a task (takes effect at the next
        malleability point of the application — instantaneous here)."""
        if pid not in self._processes:
            raise DromError(f"unknown pid {pid}")
        mask = frozenset(cpu_mask)
        self._validate_mask(mask)
        proc = self._processes[pid]
        proc.cpu_mask = mask
        proc.mask_updates += 1

    def set_job_mask(self, job_id: int, cpu_mask: Iterable[int]) -> None:
        """Distribute a job-level CPU set evenly over the job's tasks."""
        procs = self.processes_of(job_id)
        if not procs:
            raise DromError(f"job {job_id} has no registered processes")
        cores = sorted(cpu_mask)
        self._validate_mask(frozenset(cores))
        chunks = _split_evenly(cores, len(procs))
        for proc, chunk in zip(procs, chunks):
            proc.cpu_mask = frozenset(chunk)
            proc.mask_updates += 1

    # ------------------------------------------------------------------ #
    def overlapping_masks(self) -> List[Tuple[int, int]]:
        """Pairs of pids whose CPU masks overlap (should always be empty)."""
        procs = list(self._processes.values())
        overlaps: List[Tuple[int, int]] = []
        for i, a in enumerate(procs):
            for b in procs[i + 1 :]:
                if a.cpu_mask & b.cpu_mask:
                    overlaps.append((a.pid, b.pid))
        return overlaps

    def _validate_mask(self, mask: FrozenSet[int]) -> None:
        for cpu in mask:
            if cpu < 0 or cpu >= self.total_cpus:
                raise DromError(f"cpu {cpu} outside node range 0..{self.total_cpus - 1}")


def _split_evenly(items: List[int], parts: int) -> List[List[int]]:
    """Split a list into ``parts`` contiguous chunks of near-equal size."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, extra = divmod(len(items), parts)
    chunks: List[List[int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks
