"""Socket-aware CPU distribution inside one node.

Reproduces the core distribution rules of the paper's ``task/affinity``
extension (Section 3.3, Listing 3 step 1):

* jobs sharing a node are kept on *separate sockets* whenever possible, to
  improve data locality and reduce interference;
* within its socket set, each job receives a contiguous block of cores;
* distributions stay balanced in the number of cores per task under the
  assumption that applications are statically load-balanced.

The module is pure (no simulator state): given the node geometry and the
per-job CPU counts decided by the scheduler, it returns the concrete core
indices for each job.  The :class:`repro.nodemanager.manager.NodeManager`
calls it on every job start/end affecting a node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple


@dataclass(frozen=True)
class CoreAssignment:
    """Concrete core indices assigned to one job on one node."""

    job_id: int
    cores: Tuple[int, ...]

    @property
    def num_cores(self) -> int:
        """Number of cores in the assignment."""
        return len(self.cores)

    def sockets_used(self, cores_per_socket: int) -> List[int]:
        """Socket indices touched by this assignment."""
        return sorted({c // cores_per_socket for c in self.cores})


class AffinityError(RuntimeError):
    """Raised when a requested distribution cannot fit on the node."""


def _socket_cores(socket: int, cores_per_socket: int) -> List[int]:
    start = socket * cores_per_socket
    return list(range(start, start + cores_per_socket))


def distribute_cpus(
    cpus_per_job: Mapping[int, int],
    sockets: int = 2,
    cores_per_socket: int = 24,
) -> Dict[int, CoreAssignment]:
    """Assign concrete core indices to every job sharing a node.

    Parameters
    ----------
    cpus_per_job:
        Mapping ``job_id -> cpu count`` on this node (the scheduler-level
        decision).  The total must not exceed the node's core count.
    sockets / cores_per_socket:
        Node geometry.

    Returns
    -------
    dict
        ``job_id -> CoreAssignment`` with pairwise-disjoint core sets whose
        sizes match the request exactly.

    The algorithm processes jobs from largest to smallest request.  Each job
    first tries to claim whole sockets (socket isolation), then fills the
    socket with the most free cores, spilling over only when necessary —
    which reproduces the paper's observation that with ``SharingFactor=0.5``
    two co-scheduled jobs end up isolated one per socket.
    """
    total_cores = sockets * cores_per_socket
    demanded = sum(cpus_per_job.values())
    if demanded > total_cores:
        raise AffinityError(
            f"requested {demanded} cores on a node with only {total_cores}"
        )
    for job_id, cpus in cpus_per_job.items():
        if cpus <= 0:
            raise AffinityError(f"job {job_id}: non-positive cpu count {cpus}")

    # free[socket] = list of free core indices (ascending) on that socket.
    free: List[List[int]] = [_socket_cores(s, cores_per_socket) for s in range(sockets)]
    assignments: Dict[int, CoreAssignment] = {}

    # Large jobs first; ties broken by job id for determinism.
    order = sorted(cpus_per_job.items(), key=lambda kv: (-kv[1], kv[0]))
    for job_id, cpus in order:
        picked: List[int] = []
        remaining = cpus
        # 1. Claim entirely-free sockets while the job still needs a full one.
        for s in range(sockets):
            if remaining >= cores_per_socket and len(free[s]) == cores_per_socket:
                picked.extend(free[s])
                remaining -= cores_per_socket
                free[s] = []
        # 2. Fill from the socket with the most free cores (prefer emptier
        #    sockets so later jobs can still be isolated).
        while remaining > 0:
            candidates = sorted(
                (s for s in range(sockets) if free[s]),
                key=lambda s: (-len(free[s]), s),
            )
            if not candidates:
                raise AffinityError("ran out of cores during distribution")
            s = candidates[0]
            take = min(remaining, len(free[s]))
            picked.extend(free[s][:take])
            free[s] = free[s][take:]
            remaining -= take
        assignments[job_id] = CoreAssignment(job_id=job_id, cores=tuple(sorted(picked)))
    return assignments


def isolation_score(
    assignments: Mapping[int, CoreAssignment],
    cores_per_socket: int,
) -> float:
    """Fraction of sockets hosting cores of at most one job (1.0 = perfect).

    Used by tests and by the real-run interference model: co-scheduled jobs
    isolated on separate sockets interfere less than jobs interleaved on the
    same socket.
    """
    socket_jobs: Dict[int, set] = {}
    for assignment in assignments.values():
        for core in assignment.cores:
            socket_jobs.setdefault(core // cores_per_socket, set()).add(assignment.job_id)
    if not socket_jobs:
        return 1.0
    isolated = sum(1 for jobs in socket_jobs.values() if len(jobs) <= 1)
    return isolated / len(socket_jobs)
