"""Format-discipline checker: schema fingerprints vs. ``formats.lock``.

Every byte this repository persists — pickled cache payloads, shard
manifests, analytics record arrays — has a declared schema and a paired
format-version constant (``CACHE_FORMAT_VERSION``,
``MANIFEST_FORMAT_VERSION``, ``RECORD_SCHEMA_VERSION``).  The version gate
is what lets a reader reject bytes it cannot decode; an un-bumped version
next to a changed schema silently poisons every shared cache.

This tool fingerprints the *field layout* of each registered schema
(dataclass fields with annotations, numpy dtype descriptors, declared
manifest key tuples) into a committed ``formats.lock``.  ``--check`` (the
default, run by CI) fails when the current layout disagrees with the lock:

* same version, different fingerprint — the schema changed without a
  version bump: **bump the paired constant**, then refresh the lock;
* different version — the lock is stale: **run ``--update``** and commit
  the refreshed lock alongside the bump.

Usage::

    python -m repro.devtools.formats            # check (exit 1 on drift)
    python -m repro.devtools.formats --update   # rewrite formats.lock
    python -m repro.devtools.formats --json     # machine-readable report
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import importlib
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LOCK_FORMAT_VERSION",
    "SCHEMAS",
    "FormatsError",
    "SchemaSpec",
    "check_lock",
    "default_lock_path",
    "fingerprint_schema",
    "load_lock",
    "main",
    "snapshot",
    "write_lock",
]

#: Version of the lock-file layout itself.
LOCK_FORMAT_VERSION = 1


class FormatsError(Exception):
    """A user-fixable formats-tool problem (missing lock, bad target)."""


@dataclass(frozen=True)
class SchemaSpec:
    """One fingerprinted schema and its paired format-version constant.

    ``target``/``version`` are ``"module:attribute"`` references resolved
    lazily, so importing this module never drags in numpy.  ``kind``
    selects the layout extractor: a ``dataclass`` (ordered field names and
    annotations), a numpy ``dtype`` (its descr), or a declared ``fields``
    tuple (manifest/payload key layouts).
    """

    name: str
    kind: str
    target: str
    version: str


#: Every persisted schema of the repository.  Adding a format?  Register
#: it here and commit the refreshed lock.
SCHEMAS: Tuple[SchemaSpec, ...] = (
    # The pickled sweep-cache payload: its key layout plus every dataclass
    # reachable from the pickled PolicyRun.  All are guarded by
    # CACHE_FORMAT_VERSION (repro/experiments/sweep.py).
    SchemaSpec(
        name="cache/payload-fields",
        kind="fields",
        target="repro.experiments.sweep:CACHE_PAYLOAD_FIELDS",
        version="repro.experiments.sweep:CACHE_FORMAT_VERSION",
    ),
    SchemaSpec(
        name="cache/PolicyRun",
        kind="dataclass",
        target="repro.experiments.runner:PolicyRun",
        version="repro.experiments.sweep:CACHE_FORMAT_VERSION",
    ),
    SchemaSpec(
        name="cache/SimulationResult",
        kind="dataclass",
        target="repro.simulator.simulation:SimulationResult",
        version="repro.experiments.sweep:CACHE_FORMAT_VERSION",
    ),
    SchemaSpec(
        name="cache/WorkloadMetrics",
        kind="dataclass",
        target="repro.metrics.aggregates:WorkloadMetrics",
        version="repro.experiments.sweep:CACHE_FORMAT_VERSION",
    ),
    # The shard manifest (repro/experiments/executors.py).
    SchemaSpec(
        name="manifest/shard-fields",
        kind="fields",
        target="repro.experiments.executors:MANIFEST_FIELDS",
        version="repro.experiments.executors:MANIFEST_FORMAT_VERSION",
    ),
    SchemaSpec(
        name="manifest/shard-task-fields",
        kind="fields",
        target="repro.experiments.executors:MANIFEST_TASK_FIELDS",
        version="repro.experiments.executors:MANIFEST_FORMAT_VERSION",
    ),
    # The analytics records blob and its discovery manifest
    # (repro/analytics/records.py, repro/analytics/store.py).
    SchemaSpec(
        name="records/JOB_RECORD_DTYPE",
        kind="dtype",
        target="repro.analytics.records:JOB_RECORD_DTYPE",
        version="repro.analytics.records:RECORD_SCHEMA_VERSION",
    ),
    SchemaSpec(
        name="records/analytics-manifest-fields",
        kind="fields",
        target="repro.analytics.store:ANALYTICS_MANIFEST_FIELDS",
        version="repro.analytics.records:RECORD_SCHEMA_VERSION",
    ),
    # Decision-trace JSONL events and their discovery manifest
    # (repro/telemetry/trace.py).
    SchemaSpec(
        name="trace/event-fields",
        kind="fields",
        target="repro.telemetry.trace:TRACE_EVENT_FIELDS",
        version="repro.telemetry.trace:TRACE_FORMAT_VERSION",
    ),
    SchemaSpec(
        name="trace/manifest-fields",
        kind="fields",
        target="repro.telemetry.trace:TRACE_MANIFEST_FIELDS",
        version="repro.telemetry.trace:TRACE_FORMAT_VERSION",
    ),
    SchemaSpec(
        name="trace/mate-rejected-reasons",
        kind="fields",
        target="repro.telemetry.trace:MATE_REJECTED_REASONS",
        version="repro.telemetry.trace:TRACE_FORMAT_VERSION",
    ),
    # Application profiles consumed by the contention-aware policies and
    # the application-aware runtime model (repro/core/profiles.py).
    SchemaSpec(
        name="profiles/ApplicationModel",
        kind="dataclass",
        target="repro.core.profiles:ApplicationModel",
        version="repro.core.profiles:PROFILE_SCHEMA_VERSION",
    ),
    SchemaSpec(
        name="profiles/profile-set-names",
        kind="fields",
        target="repro.core.profiles:PROFILE_SET_NAMES",
        version="repro.core.profiles:PROFILE_SCHEMA_VERSION",
    ),
    # Phase-timer keys and the telemetry snapshot layout
    # (repro/telemetry/trace.py, repro/telemetry/core.py).
    SchemaSpec(
        name="telemetry/phase-fields",
        kind="fields",
        target="repro.telemetry.trace:PHASE_FIELDS",
        version="repro.telemetry.trace:TRACE_FORMAT_VERSION",
    ),
    SchemaSpec(
        name="telemetry/snapshot-fields",
        kind="fields",
        target="repro.telemetry.core:TELEMETRY_SNAPSHOT_FIELDS",
        version="repro.telemetry.core:TELEMETRY_FORMAT_VERSION",
    ),
)


def _resolve(reference: str) -> Any:
    module_name, _, attribute = reference.partition(":")
    if not attribute:
        raise FormatsError(f"bad target {reference!r} (want 'module:attribute')")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise FormatsError(f"cannot import {module_name!r}: {exc}") from exc
    try:
        return getattr(module, attribute)
    except AttributeError as exc:
        raise FormatsError(
            f"{module_name!r} has no attribute {attribute!r}"
        ) from exc


def _layout(kind: str, obj: Any) -> List[List[str]]:
    """The canonical, JSON-stable field layout of a schema object."""
    if kind == "dataclass":
        if not dataclasses.is_dataclass(obj):
            raise FormatsError(f"{obj!r} is not a dataclass")
        # With ``from __future__ import annotations`` field types are the
        # annotation strings — exactly the stable text we want to pin.
        return [[f.name, str(f.type)] for f in dataclasses.fields(obj)]
    if kind == "dtype":
        return [[name, fmt] for name, fmt in obj.descr]
    if kind == "fields":
        return [[name, ""] for name in obj]
    raise FormatsError(f"unknown schema kind {kind!r}")


def fingerprint_schema(kind: str, obj: Any) -> str:
    """Stable fingerprint of a schema object's field layout."""
    canonical = json.dumps(_layout(kind, obj), separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()[:16]


def snapshot(
    schemas: Sequence[SchemaSpec] = SCHEMAS,
) -> Dict[str, Dict[str, Any]]:
    """Current fingerprint + version of every registered schema."""
    result: Dict[str, Dict[str, Any]] = {}
    for spec in schemas:
        result[spec.name] = {
            "fingerprint": fingerprint_schema(spec.kind, _resolve(spec.target)),
            "version": _resolve(spec.version),
            "version_constant": spec.version,
        }
    return result


# --------------------------------------------------------------------- #
# Lock file I/O
# --------------------------------------------------------------------- #
def default_lock_path() -> Path:
    """``formats.lock`` of the working tree (cwd, walking up to a repo root)."""
    current = Path.cwd()
    for candidate in (current, *current.parents):
        lock = candidate / "formats.lock"
        if lock.exists():
            return lock
    return current / "formats.lock"


def load_lock(path: Path) -> Dict[str, Dict[str, Any]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise FormatsError(
            f"cannot read lock file {path}: {exc} "
            "(generate it with --update)"
        ) from exc
    except json.JSONDecodeError as exc:
        raise FormatsError(f"lock file {path} is not valid JSON: {exc}") from exc
    if payload.get("format") != LOCK_FORMAT_VERSION:
        raise FormatsError(
            f"lock file {path} has format {payload.get('format')!r}; this "
            f"tool reads format {LOCK_FORMAT_VERSION}"
        )
    return payload.get("schemas", {})


def write_lock(path: Path, current: Mapping[str, Mapping[str, Any]]) -> None:
    payload = {
        "format": LOCK_FORMAT_VERSION,
        "comment": "Schema fingerprints; regenerate with "
                   "`python -m repro.devtools.formats --update`.",
        "schemas": {name: dict(entry) for name, entry in sorted(current.items())},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


# --------------------------------------------------------------------- #
# The check
# --------------------------------------------------------------------- #
def check_lock(
    locked: Mapping[str, Mapping[str, Any]],
    current: Mapping[str, Mapping[str, Any]],
) -> List[Dict[str, str]]:
    """Compare a lock against the current snapshot; returns problem dicts.

    Problem kinds: ``changed-no-bump`` (schema drifted, version did not —
    the bug this tool exists for), ``stale-lock`` (schema and/or version
    moved together; refresh with ``--update``), ``new-schema`` and
    ``removed-schema`` (registry/lock disagree about what exists).
    """
    problems: List[Dict[str, str]] = []
    for name in sorted(set(locked) | set(current)):
        if name not in current:
            problems.append(
                {
                    "schema": name,
                    "kind": "removed-schema",
                    "message": f"{name}: in formats.lock but no longer "
                               "registered — run --update",
                }
            )
            continue
        if name not in locked:
            problems.append(
                {
                    "schema": name,
                    "kind": "new-schema",
                    "message": f"{name}: registered but missing from "
                               "formats.lock — run --update",
                }
            )
            continue
        lock_entry, now = locked[name], current[name]
        same_print = lock_entry.get("fingerprint") == now["fingerprint"]
        same_version = lock_entry.get("version") == now["version"]
        if same_print and same_version:
            continue
        if not same_print and same_version:
            problems.append(
                {
                    "schema": name,
                    "kind": "changed-no-bump",
                    "message": f"{name}: field layout changed but "
                               f"{now['version_constant']} is still "
                               f"{now['version']} — bump the version "
                               "constant, then run --update",
                }
            )
        else:
            problems.append(
                {
                    "schema": name,
                    "kind": "stale-lock",
                    "message": f"{name}: formats.lock records version "
                               f"{lock_entry.get('version')}, tree has "
                               f"{now['version']} — run --update and commit "
                               "the refreshed lock",
                }
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.formats",
        description="check persisted-schema fingerprints against formats.lock",
    )
    parser.add_argument(
        "--lock", type=Path, default=None, metavar="PATH",
        help="lock file (default: formats.lock of the working tree)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the lock from the current tree instead of checking",
    )
    parser.add_argument("--json", action="store_true",
                        help="emit the check report as JSON")
    args = parser.parse_args(argv)
    lock_path = args.lock if args.lock is not None else default_lock_path()
    try:
        current = snapshot()
        if args.update:
            write_lock(lock_path, current)
            print(f"wrote {len(current)} schema fingerprint(s) to {lock_path}")
            return 0
        problems = check_lock(load_lock(lock_path), current)
    except FormatsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(
            {"ok": not problems, "lock": str(lock_path), "problems": problems},
            indent=2, sort_keys=True,
        ))
    else:
        for problem in problems:
            print(problem["message"])
        print(
            f"{len(current)} schema(s) checked against {lock_path}: "
            + ("ok" if not problems else f"{len(problems)} problem(s)")
        )
    return 0 if not problems else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
