"""Finding and suppression value types shared across the lint package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Finding severities.  Severity is descriptive — *any* finding fails the
#: run (CI treats the pass as a gate) — but the catalog and reports use it
#: to signal how certainly a finding is a bug rather than a style risk.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def render(self) -> str:
        """The one-line text-reporter form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# repro: allow[rule-id, ...] — justification`` comment."""

    path: str
    line: int
    rules: Tuple[str, ...]
    justification: str
    #: Rule ids this suppression actually silenced (filled by the engine).
    used_for: Dict[str, int] = field(default_factory=dict)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rules

    def as_dict(self, rule: Optional[str] = None) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules),
            "justification": self.justification,
            "silenced": dict(self.used_for) if rule is None else rule,
        }
