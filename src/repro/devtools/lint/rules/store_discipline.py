"""Store-discipline rules.

Every persisted artifact — cache blobs, shard manifests, analytics
records — goes through :class:`repro.store.ResultStore` and the atomic
write/integrity-envelope helpers.  Direct ``open()``/``pickle`` I/O on
cache or manifest paths bypasses atomic publication, integrity envelopes,
quarantine and gc reference tracking, so it is confined to ``store/`` and
``analytics/`` (the codec layers) and flagged everywhere else.
"""

from __future__ import annotations

import ast
import re

from repro.devtools.lint.findings import SEVERITY_ERROR
from repro.devtools.lint.registry import Rule, register
from repro.devtools.lint.rules.base import RuleVisitor

#: Packages allowed to touch serialized bytes directly: the store backends
#: and the analytics codec own the formats; tests craft corrupt/legacy
#: blobs on purpose; devtools reads source trees, not caches.
_CODEC_LAYERS = ("store", "analytics", "tests", "devtools")

#: Identifier/string fragments that mark an expression as touching cache or
#: manifest state.  Deliberately broad — a false positive is one suppression
#: with a justification; a false negative is a torn cache nobody notices.
_CACHE_TOKEN = re.compile(r"cache|manifest|blob|shard|quarantin|\.pkl", re.IGNORECASE)

_PICKLE_FUNCTIONS = frozenset({"load", "loads", "dump", "dumps", "Pickler", "Unpickler"})
_DIRECT_IO_ATTRS = frozenset(
    {"write_bytes", "read_bytes", "write_text", "read_text", "fdopen"}
)


class PickleVisitor(RuleVisitor):
    """Any ``pickle`` use outside the codec layers."""

    rule_id = "store-pickle"
    severity = SEVERITY_ERROR

    _MESSAGE = (
        "pickle outside store/ and analytics/ bypasses the integrity envelope "
        "and atomic publication; persist through ResultStore "
        "(repro.store.wrap_blob + store.put)"
    )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        super().visit_ImportFrom(node)
        if node.module == "pickle" and node.level == 0:
            self.emit(node, self._MESSAGE)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in _PICKLE_FUNCTIONS:
            origin = self.resolve(node.func)
            if origin and origin.startswith("pickle."):
                self.emit(node, self._MESSAGE)
        self.generic_visit(node)


class DirectIOVisitor(RuleVisitor):
    """``open()``/``Path`` byte I/O aimed at cache/manifest-looking paths."""

    rule_id = "store-direct-io"
    severity = SEVERITY_ERROR

    def _touches_cache_state(self, node: ast.Call) -> bool:
        return any(_CACHE_TOKEN.search(name) for name in self.local_names(node))

    def visit_Call(self, node: ast.Call) -> None:
        direct = (
            isinstance(node.func, ast.Name) and node.func.id == "open"
        ) or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DIRECT_IO_ATTRS
        )
        if direct and self._touches_cache_state(node):
            self.emit(
                node,
                "direct file I/O on what looks like a cache/manifest path; "
                "route persistence through ResultStore and the atomic-write "
                "helpers (store.put / write_manifest)",
            )
        self.generic_visit(node)


register(
    Rule(
        id=PickleVisitor.rule_id,
        family="store",
        severity=PickleVisitor.severity,
        scopes=None,
        exempt=_CODEC_LAYERS,
        rationale="pickled payloads written outside the store layer skip "
                  "versioning, envelopes and quarantine",
        visitor=PickleVisitor,
    )
)
register(
    Rule(
        id=DirectIOVisitor.rule_id,
        family="store",
        severity=DirectIOVisitor.severity,
        scopes=None,
        exempt=_CODEC_LAYERS,
        rationale="cache/manifest files written without the atomic helpers "
                  "can be observed torn by concurrent sweeps",
        visitor=DirectIOVisitor,
    )
)
