"""Rule modules; importing this package registers every rule.

Each module registers its rules with
:func:`repro.devtools.lint.registry.register` at import time:

* :mod:`.architecture` — layering constraints between subpackages;
* :mod:`.determinism` — seeded randomness, wall-clock reads, set ordering;
* :mod:`.store_discipline` — persistence routed through ``ResultStore``;
* :mod:`.exceptions` — no bare or silently-swallowed exception handlers;
* :mod:`.observability` — no bare ``print()`` outside the CLI/report layers.
"""

from repro.devtools.lint.rules import (  # noqa: F401  (import-for-effect)
    architecture,
    determinism,
    exceptions,
    observability,
    store_discipline,
)
