"""Determinism rules.

Bit-identical replay is the backbone of this repository: the result cache,
the sharded merge and the analytics layer all assume that re-running a
task reproduces its bytes exactly.  These rules reject the three classic
ways that assumption silently breaks — unseeded randomness, wall-clock or
environment reads inside simulation/cache-key paths, and iteration over
unordered sets feeding accumulation or serialization.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING
from repro.devtools.lint.registry import Rule, register
from repro.devtools.lint.rules.base import RuleVisitor

#: Simulation and cache-key subpackages (per-job math must replay exactly).
SIMULATION_SCOPES = ("simulator", "core", "workloads", "metrics")
#: ...plus the sweep/cache-key and record-persistence layers.
PERSISTENCE_SCOPES = SIMULATION_SCOPES + ("experiments", "analytics")

#: ``numpy.random`` attributes that are explicit-seed constructors, not
#: draws from the hidden legacy global state.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)
#: ``random.Random(seed)`` is an explicit, seedable generator instance.
_STDLIB_RANDOM_ALLOWED = frozenset({"Random"})

_WALLCLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


def _disallowed_random(origin: str) -> bool:
    if origin.startswith("numpy.random."):
        return origin.rsplit(".", 1)[1] not in _NP_RANDOM_ALLOWED
    if origin.startswith("random."):
        return origin.rsplit(".", 1)[1] not in _STDLIB_RANDOM_ALLOWED
    return False


class UnseededRandomVisitor(RuleVisitor):
    """``random.*`` / legacy ``np.random.*`` draw from hidden global state."""

    rule_id = "det-unseeded-random"
    severity = SEVERITY_ERROR

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        super().visit_ImportFrom(node)
        if node.module in ("random", "numpy.random") and node.level == 0:
            for alias in node.names:
                origin = f"{node.module}.{alias.name}"
                if _disallowed_random(origin):
                    self.emit(
                        node,
                        f"import of {origin} draws from unseeded global state; "
                        "take a seeded np.random.Generator (an rng parameter "
                        "or np.random.default_rng(seed)) instead",
                    )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            origin = self.resolve(node.func)
            if origin and _disallowed_random(origin):
                self.emit(
                    node,
                    f"{origin}() draws from unseeded global state; route "
                    "randomness through a seeded np.random.Generator (an rng "
                    "parameter or np.random.default_rng(seed))",
                )
        self.generic_visit(node)


class WallclockVisitor(RuleVisitor):
    """Wall-clock/uuid reads make simulated results depend on when they ran."""

    rule_id = "det-wallclock"
    severity = SEVERITY_ERROR

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        super().visit_ImportFrom(node)
        if node.level == 0 and node.module:
            for alias in node.names:
                origin = f"{node.module}.{alias.name}"
                if origin in _WALLCLOCK_ORIGINS:
                    self.emit(
                        node,
                        f"import of {origin} reads the wall clock; simulation "
                        "and cache-key paths must depend only on their inputs "
                        "(pass timestamps in, or use time.perf_counter for "
                        "pure duration measurement)",
                    )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            origin = self.resolve(node.func)
            if origin in _WALLCLOCK_ORIGINS:
                self.emit(
                    node,
                    f"{origin}() reads the wall clock; simulation and "
                    "cache-key paths must depend only on their inputs (pass "
                    "timestamps in, or use time.perf_counter for pure "
                    "duration measurement)",
                )
        self.generic_visit(node)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


_SET_MESSAGE = (
    "iteration over a set has no defined order; wrap it in sorted(...) "
    "before it feeds accumulation or serialization"
)


class SetOrderVisitor(RuleVisitor):
    """Bare set iteration feeding loops, collections or joins."""

    rule_id = "det-set-order"
    severity = SEVERITY_WARNING

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.emit(node.iter, _SET_MESSAGE)
        self.generic_visit(node)

    def _check_comprehensions(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            if _is_set_expr(comp.iter):
                self.emit(comp.iter, _SET_MESSAGE)
        self.generic_visit(node)

    visit_ListComp = _check_comprehensions
    visit_SetComp = _check_comprehensions
    visit_DictComp = _check_comprehensions
    visit_GeneratorExp = _check_comprehensions

    def visit_Call(self, node: ast.Call) -> None:
        materialises = (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "join")
        if materialises and node.args and _is_set_expr(node.args[0]):
            self.emit(node.args[0], _SET_MESSAGE)
        self.generic_visit(node)


register(
    Rule(
        id=UnseededRandomVisitor.rule_id,
        family="determinism",
        severity=UnseededRandomVisitor.severity,
        scopes=SIMULATION_SCOPES,
        exempt=(),
        rationale="an unseeded draw makes a cached sweep unreproducible; "
                  "every sampler takes an explicit seeded Generator",
        visitor=UnseededRandomVisitor,
    )
)
register(
    Rule(
        id=WallclockVisitor.rule_id,
        family="determinism",
        severity=WallclockVisitor.severity,
        scopes=PERSISTENCE_SCOPES,
        exempt=(),
        rationale="wall-clock or uuid reads leak real time into simulated "
                  "results and cache keys",
        visitor=WallclockVisitor,
    )
)
register(
    Rule(
        id=SetOrderVisitor.rule_id,
        family="determinism",
        severity=SetOrderVisitor.severity,
        scopes=PERSISTENCE_SCOPES + ("store",),
        exempt=(),
        rationale="set iteration order varies across processes; float "
                  "summation and serialization must see a sorted sequence",
        visitor=SetOrderVisitor,
    )
)
