"""Exception-discipline rules.

A swallowed exception in the simulator corrupts results silently; one in
the store layer turns a half-written cache into a poisoned sweep; one in
the experiment runners hides a dead shard.  These rules confine the three
shapes that history shows go wrong — bare ``except:``, handlers whose
whole body is ``pass``/``continue``, and broad ``except Exception``
handlers that never re-raise — to explicit, justified suppressions.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING
from repro.devtools.lint.registry import Rule, register
from repro.devtools.lint.rules.base import RuleVisitor

SCOPES = ("simulator", "store", "experiments")


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
        return True
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


def _is_broad(type_node: ast.AST) -> bool:
    if isinstance(type_node, ast.Name):
        return type_node.id in ("Exception", "BaseException")
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(element) for element in type_node.elts)
    return False


class BareExceptVisitor(RuleVisitor):
    """``except:`` catches everything, KeyboardInterrupt/SystemExit included."""

    rule_id = "exc-bare"
    severity = SEVERITY_ERROR

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(
                node,
                "bare except: catches everything including SystemExit and "
                "KeyboardInterrupt; name the exceptions this site expects",
            )
        self.generic_visit(node)


class SwallowVisitor(RuleVisitor):
    """A handler whose whole body is ``pass``/``continue`` hides the error."""

    rule_id = "exc-swallow"
    severity = SEVERITY_ERROR

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.body and all(_is_noop(stmt) for stmt in node.body):
            self.emit(
                node,
                "exception swallowed (handler body is only pass/continue); "
                "handle it, narrow it, or suppress with a justification",
            )
        self.generic_visit(node)


class BroadExceptVisitor(RuleVisitor):
    """``except Exception`` that never re-raises can mask any defect."""

    rule_id = "exc-broad"
    severity = SEVERITY_WARNING

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is not None and _is_broad(node.type):
            reraises = any(
                isinstance(child, ast.Raise) for child in ast.walk(node)
            )
            if not reraises:
                self.emit(
                    node,
                    "broad except Exception without a re-raise can mask any "
                    "defect; narrow the type, re-raise a typed error, or "
                    "suppress with a justification",
                )
        self.generic_visit(node)


for _visitor, _rationale in (
    (
        BareExceptVisitor,
        "a bare except hides interrupts and typos alike",
    ),
    (
        SwallowVisitor,
        "a silently-dropped error in simulator/store/experiments corrupts "
        "results or caches with no trace",
    ),
    (
        BroadExceptVisitor,
        "broad handlers that never re-raise turn programming errors into "
        "wrong numbers",
    ),
):
    register(
        Rule(
            id=_visitor.rule_id,
            family="exceptions",
            severity=_visitor.severity,
            scopes=SCOPES,
            exempt=(),
            rationale=_rationale,
            visitor=_visitor,
        )
    )
