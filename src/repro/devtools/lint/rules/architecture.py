"""Architecture rules: layering constraints between subpackages.

The shared simulation layers (``core/``, ``simulator/``) are the bottom of
the dependency stack — the profile and contention models they need live in
:mod:`repro.core.profiles` / :mod:`repro.core.contention`.  The emulator
package ``realrun/`` sits *above* them (it re-exports the promoted models
for backwards compatibility), so an import in the other direction is a
layering inversion that would quietly re-grow the cycle the promotion
removed.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.findings import SEVERITY_ERROR
from repro.devtools.lint.registry import Rule, register
from repro.devtools.lint.rules.base import RuleVisitor

#: The package the shared layers must not depend on.
_UPPER_LAYER = "repro.realrun"

#: The layers confined below it.
_LOWER_SCOPES = ("core", "simulator")


class RealrunImportVisitor(RuleVisitor):
    """Any import of ``repro.realrun`` from the shared simulation layers."""

    rule_id = "arch-realrun-import"
    severity = SEVERITY_ERROR

    def _flag(self, node: ast.AST, origin: str) -> None:
        self.emit(
            node,
            f"import of {origin} from the shared simulation layers inverts "
            "the dependency stack; the promoted models live in "
            "repro.core.profiles / repro.core.contention — import those "
            "instead",
        )

    def visit_Import(self, node: ast.Import) -> None:
        super().visit_Import(node)
        for alias in node.names:
            if alias.name == _UPPER_LAYER or alias.name.startswith(
                _UPPER_LAYER + "."
            ):
                self._flag(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        super().visit_ImportFrom(node)
        if node.level != 0 or node.module is None:
            return
        if node.module == _UPPER_LAYER or node.module.startswith(
            _UPPER_LAYER + "."
        ):
            self._flag(node, node.module)
        elif node.module == "repro":
            for alias in node.names:
                if alias.name == "realrun":
                    self._flag(node, _UPPER_LAYER)


register(
    Rule(
        id=RealrunImportVisitor.rule_id,
        family="arch",
        severity=RealrunImportVisitor.severity,
        scopes=_LOWER_SCOPES,
        exempt=(),
        rationale="core/ and simulator/ are below realrun/ in the layer "
                  "stack; importing upward re-creates the import cycle the "
                  "profile/contention promotion removed",
        visitor=RealrunImportVisitor,
    )
)
