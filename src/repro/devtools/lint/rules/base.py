"""Shared visitor base: import-alias tracking and finding emission.

The rule visitors need to know what ``random``, ``np.random`` or ``time``
are *called* in the module under analysis (``import numpy as np``,
``from time import time as now`` …).  :class:`RuleVisitor` records every
module alias and every from-imported name as the tree is walked, before
the rule's own ``visit_*`` hooks see the nodes that use them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.devtools.lint.findings import Finding


class RuleVisitor(ast.NodeVisitor):
    """Base class for per-rule AST visitors.

    Subclasses set the class attributes ``rule_id``/``severity`` (copied
    from their :class:`~repro.devtools.lint.registry.Rule`) and call
    :meth:`emit` from their ``visit_*`` hooks.
    """

    rule_id: str = ""
    severity: str = "error"

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: local alias -> dotted module name (``np`` -> ``numpy``).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> dotted origin (``now`` -> ``time.time``).
        self.imported_names: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule_id,
                severity=self.severity,
                message=message,
            )
        )

    # ------------------------------------------------------------------ #
    # Alias bookkeeping (subclasses overriding these must call super()).
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname is None and "." in alias.name:
                # ``import numpy.random`` binds ``numpy`` but makes the
                # submodule reachable; remember the full path too.
                self.module_aliases.setdefault(alias.name, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.imported_names[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of an expression, through the module's imports.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; a from-imported name resolves to its
        origin; anything unresolvable returns ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        if head in self.imported_names:
            parts.append(self.imported_names[head])
        elif head in self.module_aliases:
            parts.append(self.module_aliases[head])
        else:
            return None
        return ".".join(reversed(parts))

    def local_names(self, node: ast.AST) -> Set[str]:
        """Every Name id, attribute name and string literal under ``node``."""
        names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                names.add(child.id)
            elif isinstance(child, ast.Attribute):
                names.add(child.attr)
            elif isinstance(child, ast.Constant) and isinstance(child.value, str):
                names.add(child.value)
            elif isinstance(child, ast.keyword) and child.arg:
                names.add(child.arg)
        return names
