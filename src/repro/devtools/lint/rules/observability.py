"""Observability rules.

Library code reports through the :mod:`logging` hierarchy (wired by
``--log-level`` / ``REPRO_LOG_LEVEL``) or through returned strings the CLI
prints.  A bare ``print()`` in a library module writes to stdout no matter
what the caller wanted, corrupts machine-readable output (``--json``
reports, piped query results) and cannot be silenced or redirected, so it
is confined to the CLI drivers and report renderers and flagged everywhere
else.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.findings import SEVERITY_ERROR
from repro.devtools.lint.registry import Rule, register
from repro.devtools.lint.rules.base import RuleVisitor

#: Places where printing IS the job: the CLI drivers (``cli.py`` anywhere
#: in the tree), report renderers under ``analysis/``, the devtools
#: (their own small CLIs), the in-process store fake's serve banner, and
#: tests.
_PRINTING_LAYERS = ("cli.py", "analysis", "devtools", "tests", "fake.py")


class PrintVisitor(RuleVisitor):
    """Any bare ``print()`` call outside the printing layers."""

    rule_id = "obs-print"
    severity = SEVERITY_ERROR

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.emit(
                node,
                "bare print() in library code writes to stdout "
                "unconditionally; use logging.getLogger(__name__) (wired "
                "via --log-level / REPRO_LOG_LEVEL) or return the text to "
                "the CLI layer",
            )
        self.generic_visit(node)


register(
    Rule(
        id=PrintVisitor.rule_id,
        family="obs",
        severity=PrintVisitor.severity,
        scopes=None,
        exempt=_PRINTING_LAYERS,
        rationale="print() in library modules bypasses the logging config "
                  "and corrupts piped/machine-readable CLI output",
        visitor=PrintVisitor,
    )
)
