"""Suppression-comment parsing.

The syntax is one comment, on the offending line or on the line directly
above it::

    value = time.time()  # repro: allow[det-wallclock] benchmark timestamps
    # repro: allow[exc-swallow] delete is idempotent; a lost race is success
    except FileNotFoundError:
        pass

Several ids may share one comment (``allow[exc-swallow, exc-broad]``) and
everything after the closing bracket — optionally led by ``—``, ``-`` or
``:`` — is the justification.  The engine reports suppressions that carry
no justification, silence nothing, or name an unknown rule id.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import List

from repro.devtools.lint.findings import Suppression

__all__ = ["parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:[-—:]\s*)?(?P<why>.*)$"
)


def parse_suppressions(path: str, source: str) -> List[Suppression]:
    """Extract every suppression comment of a source file, in line order.

    Tokenized, not regexed over raw lines, so the syntax quoted inside a
    docstring or string literal is never treated as a live suppression.
    """
    found: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        # The engine reports unparseable files via lint-parse-error; there
        # are no trustworthy comments to collect here.
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        found.append(
            Suppression(
                path=path,
                line=token.start[0],
                rules=rules,
                justification=match.group("why").strip(),
            )
        )
    return found
