"""Lint engine: file collection, rule dispatch, suppression matching.

One :func:`lint_paths` call walks the requested files/directories, runs
every selected rule's AST visitor over each parseable file, applies the
``# repro: allow[rule-id]`` suppressions and returns a :class:`LintReport`
of the surviving findings.  The engine itself also implements the four
``lint-*`` meta rules (parse failures and suppression hygiene).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.devtools.lint.findings import Finding, Suppression
from repro.devtools.lint.registry import Rule, all_rules
from repro.devtools.lint.suppress import parse_suppressions

__all__ = ["DEFAULT_EXCLUDES", "LintError", "LintReport", "collect_files",
           "lint_paths", "lint_source", "scope_parts", "select_rules"]

#: Directory names never descended into.  ``lint_fixtures`` holds the
#: deliberately-violating snippets the linter's own tests run on — pass a
#: path inside it explicitly to lint it anyway.
DEFAULT_EXCLUDES = frozenset(
    {
        ".git",
        "__pycache__",
        ".hypothesis",
        ".pytest_cache",
        ".benchmarks",
        "build",
        "dist",
        "lint_fixtures",
    }
)

#: A fixture path mirrors the scoped layout below this marker, so
#: ``tests/lint_fixtures/simulator/x.py`` scopes exactly like
#: ``src/repro/simulator/x.py``.
_FIXTURE_MARKER = "lint_fixtures"


class LintError(Exception):
    """A user-fixable lint invocation problem (bad path, unknown rule)."""


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    files: int = 0
    rules: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        by_rule: dict = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "version": 1,
            "ok": self.ok,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [
                dict(finding.as_dict(), justification=suppression.justification)
                for finding, suppression in self.suppressed
            ],
            "summary": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": by_rule,
            },
        }


def scope_parts(path: Path) -> Tuple[str, ...]:
    """Path components used for rule scoping.

    Below a ``lint_fixtures`` directory only the mirrored tail counts, so
    fixtures scope like the tree they imitate.
    """
    parts = path.parts
    if _FIXTURE_MARKER in parts:
        parts = parts[parts.index(_FIXTURE_MARKER) + 1:]
    return tuple(parts)


def collect_files(
    paths: Sequence[Path], excludes: Iterable[str] = DEFAULT_EXCLUDES
) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list.

    Excluded directory *names* are pruned during descent; a path given
    explicitly is always included, which is how the linter's own tests
    lint the fixture tree.
    """
    excluded = set(excludes)
    seen = {}
    for path in paths:
        if not path.exists():
            raise LintError(f"no such file or directory: {path}")
        if path.is_file():
            seen[path.resolve()] = path
            continue
        stack = [path]
        while stack:
            current = stack.pop()
            for entry in sorted(current.iterdir(), reverse=True):
                if entry.is_dir():
                    if entry.name not in excluded:
                        stack.append(entry)
                elif entry.suffix == ".py":
                    seen[entry.resolve()] = entry
    return sorted(seen.values(), key=lambda p: str(p))


def select_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rule set a run uses; ``only`` filters by id (meta rules stay)."""
    rules = all_rules()
    if only is None:
        return rules
    known = {rule.id for rule in rules}
    unknown = sorted(set(only) - known)
    if unknown:
        raise LintError(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(see --list-rules for the catalog)"
        )
    wanted = set(only)
    return [rule for rule in rules if rule.id in wanted or rule.visitor is None]


def lint_source(
    path: Path,
    source: str,
    rules: Sequence[Rule],
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], List[Tuple[Finding, Suppression]]]:
    """Lint one file's source; returns (findings, suppressed findings)."""
    shown = display_path if display_path is not None else str(path)
    enabled = {rule.id for rule in rules}
    parts = scope_parts(path)
    try:
        tree = ast.parse(source, filename=shown)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=shown,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="lint-parse-error",
                    severity="error",
                    message=f"cannot parse: {exc.msg}",
                )
            ],
            [],
        )

    raw: List[Finding] = []
    applicable = []
    for rule in rules:
        if rule.visitor is None or not rule.applies_to(parts):
            continue
        applicable.append(rule)
        visitor = rule.visitor(shown)
        visitor.visit(tree)
        raw.extend(visitor.findings)

    suppressions = parse_suppressions(shown, source)
    # A suppression matches on the finding's own line (trailing comment) or
    # anywhere in the contiguous block of comment-only lines directly above
    # it, so multi-line justifications stay readable.
    comment_only = {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if text.lstrip().startswith("#")
    }
    active: List[Finding] = []
    suppressed: List[Tuple[Finding, Suppression]] = []
    for finding in raw:
        anchors = {finding.line}
        cursor = finding.line - 1
        while cursor in comment_only:
            anchors.add(cursor)
            cursor -= 1
        match = None
        for suppression in suppressions:
            if suppression.line in anchors and suppression.covers(finding.rule):
                match = suppression
                break
        if match is None:
            active.append(finding)
        else:
            match.used_for[finding.rule] = match.used_for.get(finding.rule, 0) + 1
            suppressed.append((finding, match))

    applicable_ids = {rule.id for rule in applicable}
    known_ids = {rule.id for rule in all_rules()}
    for suppression in suppressions:
        for rule_id in suppression.rules:
            if rule_id not in known_ids:
                active.append(
                    Finding(
                        path=shown,
                        line=suppression.line,
                        col=1,
                        rule="lint-unknown-rule",
                        severity="error",
                        message=f"suppression names unknown rule {rule_id!r}",
                    )
                )
            elif (
                rule_id in applicable_ids
                and rule_id in enabled
                and rule_id not in suppression.used_for
            ):
                active.append(
                    Finding(
                        path=shown,
                        line=suppression.line,
                        col=1,
                        rule="lint-unused-suppression",
                        severity="warning",
                        message=f"suppression for {rule_id!r} silences nothing "
                                "here; remove it",
                    )
                )
        if suppression.used_for and not suppression.justification:
            active.append(
                Finding(
                    path=shown,
                    line=suppression.line,
                    col=1,
                    rule="lint-missing-justification",
                    severity="warning",
                    message="suppression carries no justification; say why "
                            "the invariant is safe to waive here",
                )
            )
    return active, suppressed


def lint_paths(
    paths: Sequence[str],
    only_rules: Optional[Sequence[str]] = None,
    excludes: Iterable[str] = DEFAULT_EXCLUDES,
    relative_to: Optional[Path] = None,
) -> LintReport:
    """Lint every .py file under ``paths`` with the selected rules."""
    rules = select_rules(only_rules)
    files = collect_files([Path(p) for p in paths], excludes=excludes)
    report = LintReport(rules=tuple(rule.id for rule in rules))
    report.files = len(files)
    for path in files:
        display = path
        if relative_to is not None:
            try:
                display = path.resolve().relative_to(relative_to.resolve())
            except ValueError:
                display = path
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        findings, suppressed = lint_source(
            path, source, rules, display_path=str(display)
        )
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(key=lambda pair: (pair[0].path, pair[0].line))
    return report
