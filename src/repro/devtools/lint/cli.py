"""Argument handling shared by ``repro-sdpolicy lint`` and ``python -m``.

Both entry points funnel into :func:`run`, so flags, output and exit codes
cannot drift between them.  Exit status: 0 — no findings; 1 — findings;
2 — invocation error (bad path, unknown rule id).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.lint.engine import LintError, lint_paths
from repro.devtools.lint.reporters import (
    render_catalog,
    render_catalog_json,
    render_json,
    render_text,
)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint flags on a parser (shared with the main CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (e.g. src tests)",
    )
    parser.add_argument(
        "--rules", type=str, default=None, metavar="ID,ID",
        help="run only these rule ids (default: every registered rule)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report (schema version 1)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (id, severity, scope, rationale) and exit",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list suppressed findings with their justifications",
    )


def run(
    paths: Sequence[str],
    rules: Optional[str] = None,
    as_json: bool = False,
    list_rules: bool = False,
    show_suppressed: bool = False,
) -> int:
    """Execute one lint invocation; returns the process exit status."""
    if list_rules:
        print(render_catalog_json() if as_json else render_catalog())
        return 0
    if not paths:
        print("error: give at least one PATH to lint (e.g. src tests)",
              file=sys.stderr)
        return 2
    only: Optional[List[str]] = None
    if rules is not None:
        only = [part.strip() for part in rules.split(",") if part.strip()]
    try:
        report = lint_paths(paths, only_rules=only, relative_to=Path.cwd())
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if as_json:
        print(render_json(report))
    else:
        print(render_text(report, verbose=show_suppressed))
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.devtools.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="repro-lint: determinism & format-discipline static "
                    "analysis for this repository",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run(
        paths=args.paths,
        rules=args.rules,
        as_json=args.json,
        list_rules=args.list_rules,
        show_suppressed=args.show_suppressed,
    )
