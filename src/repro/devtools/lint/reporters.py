"""Text and JSON reporters for lint runs and the rule catalog."""

from __future__ import annotations

import json
from typing import List

from repro.devtools.lint.engine import LintReport
from repro.devtools.lint.registry import all_rules


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines: List[str] = [finding.render() for finding in report.findings]
    if verbose:
        for finding, suppression in report.suppressed:
            why = suppression.justification or "(no justification)"
            lines.append(f"{finding.render()}  [suppressed: {why}]")
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} "
        f"suppressed, {report.files} file(s) checked"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (schema version 1, stable key order)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def render_catalog() -> str:
    """The ``--list-rules`` table: id, severity, scope, rationale."""
    rules = all_rules()
    id_width = max(len(rule.id) for rule in rules)
    sev_width = max(len(rule.severity) for rule in rules)
    lines = []
    for rule in rules:
        lines.append(
            f"{rule.id:<{id_width}}  {rule.severity:<{sev_width}}  "
            f"{rule.scope_text}"
        )
        lines.append(f"{'':<{id_width}}  {'':<{sev_width}}  {rule.rationale}")
    return "\n".join(lines)


def render_catalog_json() -> str:
    return json.dumps(
        {
            "version": 1,
            "rules": [
                {
                    "id": rule.id,
                    "family": rule.family,
                    "severity": rule.severity,
                    "scope": rule.scope_text,
                    "rationale": rule.rationale,
                }
                for rule in all_rules()
            ],
        },
        indent=2,
        sort_keys=True,
    )
