"""The rule registry.

Every rule is a :class:`Rule` — an id, a severity, a path scope, a one-line
rationale and an :class:`ast.NodeVisitor` factory — registered at import
time by the modules under :mod:`repro.devtools.lint.rules`.  The registry
is what ``--rules`` filters and ``--list-rules`` prints, so the catalog is
always exactly the set of checks that can fire.

Scoping is by path component: a rule with ``scopes=("simulator", "core")``
only runs on files whose path contains a ``simulator`` or ``core``
directory, and ``exempt`` components always win over ``scopes``.  Fixture
trees mirror the layout (``tests/lint_fixtures/simulator/…``) so the same
matching exercises the rules under test.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["META_RULES", "Rule", "all_rules", "get_rule", "register", "rule_ids"]


@dataclass(frozen=True)
class Rule:
    """One lint check: identity, scope and the visitor that implements it."""

    id: str
    family: str
    severity: str
    #: Path components the rule is confined to; ``None`` means everywhere.
    scopes: Optional[Tuple[str, ...]]
    #: Path components the rule never runs on (beats ``scopes``).
    exempt: Tuple[str, ...]
    rationale: str
    #: ``visitor(path) -> ast.NodeVisitor`` with a ``findings`` list; the
    #: engine-implemented meta rules (suppression hygiene, parse errors)
    #: have no visitor of their own.
    visitor: Optional[Callable[[str], "ast.NodeVisitor"]]

    def applies_to(self, parts: Sequence[str]) -> bool:
        if any(part in self.exempt for part in parts):
            return False
        if self.scopes is None:
            return True
        return any(part in self.scopes for part in parts)

    @property
    def scope_text(self) -> str:
        if self.scopes is None:
            base = "everywhere"
        else:
            base = ", ".join(self.scopes) + "/"
        if self.exempt:
            return f"{base} except {', '.join(self.exempt)}/"
        return base


_REGISTRY: Dict[str, Rule] = {}

#: Engine-implemented rules: they have no AST visitor but are part of the
#: catalog (and of ``--rules`` selection) like any other.
META_RULES = (
    Rule(
        id="lint-parse-error",
        family="lint",
        severity="error",
        scopes=None,
        exempt=(),
        rationale="a file the pass cannot parse is a file the invariants "
                  "cannot be checked on",
        visitor=None,
    ),
    Rule(
        id="lint-unused-suppression",
        family="lint",
        severity="warning",
        scopes=None,
        exempt=(),
        rationale="a suppression that silences nothing is stale and hides "
                  "the next real finding on that line",
        visitor=None,
    ),
    Rule(
        id="lint-unknown-rule",
        family="lint",
        severity="error",
        scopes=None,
        exempt=(),
        rationale="a suppression naming a rule id that does not exist is a "
                  "typo that silences nothing",
        visitor=None,
    ),
    Rule(
        id="lint-missing-justification",
        family="lint",
        severity="warning",
        scopes=None,
        exempt=(),
        rationale="every suppression must say *why* the invariant is safe "
                  "to waive at that site",
        visitor=None,
    ),
)


def register(rule: Rule) -> Rule:
    """Add a rule to the registry (id collisions are a programming error)."""
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def _ensure_loaded() -> None:
    # Rule modules self-register on import; importing here (not at module
    # top) keeps registry.py import-cycle-free for the rule modules.
    from repro.devtools.lint import rules  # noqa: F401  (import-for-effect)


def all_rules() -> List[Rule]:
    """Every registered rule plus the engine meta rules, sorted by id."""
    _ensure_loaded()
    return sorted(
        list(_REGISTRY.values()) + list(META_RULES), key=lambda rule: rule.id
    )


def rule_ids() -> List[str]:
    return [rule.id for rule in all_rules()]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    for rule in META_RULES:
        if rule.id == rule_id:
            return rule
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r} (known: {', '.join(rule_ids())})"
        ) from None
