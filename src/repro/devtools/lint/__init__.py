"""repro-lint: an AST lint suite for this repository's invariants.

Rule families (see ``repro-sdpolicy lint --list-rules`` for the catalog):

* **determinism** (``det-*``) — unseeded randomness, wall-clock/uuid reads
  and unordered set iteration in simulation, cache-key and persistence
  paths;
* **store discipline** (``store-*``) — all persistence routed through
  :class:`repro.store.ResultStore` and the atomic-write helpers;
* **exception discipline** (``exc-*``) — no bare or silently-swallowed
  handlers in ``simulator/``, ``store/``, ``experiments/``;
* **lint hygiene** (``lint-*``) — parse failures and stale, unknown or
  unjustified suppressions.

A finding is silenced — never deleted — with a justified comment on its
line or the line above::

    # repro: allow[exc-swallow] delete is idempotent; a lost race is success

Run it as ``repro-sdpolicy lint src tests`` or
``python -m repro.devtools.lint src tests``.
"""

from repro.devtools.lint.engine import (
    DEFAULT_EXCLUDES,
    LintError,
    LintReport,
    collect_files,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.devtools.lint.findings import Finding, Suppression
from repro.devtools.lint.registry import Rule, all_rules, get_rule, rule_ids

__all__ = [
    "DEFAULT_EXCLUDES",
    "Finding",
    "LintError",
    "LintReport",
    "Rule",
    "Suppression",
    "all_rules",
    "collect_files",
    "get_rule",
    "lint_paths",
    "lint_source",
    "rule_ids",
    "select_rules",
]
