"""Developer tooling: the repro-lint static-analysis pass and format locks.

Nothing in here runs at simulation time — these are the checks CI (and a
developer, locally) runs over the *source tree*:

* :mod:`repro.devtools.lint` — an AST-based lint suite encoding the
  repository's determinism, store-discipline and exception-discipline
  invariants (``repro-sdpolicy lint`` / ``python -m repro.devtools.lint``);
* :mod:`repro.devtools.formats` — fingerprints every persisted schema
  (cache payloads, shard manifests, the analytics record dtype) into a
  committed ``formats.lock`` and fails when a schema changes without the
  matching format-version bump (``python -m repro.devtools.formats``).
"""

from repro.devtools.lint import Finding, LintReport, lint_paths

__all__ = ["Finding", "LintReport", "lint_paths"]
