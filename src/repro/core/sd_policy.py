"""The Slowdown-Driven scheduling policy (Listing 1 of the paper).

``SDPolicyScheduler`` extends the static backfill baseline: whenever the
static trial of a pending job fails, and the job is malleable, the policy

1. estimates the job's end time under static scheduling
   (``static_end = estimated wait + requested time``) and under malleable
   co-scheduling (``mall_end = requested time + worst-case increase``,
   starting immediately);
2. only if the malleable estimate improves on the static one, asks the
   mate-selection heuristic for the cheapest set of running jobs to shrink
   (minimum Performance Impact, Eq. 1) subject to the MAX_SLOWDOWN cut-off;
3. if a feasible selection exists, shrinks the mates, starts the guest on
   the freed CPUs, and records the mate relationship so that the guest's
   completion expands the mates back (and, symmetrically, a mate finishing
   early donates its cores to the jobs remaining on its nodes —
   Listing 3's node-management behaviour).

The policy supports mixed workloads: non-malleable jobs simply follow the
static backfill path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.mate_selection import MateSelection, MateSelector
from repro.core.penalties import (
    DynamicAverageMaxSlowdown,
    MaxSlowdownCutoff,
    StaticMaxSlowdown,
)
from repro.core.runtime_model import RuntimeModel, WorstCaseRuntimeModel
from repro.schedulers.backfill import BackfillScheduler
from repro.simulator.job import Job, JobState
from repro.simulator.reservation import ReservationMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


@dataclass
class SDPolicyConfig:
    """Tunable parameters of SD-Policy.

    Attributes
    ----------
    sharing_factor:
        Fraction of a node that may be taken from a mate (paper: 0.5).
    max_mates:
        Maximum mates combined per guest (paper: 2).
    max_candidates:
        Cap on the penalty-sorted candidate list examined by the heuristic.
    max_slowdown:
        The MAX_SLOWDOWN cut-off: a number (static MAXSD), ``math.inf``
        (MAXSD infinite), or the string ``"dynamic"`` for DynAVGSD.
    estimation_model:
        Runtime model used for scheduling-time estimates (paper: worst case).
    include_free_nodes / allow_partial_mates:
        Optional behaviours of the selection heuristic (both off by default,
        matching the paper's evaluation configuration).
    use_requested_time:
        Use user-requested times for estimates (True, deployable) or real
        runtimes (False, oracle — the paper's Workload 2 configuration is
        instead obtained by generating a workload whose requested times equal
        the real durations).
    max_job_test:
        Backfill depth (inherited from the static baseline).
    """

    sharing_factor: float = 0.5
    max_mates: int = 2
    max_candidates: int = 50
    max_slowdown: float | str = math.inf
    estimation_model: Optional[RuntimeModel] = None
    include_free_nodes: bool = False
    allow_partial_mates: bool = False
    use_requested_time: bool = True
    max_job_test: int = 100

    def build_cutoff(self) -> MaxSlowdownCutoff:
        """Instantiate the MAX_SLOWDOWN cut-off described by this config."""
        if isinstance(self.max_slowdown, str):
            key = self.max_slowdown.lower()
            if key in ("dynamic", "dynavgsd", "avg"):
                return DynamicAverageMaxSlowdown(use_requested_time=self.use_requested_time)
            raise ValueError(f"unknown max_slowdown spec {self.max_slowdown!r}")
        return StaticMaxSlowdown(float(self.max_slowdown))

    def build_contention(self):
        """Contention model consulted by the selector (base policy: none)."""
        return None

    def build_selector(self) -> MateSelector:
        """Instantiate the mate selector described by this config."""
        return MateSelector(
            sharing_factor=self.sharing_factor,
            max_mates=self.max_mates,
            max_candidates=self.max_candidates,
            estimation_model=self.estimation_model or WorstCaseRuntimeModel(),
            include_free_nodes=self.include_free_nodes,
            allow_partial_mates=self.allow_partial_mates,
            use_requested_time=self.use_requested_time,
            contention=self.build_contention(),
        )


class SDPolicyScheduler(BackfillScheduler):
    """Slowdown-Driven malleable backfill (the paper's SD-Policy)."""

    name = "sd_policy"
    # Malleable co-scheduling is exactly what makes a pass useful when the
    # cluster has no free nodes left.
    schedule_when_saturated = True

    def __init__(self, config: Optional[SDPolicyConfig] = None) -> None:
        self.config = config or SDPolicyConfig()
        super().__init__(max_job_test=self.config.max_job_test)
        self.selector = self.config.build_selector()
        self.cutoff = self.config.build_cutoff()
        self.name = f"sd_policy[{self.cutoff.label},SF={self.config.sharing_factor:g}]"
        # Per-run counters (reset in bind()).
        self.malleable_starts = 0
        self.rejected_by_estimate = 0
        self.rejected_no_mates = 0

    # ------------------------------------------------------------------ #
    def bind(self, sim: "Simulation") -> None:
        self.malleable_starts = 0
        self.rejected_by_estimate = 0
        self.rejected_no_mates = 0
        # Rebuild the cut-off so dynamic state never leaks across runs.
        self.cutoff = self.config.build_cutoff()

    def on_pass_start(self, sim: "Simulation") -> None:
        # The paper refreshes the dynamic cut-off whenever the controller is
        # not busy scheduling; here that is the start of every pass.
        self.cutoff.update(sim)

    def _no_selection_reason(self) -> str:
        """Typed reason for a failed mate selection (``mate_rejected`` trace).

        The base policy only knows "no mates existed"; contention-aware
        subclasses refine this (e.g. UB-Policy reports ``"bandwidth"`` when
        every candidate was dropped by the capacity check).  Must return a
        member of :data:`repro.telemetry.trace.MATE_REJECTED_REASONS`.
        """
        return "no_mates"

    # ------------------------------------------------------------------ #
    # Listing 1: the malleable scheduling attempt
    # ------------------------------------------------------------------ #
    def _estimate_static_start(
        self,
        sim: "Simulation",
        job: Job,
        profile_estimate: float,
        work_ahead_cpu_seconds: float,
    ) -> float:
        """Estimated static start time of a job (absolute simulation time).

        Combines the reservation-map estimate (exact for the jobs within the
        backfill depth) with an aggregate work-ahead bound, which keeps the
        estimate meaningful for jobs far beyond the reservation depth —
        the paper's implementation builds the full reservation map; the
        aggregate bound is the scalable stand-in documented in DESIGN.md.
        """
        total_cpus = sim.cluster.total_cpus
        work_bound = sim.now
        if total_cpus > 0:
            work_bound = sim.now + work_ahead_cpu_seconds / total_cpus
        candidates = [work_bound]
        if math.isfinite(profile_estimate):
            candidates.append(profile_estimate)
        return max(candidates)

    def try_malleable_start(
        self,
        sim: "Simulation",
        job: Job,
        profile: ReservationMap,
        estimated_start: float,
        work_ahead_cpu_seconds: float = 0.0,
    ) -> bool:
        if not job.malleable:
            return False
        # End-time estimates (both measured as absolute times).
        static_start = self._estimate_static_start(
            sim, job, estimated_start, work_ahead_cpu_seconds
        )
        static_end = static_start + job.requested_time
        mall_runtime = self.selector.estimated_guest_runtime(job)
        mall_end = sim.now + mall_runtime
        trace = sim.trace
        if static_end <= mall_end:
            self.rejected_by_estimate += 1
            if trace is not None:
                trace.emit(
                    "mate_rejected",
                    sim.now,
                    guest=job.job_id,
                    reason="estimate",
                    static_end=static_end,
                    mall_end=mall_end,
                )
            return False
        selection = self.selector.select(sim, job, self.cutoff)
        if selection is None:
            # The reason is resolved unconditionally so subclass counters
            # (e.g. UB-Policy's bandwidth refusals) are trace-independent:
            # cached payloads must be byte-identical with and without
            # ``--trace``.
            reason = self._no_selection_reason()
            self.rejected_no_mates += 1
            if trace is not None:
                trace.emit(
                    "mate_rejected",
                    sim.now,
                    guest=job.job_id,
                    reason=reason,
                    static_end=static_end,
                    mall_end=mall_end,
                )
            return False
        self._apply_selection(sim, job, selection)
        self.malleable_starts += 1
        if trace is not None:
            trace.emit(
                "mate_selected",
                sim.now,
                guest=job.job_id,
                mates=[mate.job_id for mate in selection.mates],
                penalty=selection.total_penalty,
                free_nodes=len(selection.free_nodes_used),
                est_runtime=selection.estimated_guest_runtime,
            )
        return True

    # ------------------------------------------------------------------ #
    # Listing 1's ``schedule(new_job)`` entry point: evaluate every arriving
    # job immediately, before the periodic queue pass reaches it.
    # ------------------------------------------------------------------ #
    def on_job_submit(self, sim: "Simulation", job: Job) -> None:
        """Attempt malleable co-scheduling of a newly submitted job.

        The paper's algorithm is invoked per arriving job: the static trial
        first, then the malleable trial.  Here the static trial is left to
        the regular backfill pass (which runs right after this hook and
        respects queue priority); the malleable trial, which does not
        consume free nodes and therefore cannot delay the queued jobs, is
        attempted immediately so that short jobs arriving into a congested
        system can be placed on shrunk mates without waiting to come within
        the backfill depth.
        """
        if not job.malleable:
            return
        if sim.cluster.can_allocate(job):
            # Free nodes exist: let the normal (static) path decide.
            return
        self.cutoff.update(sim)
        profile = sim.availability_profile()
        est_start = profile.earliest_start(job.requested_nodes, job.requested_time)
        work_ahead = self.running_requested_work(sim)
        for other in sim.pending.ordered():
            if other.job_id != job.job_id:
                work_ahead += other.requested_cpus * other.requested_time
        self.try_malleable_start(sim, job, profile, est_start, work_ahead)

    def _apply_selection(self, sim: "Simulation", guest: Job, selection: MateSelection) -> None:
        """Shrink the mates and start the guest on the freed CPUs.

        Following Listing 1's ``update_stats``, the requested (wall-limit)
        times of the mates and of the guest are extended by the estimated
        runtime increase, so the scheduler's future wait-time predictions
        account for the dilation caused by the shrink.
        """
        kept_fraction = 1.0 - self.config.sharing_factor
        mate_increase = self.selector.estimation_model.mate_increase(
            selection.estimated_guest_runtime, kept_fraction
        )
        for mate in selection.mates:
            sim.reconfigure_job(mate, selection.mate_new_cpus[mate.job_id])
            mate.requested_time += mate_increase
        guest.requested_time = max(guest.requested_time, selection.estimated_guest_runtime)
        sim.start_job_shared(guest, selection.guest_cpus_per_node, selection.mates)

    # ------------------------------------------------------------------ #
    # Listing 3 (scheduler-visible part): expand / redistribute on job end
    # ------------------------------------------------------------------ #
    def on_job_end(self, sim: "Simulation", job: Job) -> None:
        """Return the ended job's cores to the jobs remaining on its nodes.

        * guest ends → its mates expand back to the full nodes they own;
        * mate ends before its guest → the guest takes over the freed cores
          of the nodes it shares with that mate (Listing 3's
          ``distribute_cpu`` behaviour).
        """
        affected: Dict[int, Job] = {}
        for other_id in list(job.guest_of) + list(job.mates):
            other = sim.jobs.get(other_id)
            if other is not None and other.state is JobState.RUNNING:
                affected[other_id] = other
            # Unlink the finished job from its peers' bookkeeping.
            if other is not None:
                if job.job_id in other.mates:
                    other.mates.remove(job.job_id)
                if job.job_id in other.guest_of:
                    other.guest_of.remove(job.job_id)
        for other in affected.values():
            new_map = self._expanded_map(sim, other)
            if new_map != other.assigned_cpus:
                sim.reconfigure_job(other, new_map)

    @staticmethod
    def _expanded_map(sim: "Simulation", job: Job) -> Dict[int, int]:
        """Give the job every free CPU on the nodes it occupies."""
        new_map: Dict[int, int] = {}
        for nid in job.allocated_nodes:
            node = sim.cluster.node(nid)
            new_map[nid] = node.cpus_of(job.job_id) + node.free_cpus
        return new_map

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Per-run decision counters (useful for analysis and tests)."""
        return {
            "malleable_starts": self.malleable_starts,
            "rejected_by_estimate": self.rejected_by_estimate,
            "rejected_no_mates": self.rejected_no_mates,
        }
