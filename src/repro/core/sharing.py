"""SharingFactor: how a node's CPUs are split between a mate and a guest.

Section 3.3 of the paper defines the ``SharingFactor`` as the limit on the
computational resources that can be taken from a running job on a node when
it is shrunk.  On MareNostrum4 the best overall performance was obtained
when co-scheduled applications run isolated on separate sockets, so the
paper sets ``SharingFactor = 0.5`` (one of the two sockets).

This module computes the concrete per-node CPU split, honouring:

* the SharingFactor upper bound on how much is taken from the mate,
* the mate's minimum of one CPU per MPI rank (it can never shrink below
  ``tasks_per_node``), and
* the guest's minimum of one CPU per rank,
* and, when a :class:`repro.core.contention.ContentionModel` is supplied,
  the node's memory-bandwidth capacity (Uberun-style: a split is infeasible
  when the pair's combined bandwidth demand oversubscribes the node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.simulator.job import Job
from repro.simulator.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.contention import ContentionModel


@dataclass(frozen=True)
class SharingPlan:
    """CPU split of one node between its owner (mate) and a guest job."""

    node_id: int
    mate_cpus: int
    guest_cpus: int

    @property
    def total(self) -> int:
        """Total CPUs covered by the plan."""
        return self.mate_cpus + self.guest_cpus


def guest_share_of_node(node_total_cpus: int, sharing_factor: float) -> int:
    """CPUs the guest may take from a fully-owned node under the factor."""
    if not 0.0 < sharing_factor < 1.0:
        raise ValueError("sharing_factor must be in (0, 1)")
    return int(node_total_cpus * sharing_factor)


def plan_node_sharing(
    node: Node,
    mate: Job,
    guest: Job,
    sharing_factor: float,
    contention: Optional["ContentionModel"] = None,
) -> Optional[SharingPlan]:
    """Compute the CPU split of ``node`` between ``mate`` and ``guest``.

    Returns ``None`` when no feasible split exists (the guest cannot get at
    least one CPU per rank without pushing the mate below one CPU per rank,
    or the mate does not actually hold CPUs on the node).  With a
    ``contention`` model the split must additionally fit the node's
    memory-bandwidth capacity: a pair whose combined bandwidth demand
    oversubscribes the node is rejected outright, independent of the CPU
    arithmetic.  The default ``contention=None`` skips the check and is
    byte-identical to the historical behaviour.
    """
    mate_current = node.cpus_of(mate.job_id)
    if mate_current <= 0:
        return None
    if contention is not None and not contention.allows_pairing(mate, guest):
        return None
    take = guest_share_of_node(node.total_cpus, sharing_factor)
    # Never take more than the mate can give while keeping one CPU per rank.
    take = min(take, mate_current - mate.min_cpus_per_node)
    # The guest also needs at least one CPU per rank on the node; free CPUs
    # on the node (if any) can top it up.
    guest_cpus = take + node.free_cpus
    if guest_cpus < guest.min_cpus_per_node:
        return None
    mate_cpus = mate_current - take
    if mate_cpus < mate.min_cpus_per_node:
        return None
    return SharingPlan(node_id=node.node_id, mate_cpus=mate_cpus, guest_cpus=guest_cpus)


def guest_fraction_of_request(guest: Job, guest_cpus_total: int) -> float:
    """Fraction of the guest's requested CPUs provided by a sharing plan."""
    if guest.requested_cpus <= 0:
        return 1.0
    return min(1.0, guest_cpus_total / guest.requested_cpus)
