"""Slowdown penalties and the MAX_SLOWDOWN cut-off (Section 3.2.2).

Every candidate *mate* — a running job that could be shrunk to make room for
a new malleable job — receives a penalty equal to its estimated slowdown
after the shrink (Eq. 4):

    p_i = (wait_time + increase + req_time) / req_time

where ``increase`` is the estimated runtime increase caused by hosting the
guest, computed with the worst-case runtime model.  Mates whose penalty
exceeds the ``MAX_SLOWDOWN`` cut-off ``P`` are excluded (constraint 2) —
both to bound the combinatorial search and to avoid penalising jobs whose
slowdown is already high.

The paper evaluates two cut-off flavours (Section 3.2.2, Figures 1–3):

* a **static** value chosen by the administrator (MAXSD 5 / 10 / 50 / ∞);
* a **dynamic** value — the current average predicted slowdown of the
  running jobs (``DynAVGSD``), refreshed whenever the controller is idle
  (here: at the start of every scheduling pass).
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING

from repro.simulator.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


def predicted_running_slowdown(job: Job, use_requested_time: bool = True) -> float:
    """Predicted slowdown of a *running* job.

    With ``use_requested_time`` (the only information a real scheduler has)
    this is ``(wait + req_time) / req_time``; with exact runtimes (the
    paper's Workload 2, where the requested time equals the real duration)
    the same expression is exact.
    """
    if job.start_time is None:
        raise ValueError(f"job {job.job_id} has not started")
    wait = job.start_time - job.submit_time
    if use_requested_time:
        runtime = job.requested_time
    else:
        runtime = job.static_runtime
    return (wait + runtime) / runtime


def mate_penalty(
    mate: Job,
    increase: float,
    use_requested_time: bool = True,
) -> float:
    """Eq. 4: estimated slowdown of a mate after applying malleability.

    Parameters
    ----------
    mate:
        The running candidate mate.
    increase:
        Estimated increase of its runtime caused by the shrink (seconds).
    use_requested_time:
        Whether the denominator/addend is the user-requested time (the
        deployable estimate) or the real static runtime (oracle).
    """
    if mate.start_time is None:
        raise ValueError(f"mate {mate.job_id} has not started")
    if increase < 0:
        raise ValueError("increase must be non-negative")
    wait = mate.start_time - mate.submit_time
    req = mate.requested_time if use_requested_time else mate.static_runtime
    return (wait + increase + req) / req


class MaxSlowdownCutoff(abc.ABC):
    """Abstract MAX_SLOWDOWN cut-off ``P`` (constraint 2)."""

    #: Label used in experiment reports ("MAXSD 10", "DynAVGSD", ...).
    label: str = "abstract"

    def update(self, sim: "Simulation") -> None:
        """Refresh the cut-off from system state (no-op for static values)."""

    @abc.abstractmethod
    def threshold(self) -> float:
        """Current cut-off value; mates with penalty >= threshold are excluded."""

    def admits(self, penalty: float) -> bool:
        """True when a mate with the given penalty may be selected."""
        return penalty < self.threshold()


class StaticMaxSlowdown(MaxSlowdownCutoff):
    """Administrator-chosen static cut-off (``MAXSD <value>``).

    ``value=math.inf`` reproduces the paper's "MAXSD infinite" setting where
    no mate is filtered by slowdown.
    """

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError("MAX_SLOWDOWN must be positive")
        self.value = float(value)
        self.label = "MAXSD inf" if math.isinf(self.value) else f"MAXSD {value:g}"

    def threshold(self) -> float:
        return self.value


class DynamicAverageMaxSlowdown(MaxSlowdownCutoff):
    """Dynamic cut-off: average predicted slowdown of the running jobs.

    Jobs whose predicted slowdown already exceeds the running-set average are
    not considered for malleability, spreading the slowdown evenly across
    running jobs (Section 3.2.2, option 2 — ``DynAVGSD``).

    Parameters
    ----------
    use_requested_time:
        Predict running-job slowdowns with requested times (deployable) or
        with real runtimes (oracle; relevant for Workload 2 style studies).
    floor:
        Lower bound on the threshold so the policy is never completely
        disabled when the system is empty or perfectly unloaded (a running
        job's minimum possible slowdown is 1.0).
    """

    label = "DynAVGSD"

    def __init__(self, use_requested_time: bool = True, floor: float = 1.0) -> None:
        self.use_requested_time = use_requested_time
        self.floor = floor
        self._value = math.inf

    def update(self, sim: "Simulation") -> None:
        running = [j for j in sim.running.values() if j.state is JobState.RUNNING]
        if not running:
            self._value = math.inf
            return
        total = 0.0
        for job in running:
            total += predicted_running_slowdown(job, self.use_requested_time)
        self._value = max(self.floor, total / len(running))

    def threshold(self) -> float:
        return self._value
