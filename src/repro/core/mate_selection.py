"""Mate selection: the resource-selection level of SD-Policy (Section 3.2).

When a malleable job cannot start statically, SD-Policy looks for *mates* —
running jobs that will shrink their per-node CPU allocation so the new job
(the *guest*) can be co-scheduled on their nodes.  Selecting the mates is a
knapsack-like NP-complete problem; the paper solves it with a bounded
heuristic:

* each candidate mate ``i`` gets a penalty ``p_i`` — its estimated slowdown
  after the shrink (Eq. 4, :func:`repro.core.penalties.mate_penalty`);
* candidates with ``p_i ≥ MAX_SLOWDOWN`` are filtered out (constraint 2);
* the remaining candidates are sorted by penalty and only the first
  ``max_candidates`` are kept;
* combinations of at most ``max_mates`` mates (the paper finds no benefit
  beyond 2) whose node counts sum exactly to the guest's requested node
  count ``W`` (constraint 3) are enumerated, and the combination minimising
  the total Performance Impact ``PI = Σ p_i`` (Eq. 1) is chosen;
* a further constraint requires the guest to finish (by its worst-case
  estimate) within every selected mate's remaining requested time, so a
  mate never ends while still hosting the guest *according to the
  scheduler's information*.

Options supported by the paper's implementation and reproduced here:
including free nodes in the guest's allocation to reduce fragmentation, and
allowing a single larger mate to be used partially (``allow_partial_mates``,
off by default because it violates constraint 3's balance argument).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.penalties import MaxSlowdownCutoff, mate_penalty
from repro.core.runtime_model import RuntimeModel, WorstCaseRuntimeModel
from repro.core.sharing import plan_node_sharing
from repro.simulator.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.contention import ContentionModel
    from repro.simulator.simulation import Simulation


@dataclass(frozen=True)
class MateCandidate:
    """A running job eligible to be shrunk for a given guest."""

    job: Job
    penalty: float
    weight: int  # number of nodes the mate holds (w_i in the paper)


@dataclass
class MateSelection:
    """The outcome of a successful mate selection.

    Attributes
    ----------
    mates:
        The selected mate jobs (possibly empty if only free nodes are used).
    guest_cpus_per_node:
        Per-node CPUs the guest will receive.
    mate_new_cpus:
        For every mate, its complete new per-node CPU map after shrinking.
    free_nodes_used:
        Free nodes folded into the guest's allocation (fragmentation option).
    total_penalty:
        The Performance Impact ``PI = Σ p_i`` of the selection.
    guest_fraction:
        Fraction of the guest's requested CPUs provided by the plan.
    estimated_guest_runtime:
        Worst-case runtime estimate of the guest under the plan (seconds).
    """

    mates: List[Job]
    guest_cpus_per_node: Dict[int, int]
    mate_new_cpus: Dict[int, Dict[int, int]]
    free_nodes_used: List[int] = field(default_factory=list)
    total_penalty: float = 0.0
    guest_fraction: float = 1.0
    estimated_guest_runtime: float = 0.0


class MateSelector:
    """Heuristic mate selection (Listing 2 + Eq. 1–4).

    Parameters
    ----------
    sharing_factor:
        Fraction of a node's CPUs that may be taken from a mate
        (paper default 0.5 — one socket of a two-socket node).
    max_mates:
        Maximum number of mates combined for one guest (paper: 2).
    max_candidates:
        Length cap of the penalty-sorted candidate list (the paper's ``nm``).
    estimation_model:
        Runtime model used for the scheduling-time estimates; the paper uses
        the worst-case model so completion estimates are safe.
    include_free_nodes:
        Allow completely free nodes to be folded into the guest allocation
        (reduces fragmentation; off by default as in the paper's evaluation).
    allow_partial_mates:
        Allow a single mate larger than the guest to be shrunk on only a
        subset of its nodes (extension; off by default).
    use_requested_time:
        Whether penalties use requested times (deployable) or real runtimes.
    contention:
        Optional :class:`repro.core.contention.ContentionModel`.  When set,
        candidates whose pairing with the guest would oversubscribe a node's
        memory bandwidth are rejected up front (counted in
        ``bandwidth_rejections``), the survivors are ordered
        complementarity-first (lowest bandwidth demand, then penalty), and
        every per-node split is re-checked through
        :func:`repro.core.sharing.plan_node_sharing`.  ``None`` (the
        default) preserves the paper's penalty-only ordering byte-for-byte.
    """

    def __init__(
        self,
        sharing_factor: float = 0.5,
        max_mates: int = 2,
        max_candidates: int = 50,
        estimation_model: Optional[RuntimeModel] = None,
        include_free_nodes: bool = False,
        allow_partial_mates: bool = False,
        use_requested_time: bool = True,
        contention: Optional["ContentionModel"] = None,
    ) -> None:
        if not 0.0 < sharing_factor < 1.0:
            raise ValueError("sharing_factor must be in (0, 1)")
        if max_mates <= 0:
            raise ValueError("max_mates must be positive")
        if max_candidates <= 0:
            raise ValueError("max_candidates must be positive")
        self.sharing_factor = sharing_factor
        self.max_mates = max_mates
        self.max_candidates = max_candidates
        self.estimation_model = estimation_model or WorstCaseRuntimeModel()
        self.include_free_nodes = include_free_nodes
        self.allow_partial_mates = allow_partial_mates
        self.use_requested_time = use_requested_time
        self.contention = contention
        #: Candidates dropped by the bandwidth-capacity check during the
        #: most recent :meth:`candidate_mates` call (0 on the default path);
        #: schedulers read it to type their ``mate_rejected`` trace events.
        self.bandwidth_rejections = 0

    # ------------------------------------------------------------------ #
    # Guest-side estimates
    # ------------------------------------------------------------------ #
    def estimated_guest_runtime(self, guest: Job) -> float:
        """Worst-case runtime of the guest when co-scheduled under the factor.

        With the worst-case model any shared node limits progress, so the
        guest's effective fraction is the SharingFactor regardless of free
        nodes in the mix.
        """
        return self.estimation_model.dilated_runtime(guest.requested_time, self.sharing_factor)

    def estimated_guest_increase(self, guest: Job) -> float:
        """Runtime increase of the guest versus a static start (Listing 1)."""
        return self.estimated_guest_runtime(guest) - guest.requested_time

    # ------------------------------------------------------------------ #
    # Candidate construction
    # ------------------------------------------------------------------ #
    def _is_eligible(self, sim: "Simulation", mate: Job, guest: Job, guest_runtime: float) -> bool:
        if mate.state is not JobState.RUNNING or mate.start_time is None:
            return False
        if not mate.malleable:
            return False
        if mate.job_id == guest.job_id:
            return False
        # A job that was itself co-scheduled as a guest, or that already
        # hosts a guest, is not shrunk further (one guest per node set).
        if mate.guest_of:
            return False
        for nid in mate.allocated_nodes:
            if sim.cluster.node(nid).is_shared:
                return False
        # The guest must finish (by its worst-case estimate) inside the
        # mate's remaining requested allocation.
        ref_time = mate.requested_time if self.use_requested_time else mate.static_runtime
        mate_end = mate.start_time + ref_time
        if mate_end < sim.now + guest_runtime:
            return False
        return True

    def candidate_mates(
        self,
        sim: "Simulation",
        guest: Job,
        cutoff: MaxSlowdownCutoff,
    ) -> List[MateCandidate]:
        """Build, filter and sort the list of candidate mates for a guest."""
        guest_runtime = self.estimated_guest_runtime(guest)
        kept_fraction = 1.0 - self.sharing_factor
        candidates: List[MateCandidate] = []
        trace = getattr(sim, "trace", None)
        self.bandwidth_rejections = 0
        for mate in sim.running.values():
            if not self._is_eligible(sim, mate, guest, guest_runtime):
                continue
            if self.contention is not None and not self.contention.allows_pairing(
                mate, guest
            ):
                # Profile-driven rejection: the pair would oversubscribe the
                # node's memory bandwidth regardless of the CPU split.
                self.bandwidth_rejections += 1
                continue
            increase = self.estimation_model.mate_increase(guest_runtime, kept_fraction)
            penalty = mate_penalty(mate, increase, self.use_requested_time)
            admitted = cutoff.admits(penalty)
            if trace is not None:
                # Eligibility failures stay silent (noise); every slowdown
                # estimate actually weighed against the cut-off is recorded.
                trace.emit(
                    "mate_candidate",
                    sim.now,
                    guest=guest.job_id,
                    mate=mate.job_id,
                    penalty=penalty,
                    admitted=admitted,
                )
            if not admitted:
                continue
            weight = len(mate.allocated_nodes)
            if weight <= 0:
                continue
            candidates.append(MateCandidate(job=mate, penalty=penalty, weight=weight))
        if self.contention is None:
            candidates.sort(key=lambda c: (c.penalty, c.job.job_id))
        else:
            # Profile-driven ordering: prefer complementary (low bandwidth
            # demand) mates, breaking ties by the paper's penalty order.
            contention = self.contention
            candidates.sort(
                key=lambda c: (
                    contention.bandwidth_demand(
                        contention.application(c.job.application)
                    ),
                    c.penalty,
                    c.job.job_id,
                )
            )
        return candidates[: self.max_candidates]

    # ------------------------------------------------------------------ #
    # Combination search
    # ------------------------------------------------------------------ #
    def _best_combination(
        self,
        candidates: Sequence[MateCandidate],
        nodes_needed: int,
    ) -> Optional[Tuple[List[MateCandidate], int]]:
        """Minimum-PI combination of ≤ ``max_mates`` mates summing to the target.

        Returns ``(combination, surplus_nodes)`` where ``surplus_nodes`` is 0
        for exact matches and positive only when ``allow_partial_mates`` lets
        a single larger mate cover the request with nodes to spare.
        """
        best: Optional[Tuple[List[MateCandidate], int]] = None
        best_pi = math.inf
        n = len(candidates)
        max_r = min(self.max_mates, n)
        for r in range(1, max_r + 1):
            for combo in itertools.combinations(range(n), r):
                picks = [candidates[i] for i in combo]
                total_nodes = sum(c.weight for c in picks)
                pi = sum(c.penalty for c in picks)
                if pi >= best_pi:
                    continue
                if total_nodes == nodes_needed:
                    best, best_pi = (picks, 0), pi
                elif (
                    self.allow_partial_mates
                    and r == 1
                    and total_nodes > nodes_needed
                ):
                    best, best_pi = (picks, total_nodes - nodes_needed), pi
        return best

    def _build_plan(
        self,
        sim: "Simulation",
        guest: Job,
        picks: Sequence[MateCandidate],
        surplus_nodes: int,
        free_nodes: Sequence[int],
    ) -> Optional[MateSelection]:
        """Turn a combination into a concrete per-node CPU plan."""
        guest_cpus: Dict[int, int] = {}
        mate_new: Dict[int, Dict[int, int]] = {}
        mates: List[Job] = []
        for candidate in picks:
            mate = candidate.job
            mate_map = dict(mate.assigned_cpus)
            nodes = sorted(mate.allocated_nodes)
            if surplus_nodes and candidate is picks[-1]:
                # Partial use of a larger mate: shrink it only on the first
                # ``weight - surplus`` of its nodes.
                nodes = nodes[: candidate.weight - surplus_nodes]
            for nid in nodes:
                plan = plan_node_sharing(
                    sim.cluster.node(nid),
                    mate,
                    guest,
                    self.sharing_factor,
                    contention=self.contention,
                )
                if plan is None:
                    return None
                guest_cpus[nid] = plan.guest_cpus
                mate_map[nid] = plan.mate_cpus
            mate_new[mate.job_id] = mate_map
            mates.append(mate)
        for nid in free_nodes:
            guest_cpus[nid] = sim.cluster.node(nid).total_cpus
        if len(guest_cpus) != guest.requested_nodes:
            return None
        total_guest_cpus = sum(guest_cpus.values())
        fraction = min(1.0, total_guest_cpus / guest.requested_cpus)
        # The worst-case runtime of the concrete plan is governed by the
        # most-shrunk node.
        per_node_request = guest.requested_cpus / guest.requested_nodes
        worst_fraction = min(1.0, min(guest_cpus.values()) / per_node_request)
        runtime = self.estimation_model.dilated_runtime(guest.requested_time, worst_fraction)
        return MateSelection(
            mates=mates,
            guest_cpus_per_node=guest_cpus,
            mate_new_cpus=mate_new,
            free_nodes_used=list(free_nodes),
            total_penalty=sum(c.penalty for c in picks),
            guest_fraction=fraction,
            estimated_guest_runtime=runtime,
        )

    # ------------------------------------------------------------------ #
    def select(
        self,
        sim: "Simulation",
        guest: Job,
        cutoff: MaxSlowdownCutoff,
    ) -> Optional[MateSelection]:
        """Select the best mates for a guest, or ``None`` if no set exists."""
        if guest.requested_nodes <= 0:
            return None
        candidates = self.candidate_mates(sim, guest, cutoff)
        if not candidates and not self.include_free_nodes:
            return None
        free_pool: List[int] = sim.cluster.free_node_ids if self.include_free_nodes else []
        # Prefer plans using as many free nodes as possible (they add no
        # penalty); fall back to fewer free nodes until a feasible mate
        # combination exists for the remainder.
        max_free = min(len(free_pool), guest.requested_nodes - 1) if free_pool else 0
        for free_count in range(max_free, -1, -1):
            nodes_needed = guest.requested_nodes - free_count
            combo = self._best_combination(candidates, nodes_needed)
            if combo is None:
                continue
            picks, surplus = combo
            plan = self._build_plan(sim, guest, picks, surplus, free_pool[:free_count])
            if plan is not None:
                return plan
        return None
