"""Runtime models for malleable jobs (Section 3.4 of the paper).

The paper partitions a job's execution into time slots ``t``, one per
resource configuration, and estimates the runtime *increase* caused by
running with fewer CPUs than the static request:

* **Ideal model** (Eq. 5) — the application redistributes its load
  perfectly, so progress is proportional to the *total* number of assigned
  CPUs: ``increase = Σ_t (req_cpus / used_cpus_t) · time_t − Σ_t time_t``
  (expressed here through the equivalent *speed* formulation).
* **Worst-case model** (Eq. 6) — the application is statically balanced, so
  progress is limited by the node on which it holds the fewest CPUs:
  the per-slot speed is ``min_n(cpus_per_node_n) / (req_cpus / req_nodes)``.

Both models are exposed through a common protocol with two views:

``speed(job, cpus_per_node)``
    Relative progress rate of a configuration (1.0 = full static
    allocation).  The simulation driver integrates this to execute
    malleable jobs.

``dilated_runtime(base, fraction)`` / ``shrink_increase(...)``
    Closed-form estimates used by the SD-Policy scheduler at decision time
    (Listing 1 computes ``mall_end = req_time + runtime_increase``).

The paper uses the worst-case model for scheduling decisions (to guarantee
correct completion estimates) and evaluates both models in the simulator
(Figure 8); we follow the same convention.
"""

from __future__ import annotations

import abc
import math
from typing import Mapping, Sequence

from repro.simulator.job import Job, ResourceSlot


class RuntimeModel(abc.ABC):
    """Common interface of the ideal and worst-case runtime models."""

    #: Short name used in reports ("ideal" / "worst_case").
    name: str = "abstract"

    #: Contention model consulted by contention-aware subclasses (see
    #: :mod:`repro.core.contention`).  ``None`` — the default for the
    #: ideal/worst-case models — is the no-contention path: speeds depend
    #: only on the CPU allocation, never on co-runners, which keeps every
    #: legacy golden byte-identical.
    contention = None

    @abc.abstractmethod
    def speed(self, job: Job, cpus_per_node: Mapping[int, int]) -> float:
        """Relative progress rate (1.0 = static allocation) of a configuration."""

    # ------------------------------------------------------------------ #
    # Closed-form estimation helpers used at scheduling time
    # ------------------------------------------------------------------ #
    def dilated_runtime(self, base_runtime: float, fraction: float) -> float:
        """Runtime of a job that keeps ``fraction`` of its request throughout.

        For a *uniform* shrink (the SD-Policy case: the same SharingFactor is
        applied on every node) the ideal and worst-case models coincide:
        running with fraction ``f`` of the CPUs takes ``base / f``.
        """
        if fraction <= 0:
            return math.inf
        return base_runtime / min(1.0, fraction)

    def shrink_increase(self, base_runtime: float, fraction: float) -> float:
        """Runtime *increase* of a uniform shrink (Eq. 5/6 with one slot)."""
        return self.dilated_runtime(base_runtime, fraction) - base_runtime

    def mate_increase(self, shared_duration: float, kept_fraction: float) -> float:
        """Runtime increase of a *mate* shrunk to ``kept_fraction`` of its
        request for ``shared_duration`` seconds and then expanded back.

        While shrunk the mate progresses at ``kept_fraction``; the work it
        falls behind by, ``shared_duration · (1 − kept_fraction)``, is then
        recovered at full speed after the guest leaves, which is exactly the
        increase in its completion time.
        """
        if shared_duration < 0:
            raise ValueError("shared_duration must be non-negative")
        kept = min(1.0, max(0.0, kept_fraction))
        return shared_duration * (1.0 - kept)


class IdealRuntimeModel(RuntimeModel):
    """Eq. 5 — load perfectly rebalanced over the assigned CPUs."""

    name = "ideal"

    def speed(self, job: Job, cpus_per_node: Mapping[int, int]) -> float:
        if not cpus_per_node:
            return 0.0
        total = sum(cpus_per_node.values())
        return min(1.0, total / job.requested_cpus)


class WorstCaseRuntimeModel(RuntimeModel):
    """Eq. 6 — statically balanced job limited by its most-shrunk node.

    The speed is additionally capped by the ideal (total-CPU) speed so the
    worst-case model can never be *faster* than the ideal one, even for
    degenerate allocations covering fewer nodes than the request (which the
    scheduler never produces, but tests and external callers may).
    """

    name = "worst_case"

    def speed(self, job: Job, cpus_per_node: Mapping[int, int]) -> float:
        if not cpus_per_node:
            return 0.0
        per_node_request = job.requested_cpus / max(1, job.requested_nodes)
        if per_node_request <= 0:
            return 1.0
        ideal_cap = sum(cpus_per_node.values()) / job.requested_cpus
        worst = min(cpus_per_node.values()) / per_node_request
        return min(1.0, worst, ideal_cap)


def runtime_increase_from_history(
    job: Job,
    history: Sequence[ResourceSlot] | None = None,
    model: RuntimeModel | None = None,
) -> float:
    """Runtime increase of a finished job computed from its resource history.

    This is the literal form of Eq. 5/6: the job's actual wall-clock runtime
    minus the runtime it would have had on its static allocation, recomputed
    from the recorded per-slot configurations.  Used by the analysis layer
    and by tests that cross-check the simulator's progress integration
    against the closed-form equations.
    """
    slots = list(history if history is not None else job.resource_history)
    if not slots:
        return 0.0
    wall = 0.0
    work = 0.0
    for slot in slots:
        duration = slot.duration
        if not math.isfinite(duration):
            continue
        wall += duration
        if model is None:
            speed = slot.speed
        else:
            speed = model.speed(job, slot.cpus_per_node)
        work += duration * speed
    if work <= 0:
        return 0.0
    # ``work`` is measured in static seconds; the static runtime of that
    # amount of work is ``work`` itself, so the increase is wall − work.
    return max(0.0, wall - work)


#: Canonical model names and their accepted aliases (for lookups and for
#: the error message naming the candidates).
MODEL_ALIASES = {
    "ideal": ("ideal", "eq5"),
    "worst_case": ("worst_case", "worst", "eq6"),
    "application_aware": ("application_aware", "app_aware", "contention"),
}


def available_models() -> list:
    """Sorted canonical names of the runtime models :func:`get_model` knows."""
    return sorted(MODEL_ALIASES)


def get_model(name: str) -> RuntimeModel:
    """Look up a runtime model by canonical name or alias.

    Raises a ``ValueError`` (``ScenarioError``-compatible: scenario loading
    catches it) that names every available model, so a typo in a spec or on
    the CLI points straight at the valid choices.
    """
    key = name.lower()
    if key in MODEL_ALIASES["ideal"]:
        return IdealRuntimeModel()
    if key in MODEL_ALIASES["worst_case"]:
        return WorstCaseRuntimeModel()
    if key in MODEL_ALIASES["application_aware"]:
        # Local import: the contention module itself imports this one.
        from repro.core.contention import ApplicationAwareRuntimeModel

        return ApplicationAwareRuntimeModel()
    candidates = "; ".join(
        f"{canonical} (aliases: {', '.join(a for a in aliases if a != canonical)})"
        for canonical, aliases in sorted(MODEL_ALIASES.items())
    )
    raise ValueError(
        f"unknown runtime model {name!r}; available: {candidates}"
    )
