"""The co-scheduling policy family built around the paper's SD-Policy.

The package implements the three layers described in Section 3 of the
paper, plus the profile/contention layer that turns them into a pluggable
policy family:

* the *scheduling level* (:mod:`repro.core.sd_policy`,
  :mod:`repro.core.ub_policy`, :mod:`repro.core.policy`) — the malleable
  backfill variant of Listing 1, the Uberun-style contention-aware
  UB-Policy, and the :class:`~repro.core.policy.CoSchedulingPolicy`
  protocol + registry that makes the family pluggable;
* the *resource selection level* (:mod:`repro.core.mate_selection`,
  :mod:`repro.core.penalties`) — the slowdown-penalty-driven mate selection
  heuristic of Listing 2 and Eq. 1–4, with the static and dynamic
  ``MAX_SLOWDOWN`` cut-offs;
* the shared *runtime models* (:mod:`repro.core.runtime_model`) — the
  ideal (Eq. 5) and worst-case (Eq. 6) models used both for scheduling-time
  estimation and for simulating malleable execution; the
  :mod:`repro.core.sharing` rules that decide how a node's CPUs are split
  between a shrunk mate and a co-scheduled guest (``SharingFactor``); and
  the application profiles (:mod:`repro.core.profiles`) and
  memory-bandwidth contention model (:mod:`repro.core.contention`) that
  profile-aware policies and the application-aware runtime model consult.
"""

from repro.core.contention import (
    DEFAULT_CONTENTION_COEFFICIENT,
    DEFAULT_NODE_BANDWIDTH_CAPACITY,
    ApplicationAwareRuntimeModel,
    ContentionModel,
    co_run_slowdown,
)
from repro.core.mate_selection import MateSelection, MateSelector
from repro.core.penalties import (
    DynamicAverageMaxSlowdown,
    MaxSlowdownCutoff,
    StaticMaxSlowdown,
    mate_penalty,
)
from repro.core.policy import (
    CoSchedulingPolicy,
    available_policies,
    make_policy,
    register_policy,
    resolve_policy_name,
)
from repro.core.profiles import (
    APPLICATIONS,
    DEFAULT_APPLICATION,
    PROFILE_SCHEMA_VERSION,
    PROFILE_SETS,
    ApplicationModel,
    get_application,
    get_profile_set,
)
from repro.core.runtime_model import (
    IdealRuntimeModel,
    RuntimeModel,
    WorstCaseRuntimeModel,
    runtime_increase_from_history,
)
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.core.sharing import SharingPlan, plan_node_sharing
from repro.core.ub_policy import UBPolicyConfig, UBPolicyScheduler

__all__ = [
    "APPLICATIONS",
    "ApplicationAwareRuntimeModel",
    "ApplicationModel",
    "CoSchedulingPolicy",
    "ContentionModel",
    "DEFAULT_APPLICATION",
    "DEFAULT_CONTENTION_COEFFICIENT",
    "DEFAULT_NODE_BANDWIDTH_CAPACITY",
    "DynamicAverageMaxSlowdown",
    "IdealRuntimeModel",
    "MateSelection",
    "MateSelector",
    "MaxSlowdownCutoff",
    "PROFILE_SCHEMA_VERSION",
    "PROFILE_SETS",
    "RuntimeModel",
    "SDPolicyConfig",
    "SDPolicyScheduler",
    "SharingPlan",
    "StaticMaxSlowdown",
    "UBPolicyConfig",
    "UBPolicyScheduler",
    "WorstCaseRuntimeModel",
    "available_policies",
    "co_run_slowdown",
    "get_application",
    "get_profile_set",
    "make_policy",
    "mate_penalty",
    "plan_node_sharing",
    "register_policy",
    "resolve_policy_name",
    "runtime_increase_from_history",
]
