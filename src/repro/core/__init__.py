"""SD-Policy: the paper's primary contribution.

The package implements the three layers described in Section 3 of the
paper:

* the *scheduling level* (:mod:`repro.core.sd_policy`) — the malleable
  backfill variant of Listing 1;
* the *resource selection level* (:mod:`repro.core.mate_selection`,
  :mod:`repro.core.penalties`) — the slowdown-penalty-driven mate selection
  heuristic of Listing 2 and Eq. 1–4, with the static and dynamic
  ``MAX_SLOWDOWN`` cut-offs;
* the shared *runtime models* (:mod:`repro.core.runtime_model`) — the
  ideal (Eq. 5) and worst-case (Eq. 6) models used both for scheduling-time
  estimation and for simulating malleable execution; and the
  :mod:`repro.core.sharing` rules that decide how a node's CPUs are split
  between a shrunk mate and a co-scheduled guest (``SharingFactor``).
"""

from repro.core.mate_selection import MateSelection, MateSelector
from repro.core.penalties import (
    DynamicAverageMaxSlowdown,
    MaxSlowdownCutoff,
    StaticMaxSlowdown,
    mate_penalty,
)
from repro.core.runtime_model import (
    IdealRuntimeModel,
    RuntimeModel,
    WorstCaseRuntimeModel,
    runtime_increase_from_history,
)
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.core.sharing import SharingPlan, plan_node_sharing

__all__ = [
    "DynamicAverageMaxSlowdown",
    "IdealRuntimeModel",
    "MateSelection",
    "MateSelector",
    "MaxSlowdownCutoff",
    "RuntimeModel",
    "SDPolicyConfig",
    "SDPolicyScheduler",
    "SharingPlan",
    "StaticMaxSlowdown",
    "WorstCaseRuntimeModel",
    "mate_penalty",
    "plan_node_sharing",
    "runtime_increase_from_history",
]
