"""Memory-bandwidth contention as a first-class simulator concept.

When a policy co-schedules two applications on one node, the node manager
keeps them on separate sockets (Section 3.3), so the remaining interference
is essentially memory-bandwidth contention.  :func:`co_run_slowdown` models
that contention from the applications' memory intensity/sensitivity;
:class:`ContentionModel` packages it together with a node bandwidth-capacity
feasibility check (Uberun-style: refuse pairings whose combined demand
oversubscribes the memory subsystem) and a profile-set lookup, so schedulers
(:class:`repro.core.ub_policy.UBPolicyScheduler`), the mate-selection
heuristic and the sharing planner can all consult one object.

:class:`ApplicationAwareRuntimeModel` combines the contention term with each
application's shrink-scaling curve to produce the speed the simulator
integrates, playing the role that real hardware played in the paper's
Section 4.4 run.  The ideal/worst-case models keep ``contention = None`` —
the no-contention default path — so every existing golden stays
byte-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.core.profiles import (
    ApplicationModel,
    get_profile_set,
    lookup_application,
)
from repro.core.runtime_model import RuntimeModel
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job

#: Strength of the memory-bandwidth contention term when two socket-isolated
#: applications share a node.  0.15 means a fully memory-bound application
#: co-running with another fully memory-bound application loses ~13% speed
#: (1/1.15), in line with the socket-isolated measurements reported for DROM.
DEFAULT_CONTENTION_COEFFICIENT = 0.15

#: Per-node memory-bandwidth capacity in units of one application's maximum
#: demand (``memory_intensity`` = 1 saturates the node's bandwidth on its
#: own).  Memory-bound codes keep their bandwidth demand even when shrunk to
#: one socket — STREAM saturates the memory subsystem from half the cores —
#: so demands add up un-scaled.  1.4 admits a memory-bound application next
#: to a compute-bound one (0.95 + 0.10) but refuses two memory-intensive
#: co-runners (0.95 + 0.55), matching Uberun's pairing rules.
DEFAULT_NODE_BANDWIDTH_CAPACITY = 1.4


def co_run_slowdown(
    app: ApplicationModel,
    co_runner_intensities: Iterable[float],
    contention_coefficient: float = DEFAULT_CONTENTION_COEFFICIENT,
) -> float:
    """Multiplicative slowdown (>= 1.0) caused by co-runners on the node.

    The dominant co-runner (highest memory intensity) determines the
    contention; the job's own sensitivity scales how much it suffers.
    """
    worst = 0.0
    for intensity in co_runner_intensities:
        worst = max(worst, intensity)
    return 1.0 + contention_coefficient * app.memory_sensitivity * worst


class ContentionModel:
    """Profile-driven interference and bandwidth feasibility for one node.

    A single consultable object bundling the three profile-driven questions
    the scheduling stack asks:

    * ``slowdown(app, intensities)`` — how much does this application suffer
      from its co-runners (the runtime-model view)?
    * ``bandwidth_feasible(apps)`` — may these applications share a node at
      all, or does their combined demand oversubscribe the memory subsystem
      (the UB-Policy admission view)?
    * ``application(name)`` — profile lookup within the configured set.
    """

    def __init__(
        self,
        contention_coefficient: float = DEFAULT_CONTENTION_COEFFICIENT,
        node_bandwidth_capacity: float = DEFAULT_NODE_BANDWIDTH_CAPACITY,
        profiles: str = "table2",
    ) -> None:
        if node_bandwidth_capacity <= 0:
            raise ValueError("node_bandwidth_capacity must be positive")
        self.contention_coefficient = float(contention_coefficient)
        self.node_bandwidth_capacity = float(node_bandwidth_capacity)
        self.profiles = profiles
        self._profile_set = get_profile_set(profiles)

    # ------------------------------------------------------------------ #
    def application(self, name: Optional[str]) -> ApplicationModel:
        """Profile of an application label under the configured set."""
        return lookup_application(name, self._profile_set)

    def bandwidth_demand(self, app: ApplicationModel) -> float:
        """Bandwidth demand of one application, in units of node capacity 1.0."""
        return app.memory_intensity

    def bandwidth_feasible(self, apps: Iterable[ApplicationModel]) -> bool:
        """Whether the applications' combined demand fits the node."""
        demand = sum(self.bandwidth_demand(app) for app in apps)
        return demand <= self.node_bandwidth_capacity

    def allows_pairing(self, *jobs: Job) -> bool:
        """Whether the jobs may share a node without oversubscribing it."""
        return self.bandwidth_feasible(
            self.application(job.application) for job in jobs
        )

    def slowdown(
        self, app: ApplicationModel, co_runner_intensities: Iterable[float]
    ) -> float:
        """Co-run slowdown of ``app`` under this model's coefficient."""
        return co_run_slowdown(app, co_runner_intensities, self.contention_coefficient)


class ApplicationAwareRuntimeModel(RuntimeModel):
    """Runtime model that honours application scaling and co-run interference.

    Implements the same ``speed(job, cpus_per_node)`` protocol as the
    ideal/worst-case models, so it can be plugged into the simulation driver
    directly.  It needs to see the cluster to know which jobs share nodes;
    attach it with :meth:`bind_cluster` (the simulation driver and the
    emulator do this for you).
    """

    name = "application_aware"

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        contention_coefficient: float = DEFAULT_CONTENTION_COEFFICIENT,
        job_lookup: Optional[Mapping[int, Job]] = None,
        contention: Optional[ContentionModel] = None,
    ) -> None:
        self.contention = (
            contention
            if contention is not None
            else ContentionModel(contention_coefficient=contention_coefficient)
        )
        self.cluster = cluster
        self._job_lookup = job_lookup or {}

    @property
    def contention_coefficient(self) -> float:
        return self.contention.contention_coefficient

    def bind_cluster(self, cluster: Cluster, job_lookup: Mapping[int, Job]) -> None:
        """Attach the cluster and the job table used to resolve co-runners."""
        self.cluster = cluster
        self._job_lookup = job_lookup

    # ------------------------------------------------------------------ #
    def _co_runner_intensities(self, job: Job, node_ids: Iterable[int]) -> list:
        intensities = []
        if self.cluster is None:
            return intensities
        for nid in node_ids:
            node = self.cluster.node(nid)
            for other_id in node.jobs:
                if other_id == job.job_id:
                    continue
                other = self._job_lookup.get(other_id)
                other_app = self.contention.application(
                    other.application if other else None
                )
                intensities.append(other_app.memory_intensity)
        return intensities

    def speed(self, job: Job, cpus_per_node: Dict[int, int]) -> float:
        """Relative progress rate of the job under the given allocation."""
        if not cpus_per_node:
            return 0.0
        app = self.contention.application(job.application)
        # Statically balanced multi-node applications are limited by their
        # most-shrunk node (worst-case structure), but the per-fraction cost
        # follows the application's own scaling curve.
        per_node_request = job.requested_cpus / max(1, job.requested_nodes)
        worst_fraction = min(cpus_per_node.values()) / per_node_request
        worst_fraction = min(1.0, worst_fraction)
        base = app.shrink_speed(worst_fraction)
        interference = self.contention.slowdown(
            app, self._co_runner_intensities(job, cpus_per_node.keys())
        )
        return max(0.0, base / interference)
