"""The co-scheduling policy family: protocol + registry.

:class:`CoSchedulingPolicy` is the protocol extracted from
:class:`repro.core.sd_policy.SDPolicyScheduler` — the surface the simulation
driver and the backfill framework rely on when a scheduler co-schedules
malleable jobs.  Any scheduler implementing it (SD-Policy, UB-Policy, or an
external extension) can be swept, traced and compared through the same
machinery.

The registry maps policy names (and their historical aliases) to factories,
so ``run_workload``, scenario specs and the CLI resolve ``--policy`` through
one table; unknown names raise a ``ValueError`` (``ScenarioError``-
compatible) naming every available policy.  Register your own policy with::

    from repro.core.policy import register_policy

    register_policy("my_policy", lambda **kw: MyScheduler(**kw),
                    aliases=("mine",))

and it becomes selectable everywhere a policy name is accepted, including
``ScenarioSpec`` grids and the ``policy_faceoff`` scenario.

Factories import their scheduler classes lazily so this module stays free
of import cycles (the scheduler classes themselves import core modules).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Mapping,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.job import Job
    from repro.simulator.reservation import ReservationMap
    from repro.simulator.simulation import Simulation


@runtime_checkable
class CoSchedulingPolicy(Protocol):
    """What the simulation driver expects from a co-scheduling policy.

    Extracted from ``SDPolicyScheduler``: a scheduler that, on top of the
    plain scheduling hooks (``bind``/``on_pass_start``/``on_job_submit``/
    ``on_job_end``), can attempt to start a pending malleable job by
    shrinking running mates, and reports its decision counters.
    """

    #: Human-readable policy identity (lands in traces and reports).
    name: str
    #: Whether a scheduling pass is still useful with zero free nodes
    #: (co-scheduling policies say yes: shrinking needs no free nodes).
    schedule_when_saturated: bool

    def bind(self, sim: "Simulation") -> None: ...

    def on_pass_start(self, sim: "Simulation") -> None: ...

    def on_job_submit(self, sim: "Simulation", job: "Job") -> None: ...

    def on_job_end(self, sim: "Simulation", job: "Job") -> None: ...

    def try_malleable_start(
        self,
        sim: "Simulation",
        job: "Job",
        profile: "ReservationMap",
        estimated_start: float,
        work_ahead_cpu_seconds: float = 0.0,
    ) -> bool: ...

    def stats(self) -> Mapping[str, int]: ...


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[..., Any]] = {}
_ALIASES: Dict[str, str] = {}
#: Canonical names of policies that accept a ``profiles`` keyword (profile
#: set selection); ``run_workload`` uses this to forward ``--profiles``.
_PROFILE_AWARE: set = set()


def register_policy(
    name: str,
    factory: Callable[..., Any],
    aliases: Sequence[str] = (),
    accepts_profiles: bool = False,
) -> None:
    """Register a policy factory under a canonical name plus aliases.

    The factory receives the policy keyword arguments of ``run_workload``
    and must return a scheduler instance.  Re-registering a name replaces
    the previous factory (latest wins), so tests can shadow built-ins.
    """
    canonical = name.lower()
    _FACTORIES[canonical] = factory
    _ALIASES[canonical] = canonical
    for alias in aliases:
        _ALIASES[alias.lower()] = canonical
    if accepts_profiles:
        _PROFILE_AWARE.add(canonical)


def available_policies() -> Tuple[str, ...]:
    """Sorted canonical names of every registered policy."""
    return tuple(sorted(_FACTORIES))


def resolve_policy_name(name: str) -> str:
    """Canonical name for a policy name or alias, with a naming error."""
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        raise ValueError(
            f"unknown policy {name!r}; available: "
            + ", ".join(available_policies())
        )
    return canonical


def policy_accepts_profiles(name: str) -> bool:
    """Whether the named policy takes a ``profiles`` keyword argument."""
    return resolve_policy_name(name) in _PROFILE_AWARE


def make_policy(name: str, **kwargs: Any) -> Any:
    """Instantiate a registered policy by name or alias."""
    return _FACTORIES[resolve_policy_name(name)](**kwargs)


# --------------------------------------------------------------------- #
# Built-in family (lazy imports keep the module cycle-free)
# --------------------------------------------------------------------- #
def _make_fcfs(**kwargs: Any) -> Any:
    from repro.schedulers.fcfs import FCFSScheduler

    # FCFS has no options; stray kwargs are ignored (historical behaviour,
    # which lets one sweep grid drive policies with different knobs).
    return FCFSScheduler()


def _make_backfill(**kwargs: Any) -> Any:
    from repro.schedulers.backfill import BackfillScheduler

    return BackfillScheduler(**kwargs)


def _make_sd_policy(**kwargs: Any) -> Any:
    from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler

    return SDPolicyScheduler(SDPolicyConfig(**kwargs))


def _make_ub_policy(**kwargs: Any) -> Any:
    from repro.core.ub_policy import UBPolicyConfig, UBPolicyScheduler

    return UBPolicyScheduler(UBPolicyConfig(**kwargs))


register_policy("fcfs", _make_fcfs)
register_policy("static_backfill", _make_backfill, aliases=("backfill", "static"))
register_policy("sd_policy", _make_sd_policy, aliases=("sd", "sdpolicy"))
register_policy(
    "ub_policy",
    _make_ub_policy,
    aliases=("ub", "ubpolicy", "uberun"),
    accepts_profiles=True,
)
