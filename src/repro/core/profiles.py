"""Application performance profiles (Table 2), promoted to the core layer.

Each profile captures the two properties the paper identifies as the source
of the real-run gains (Section 4.4):

1. *Imperfect scalability* — applications do not scale perfectly to all 48
   cores of a MareNostrum4 node, so giving up half of the cores costs them
   less than half of their speed.  We model the speed at a fraction ``f`` of
   the requested cores as ``f ** parallel_alpha`` (``alpha = 1`` is perfect
   scaling, smaller values mean the application is increasingly limited by
   something other than core count — typically memory bandwidth).
2. *Resource complementarity* — memory-bound applications leave cores
   under-utilised that a compute-bound co-runner can exploit; conversely,
   two memory-bound applications sharing a node contend for bandwidth.  The
   per-application ``cpu_utilization`` and ``memory_intensity`` feed the
   interference, bandwidth-feasibility and energy models.

The concrete numbers are calibrated to the qualitative characterisation of
Table 2 (PILS compute-bound / low memory, STREAM memory-bound / low CPU,
CoreNeuron & NEST compute+memory intensive, Alya multi-physics) and to the
DROM paper's observation that shrinking costs little for memory-bound codes.

This module is the single source of truth for the profiles; the historical
:mod:`repro.realrun.apps` module re-exports it for backwards compatibility.
Profiles are grouped into named *profile sets* so policies and runtime
models can be pointed at a different calibration (``--profiles`` on the
CLI); the schema of a profile is fingerprinted in ``formats.lock`` under
:data:`PROFILE_SCHEMA_VERSION`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

#: Version of the persisted/fingerprinted profile schema.  Bump whenever the
#: fields of :class:`ApplicationModel` or the named profile sets change
#: meaning, so ``formats.lock`` catches accidental drift.
PROFILE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ApplicationModel:
    """Performance profile of one application of the real-run workload.

    Attributes
    ----------
    name:
        Application name as used in Table 2.
    cpu_utilization:
        Fraction of an assigned core's cycles the application actually uses
        (drives the dynamic part of the energy model).
    memory_intensity:
        How strongly the application presses on the memory subsystem
        (0 = negligible, 1 = STREAM-like saturation); drives interference
        and the bandwidth-capacity feasibility check of UB-Policy.
    memory_sensitivity:
        How much the application *suffers* from a co-runner's memory
        pressure (usually correlated with its own intensity).
    parallel_alpha:
        Exponent of the core-fraction speed model ``speed = f ** alpha``.
        1.0 = perfectly scalable, 0 = completely insensitive to core count.
    """

    name: str
    cpu_utilization: float
    memory_intensity: float
    memory_sensitivity: float
    parallel_alpha: float

    def shrink_speed(self, fraction: float) -> float:
        """Relative speed when running on ``fraction`` of the requested cores."""
        if fraction >= 1.0:
            return 1.0
        if fraction <= 0.0:
            return 0.0
        return fraction ** self.parallel_alpha


#: The Table 2 applications.
APPLICATIONS: Dict[str, ApplicationModel] = {
    "PILS": ApplicationModel(
        name="PILS", cpu_utilization=0.95, memory_intensity=0.10,
        memory_sensitivity=0.10, parallel_alpha=0.95,
    ),
    "STREAM": ApplicationModel(
        name="STREAM", cpu_utilization=0.40, memory_intensity=0.95,
        memory_sensitivity=0.90, parallel_alpha=0.30,
    ),
    "CoreNeuron": ApplicationModel(
        name="CoreNeuron", cpu_utilization=0.85, memory_intensity=0.55,
        memory_sensitivity=0.50, parallel_alpha=0.80,
    ),
    "NEST": ApplicationModel(
        name="NEST", cpu_utilization=0.85, memory_intensity=0.55,
        memory_sensitivity=0.50, parallel_alpha=0.80,
    ),
    "Alya": ApplicationModel(
        name="Alya", cpu_utilization=0.90, memory_intensity=0.60,
        memory_sensitivity=0.55, parallel_alpha=0.85,
    ),
}

#: Profile used for jobs without an application label (e.g. plain simulator
#: workloads passed through the real-run machinery): perfectly scalable and
#: fully CPU-bound, which reduces to the plain worst-case/ideal behaviour.
DEFAULT_APPLICATION = ApplicationModel(
    name="generic", cpu_utilization=1.0, memory_intensity=0.3,
    memory_sensitivity=0.3, parallel_alpha=1.0,
)

#: Named profile sets selectable via ``--profiles``.  ``table2`` is the
#: paper's calibration; ``uniform`` maps every label to the generic profile,
#: which neutralises all profile-driven behaviour (useful as an ablation).
PROFILE_SETS: Dict[str, Mapping[str, ApplicationModel]] = {
    "table2": APPLICATIONS,
    "uniform": {},
}

#: Stable enumeration of the available profile sets (fingerprinted).
PROFILE_SET_NAMES: Tuple[str, ...] = tuple(sorted(PROFILE_SETS))


def get_profile_set(name: str) -> Mapping[str, ApplicationModel]:
    """Look up a named profile set, naming the candidates on a miss."""
    try:
        return PROFILE_SETS[name]
    except KeyError:
        available = ", ".join(PROFILE_SET_NAMES)
        raise ValueError(
            f"unknown profile set {name!r}; available: {available}"
        ) from None


def lookup_application(
    name: Optional[str],
    profile_set: Optional[Mapping[str, ApplicationModel]] = None,
) -> ApplicationModel:
    """Look up an application profile in a set (case-insensitive, defaulting)."""
    if name is None:
        return DEFAULT_APPLICATION
    table = APPLICATIONS if profile_set is None else profile_set
    for key, model in table.items():
        if key.lower() == name.lower():
            return model
    return DEFAULT_APPLICATION


def get_application(name: Optional[str]) -> ApplicationModel:
    """Look up an application model by name (case-insensitive, with default)."""
    return lookup_application(name)
