"""UB-Policy: Uberun-style contention-aware malleable co-scheduling.

UB-Policy keeps SD-Policy's slowdown-driven skeleton (Listing 1: static
estimate vs malleable estimate, mate selection, shrink + start) but
allocates from per-application profiles (:mod:`repro.core.profiles`)
through a :class:`repro.core.contention.ContentionModel`:

* candidate mates are ordered complementarity-first — a compute-bound mate
  is preferred over an equally-penalised memory-bound one, because the
  guest will suffer less interference next to it;
* pairings whose combined memory-bandwidth demand oversubscribes a node are
  refused outright, both at candidate construction and again for every
  per-node CPU split (``plan_node_sharing``'s capacity check);
* a refusal caused by the capacity check is reported as a ``mate_rejected``
  trace event with the typed reason ``"bandwidth"`` and counted in
  ``stats()["rejected_bandwidth"]``.

This mirrors Uberun's admission rule (refuse co-schedules that oversubscribe
memory bandwidth; pair complementary applications) on top of the paper's
malleability machinery, so the two philosophies can be compared head-to-head
in the ``policy_faceoff`` scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.contention import (
    DEFAULT_CONTENTION_COEFFICIENT,
    DEFAULT_NODE_BANDWIDTH_CAPACITY,
    ContentionModel,
)
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


@dataclass
class UBPolicyConfig(SDPolicyConfig):
    """Tunable parameters of UB-Policy (SD-Policy's knobs plus contention).

    Attributes
    ----------
    contention_coefficient:
        Strength of the memory-bandwidth interference term.
    node_bandwidth_capacity:
        Per-node bandwidth budget the admission check enforces (in units of
        one fully memory-bound application's demand).
    profiles:
        Named profile set (:data:`repro.core.profiles.PROFILE_SETS`) the
        policy allocates from; ``"uniform"`` neutralises all
        profile-driven behaviour and reduces UB-Policy to SD-Policy.
    """

    contention_coefficient: float = DEFAULT_CONTENTION_COEFFICIENT
    node_bandwidth_capacity: float = DEFAULT_NODE_BANDWIDTH_CAPACITY
    profiles: str = "table2"

    def build_contention(self) -> ContentionModel:
        """Contention model the selector and sharing planner consult."""
        return ContentionModel(
            contention_coefficient=self.contention_coefficient,
            node_bandwidth_capacity=self.node_bandwidth_capacity,
            profiles=self.profiles,
        )


class UBPolicyScheduler(SDPolicyScheduler):
    """Uberun-style profile-driven malleable backfill (UB-Policy)."""

    def __init__(self, config: Optional[UBPolicyConfig] = None) -> None:
        super().__init__(config or UBPolicyConfig())
        self.name = (
            f"ub_policy[{self.cutoff.label},SF={self.config.sharing_factor:g},"
            f"BW={self.config.node_bandwidth_capacity:g}]"
        )
        self.rejected_bandwidth = 0

    def bind(self, sim: "Simulation") -> None:
        super().bind(sim)
        self.rejected_bandwidth = 0

    def _no_selection_reason(self) -> str:
        """Refine the rejection reason when the capacity check did the work.

        If the selector dropped at least one otherwise-eligible candidate
        for oversubscribing a node's bandwidth and still found no selection,
        the refusal is an Uberun-style admission decision, not a lack of
        mates — report it as such.
        """
        if self.selector.bandwidth_rejections > 0:
            self.rejected_bandwidth += 1
            return "bandwidth"
        return "no_mates"

    def stats(self) -> Dict[str, int]:
        stats = dict(super().stats())
        stats["rejected_bandwidth"] = self.rejected_bandwidth
        return stats
