"""Scheduling policies.

* :class:`repro.schedulers.fcfs.FCFSScheduler` — plain first-come
  first-served without backfill.
* :class:`repro.schedulers.backfill.BackfillScheduler` — the paper's
  *static backfill* baseline (conservative backfill over whole-node,
  exclusive allocations, SLURM ``sched/backfill`` style).
* :class:`repro.core.sd_policy.SDPolicyScheduler` — the paper's
  contribution, re-exported here for convenience.
"""

from repro.schedulers.backfill import BackfillScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import FCFSScheduler

__all__ = ["Scheduler", "FCFSScheduler", "BackfillScheduler"]
