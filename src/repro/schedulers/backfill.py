"""Static backfill baseline (SLURM ``sched/backfill`` style).

This is the paper's comparison point ("static backfill"): whole-node,
exclusive allocations, jobs examined in priority order, and *conservative*
backfill — every examined job that cannot start immediately gets a
reservation in the future-availability profile, and lower-priority jobs may
only start now if doing so does not push any of those reservations back.
This mirrors how the SLURM backfill plug-in builds its reservation map up to
``bf_max_job_test`` jobs deep.

The SD-Policy scheduler (:mod:`repro.core.sd_policy`) extends this class by
adding the malleable scheduling attempt right after the static trial of each
job fails, exactly as in Listing 1 of the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import Scheduler
from repro.simulator.reservation import ReservationMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.job import Job
    from repro.simulator.simulation import Simulation


class BackfillScheduler(Scheduler):
    """Conservative backfill over exclusive whole-node allocations.

    Parameters
    ----------
    max_job_test:
        Maximum number of pending jobs examined per scheduling pass
        (SLURM's ``bf_max_job_test``).  Jobs beyond this depth simply wait
        for a later pass.
    """

    name = "static_backfill"

    #: Whether a scheduling pass is useful when the cluster has zero free
    #: nodes.  Static backfill cannot start anything in that state, so the
    #: pass is skipped (a large saving on saturated workloads); SD-Policy
    #: overrides this because malleable co-scheduling works precisely when
    #: no free nodes are left.
    schedule_when_saturated = False

    def __init__(self, max_job_test: int = 100) -> None:
        if max_job_test <= 0:
            raise ValueError("max_job_test must be positive")
        self.max_job_test = max_job_test

    # ------------------------------------------------------------------ #
    # Hooks for subclasses (SD-Policy overrides ``try_malleable_start``)
    # ------------------------------------------------------------------ #
    def try_malleable_start(
        self,
        sim: "Simulation",
        job: "Job",
        profile: ReservationMap,
        estimated_start: float,
        work_ahead_cpu_seconds: float = 0.0,
    ) -> bool:
        """Attempt a non-static start for a job whose static trial failed.

        The base (static) policy never does; SD-Policy overrides this with
        the slowdown-driven malleable co-scheduling attempt.  Must return
        True if the job was started.

        ``work_ahead_cpu_seconds`` is the total requested work (CPU·seconds)
        of the running jobs plus the higher-priority pending jobs — a cheap
        lower bound on how long this job must wait that stays meaningful
        even for queue positions beyond the reservation depth
        (``max_job_test``).
        """
        return False

    def on_pass_start(self, sim: "Simulation") -> None:
        """Hook called at the beginning of every scheduling pass."""

    @staticmethod
    def running_requested_work(sim: "Simulation") -> float:
        """Remaining requested work (CPU·seconds) of the running jobs."""
        now = sim.now
        total = 0.0
        for job in sim.running.values():
            if job.start_time is None:
                continue
            remaining = max(0.0, job.start_time + job.requested_time - now)
            total += remaining * job.requested_cpus
        return total

    # ------------------------------------------------------------------ #
    def schedule(self, sim: "Simulation") -> None:
        if sim.cluster.num_free_nodes == 0 and not self.schedule_when_saturated:
            return
        self.on_pass_start(sim)
        profile = sim.availability_profile()
        work_ahead = self.running_requested_work(sim)
        trace = sim.trace
        examined = 0
        blocked_ahead = 0  # higher-priority jobs that could not start this pass
        for job in sim.pending.ordered():
            if examined >= self.max_job_test:
                break
            examined += 1
            # Static trial: can the job start right now on free nodes without
            # delaying any reservation made earlier in this pass?
            est_start = profile.earliest_start(job.requested_nodes, job.requested_time)
            if est_start <= sim.now and sim.cluster.can_allocate(job):
                sim.start_job_static(job)
                profile.add_reservation(sim.now, job.requested_time, job.requested_nodes)
                work_ahead += job.requested_cpus * job.requested_time
                if trace is not None and blocked_ahead:
                    # Started out of priority order: the job slipped into a
                    # hole ahead of blocked higher-priority jobs — backfill.
                    trace.emit(
                        "backfill_hole",
                        sim.now,
                        job=job.job_id,
                        nodes=job.requested_nodes,
                        ahead=blocked_ahead,
                        est_start=est_start,
                    )
                continue
            # Static start not possible now: give the subclass a chance to
            # start the job through malleability.
            if self.try_malleable_start(sim, job, profile, est_start, work_ahead):
                work_ahead += job.requested_cpus * job.requested_time
                continue
            # Conservative reservation so later jobs cannot delay this one.
            if est_start != float("inf"):
                profile.add_reservation(est_start, job.requested_time, job.requested_nodes)
            work_ahead += job.requested_cpus * job.requested_time
            blocked_ahead += 1
