"""Scheduler interface.

A scheduler is the simulator-side equivalent of the SLURM controller
(``slurmctld``) plug-ins the paper modifies.  The simulation driver invokes
:meth:`Scheduler.schedule` once per event instant (after submissions and
completions at that instant have been processed) and the two optional hooks
on individual submit/end events.

Malleable co-scheduling policies (SD-Policy, UB-Policy) additionally
satisfy the :class:`repro.core.policy.CoSchedulingPolicy` protocol — this
abstract base provides the simulator-facing half of that protocol, and the
registry in :mod:`repro.core.policy` resolves policy names to instances.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulator.job import Job
    from repro.simulator.simulation import Simulation


class Scheduler(abc.ABC):
    """Abstract scheduling policy."""

    #: Human-readable policy name used in results and reports.
    name: str = "abstract"

    def bind(self, sim: "Simulation") -> None:
        """Called once when the scheduler is attached to a simulation.

        Policies that keep per-run state (e.g. the dynamic MAX_SLOWDOWN
        cut-off) reset it here so a scheduler instance can be reused across
        runs.
        """

    def on_job_submit(self, sim: "Simulation", job: "Job") -> None:
        """Hook invoked when a job enters the pending queue."""

    def on_job_end(self, sim: "Simulation", job: "Job") -> None:
        """Hook invoked when a job finishes (resources already released)."""

    @abc.abstractmethod
    def schedule(self, sim: "Simulation") -> None:
        """Run one scheduling pass over the pending queue."""
