"""First-come first-served scheduling (no backfill).

Provided as the simplest possible baseline and as a correctness reference
for the simulator: under FCFS, job start order must follow submission order
exactly, which several tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


class FCFSScheduler(Scheduler):
    """Strict FCFS: start pending jobs in priority order, stop at the first
    job that does not fit."""

    name = "fcfs"

    def schedule(self, sim: "Simulation") -> None:
        for job in sim.pending.ordered():
            if sim.cluster.can_allocate(job):
                sim.start_job_static(job)
            else:
                break
