"""Comparisons against the static backfill baseline.

The paper's Figures 1–3 and 8–9 report every metric *normalised to the
static backfill simulation* (values below 1.0 are improvements) or as an
*improvement percentage*.  These helpers implement exactly those two
transformations for :class:`repro.metrics.aggregates.WorkloadMetrics`
objects or plain dicts.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.metrics.aggregates import WorkloadMetrics

MetricsLike = Union[WorkloadMetrics, Mapping[str, float]]

#: Metrics where lower is better (everything the paper normalises).
LOWER_IS_BETTER = (
    "makespan",
    "avg_response_time",
    "avg_wait_time",
    "avg_slowdown",
    "avg_bounded_slowdown",
    "median_slowdown",
    "p95_slowdown",
    "energy_joules",
)


def _as_dict(metrics: MetricsLike) -> Dict[str, float]:
    if isinstance(metrics, WorkloadMetrics):
        return metrics.as_dict()
    return dict(metrics)


def normalize_to_baseline(
    metrics: MetricsLike,
    baseline: MetricsLike,
    keys: tuple = ("makespan", "avg_response_time", "avg_slowdown"),
) -> Dict[str, float]:
    """Metric / baseline-metric for the requested keys (paper Figs. 1-3, 8).

    A value of 0.3 for ``avg_slowdown`` means the policy achieved 30% of the
    baseline's average slowdown, i.e. a 70% reduction.
    """
    m = _as_dict(metrics)
    b = _as_dict(baseline)
    out: Dict[str, float] = {}
    for key in keys:
        base = b.get(key, 0.0)
        if base == 0:
            out[key] = float("nan")
        else:
            out[key] = m.get(key, 0.0) / base
    return out


def improvement_percent(
    metrics: MetricsLike,
    baseline: MetricsLike,
    keys: tuple = ("makespan", "avg_response_time", "avg_slowdown", "energy_joules"),
) -> Dict[str, float]:
    """Percentage improvement over the baseline (paper Fig. 9 convention).

    Positive values mean the policy improved (reduced) the metric; e.g.
    ``avg_slowdown: 70.0`` is the paper's "70% slowdown reduction".
    """
    normalized = normalize_to_baseline(metrics, baseline, keys)
    return {key: (1.0 - value) * 100.0 for key, value in normalized.items()}
