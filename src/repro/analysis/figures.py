"""Text-mode figure rendering.

No plotting library is available offline, so the regenerated figures are
emitted as aligned text: horizontal bar charts for the normalised-metric
figures (1–3, 8, 9), a numeric grid for the heatmaps (4–6) and a two-series
day table for Figure 7.  Each renderer mirrors the corresponding figure's
structure so a visual side-by-side comparison with the paper is direct.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence

from repro.analysis.tables import format_table
from repro.metrics.heatmap import CategoryGrid


def render_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    reference: float = 1.0,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of label → value, with a reference mark.

    Used for the "normalised to static backfill" figures: the reference line
    (1.0) is the static baseline; shorter bars are improvements.
    """
    if not values:
        return f"{title}\n(no data)"
    finite = [v for v in values.values() if math.isfinite(v)]
    vmax = max(finite + [reference]) if finite else reference
    scale = width / vmax if vmax > 0 else 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        if not math.isfinite(value):
            lines.append(f"{label.ljust(label_w)} | (n/a)")
            continue
        bar = "#" * max(1, int(round(value * scale)))
        lines.append(f"{label.ljust(label_w)} | {bar} {fmt.format(value)}")
    ref_pos = int(round(reference * scale))
    lines.append(f"{' ' * label_w} | {' ' * (ref_pos - 1)}^ baseline={reference:g}")
    return "\n".join(lines)


def render_heatmap(grid: CategoryGrid, title: str = "", precision: int = 2) -> str:
    """Numeric grid of a :class:`CategoryGrid` (rows = node bins, cols = runtime bins).

    Empty categories are rendered as ``-`` (the paper leaves them blank).
    """
    headers = ["nodes \\ runtime"] + list(grid.runtime_labels)
    rows: List[List[object]] = []
    for i, node_label in enumerate(grid.node_labels):
        row: List[object] = [node_label]
        for j in range(len(grid.runtime_labels)):
            value = grid.values[i, j]
            row.append(float(value) if math.isfinite(value) else float("nan"))
        # Skip rows with no data at all to keep the output compact.
        if all(isinstance(v, float) and math.isnan(v) for v in row[1:]):
            continue
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)


def render_series(
    rows: Sequence[Mapping[str, float]],
    x_key: str,
    series_keys: Sequence[str],
    title: str = "",
    precision: int = 2,
) -> str:
    """Tabular rendering of one or more series over a shared x axis (Fig. 7)."""
    headers = [x_key] + list(series_keys)
    table_rows = [[row.get(x_key)] + [row.get(k, float("nan")) for k in series_keys] for row in rows]
    return format_table(headers, table_rows, precision=precision, title=title)
