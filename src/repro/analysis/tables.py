"""Plain-text table rendering for experiment reports.

The benchmarks and examples print the regenerated tables/figures as
monospace text (no plotting dependency is available offline), using these
helpers for consistent formatting.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

from repro.metrics.aggregates import WorkloadMetrics

Cell = Union[str, float, int]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def metrics_table(
    results: Mapping[str, WorkloadMetrics],
    keys: Sequence[str] = (
        "num_jobs",
        "makespan",
        "avg_response_time",
        "avg_slowdown",
        "malleable_scheduled",
        "energy_joules",
    ),
    title: Optional[str] = None,
) -> str:
    """Render a {label: WorkloadMetrics} mapping as a table (one row per label)."""
    headers = ["policy"] + list(keys)
    rows = []
    for label, metrics in results.items():
        data = metrics.as_dict()
        rows.append([label] + [data.get(k, float("nan")) for k in keys])
    return format_table(headers, rows, title=title)
