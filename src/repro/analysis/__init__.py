"""Analysis helpers: comparisons against the static baseline, text tables
and text figures used to regenerate the paper's tables and figures."""

from repro.analysis.comparison import improvement_percent, normalize_to_baseline
from repro.analysis.figures import render_bar_chart, render_heatmap, render_series
from repro.analysis.tables import format_table, metrics_table

__all__ = [
    "format_table",
    "improvement_percent",
    "metrics_table",
    "normalize_to_baseline",
    "render_bar_chart",
    "render_heatmap",
    "render_series",
]
