"""Application-aware energy accounting for the real-run emulation.

The plain simulator charges every assigned CPU at full dynamic power.  The
real-run applications differ: STREAM keeps cores stalled on memory (low
effective CPU utilisation), PILS saturates them, and so on.  Energy is
therefore recomputed from each job's resource history weighted by its
application's ``cpu_utilization``, on top of the idle power of the 49-node
system over the makespan — the same structure as the paper's "energy
reported by system software".
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.metrics.energy import LinearPowerModel, workload_energy
from repro.realrun.apps import get_application
from repro.simulator.job import Job


def real_run_energy(
    jobs: Iterable[Job],
    num_nodes: int,
    cpus_per_node: int,
    power_model: Optional[LinearPowerModel] = None,
) -> float:
    """Energy (joules) of a real-run workload execution."""
    return workload_energy(
        jobs,
        num_nodes=num_nodes,
        cpus_per_node=cpus_per_node,
        power_model=power_model or LinearPowerModel(),
        utilization_of=lambda job: get_application(job.application).cpu_utilization,
    )
