"""The emulated MareNostrum4 real run (Figure 9).

:class:`RealRunEmulator` replays the paper's workload 5 (2000 Cirne-model
jobs converted into PILS/STREAM/CoreNeuron/NEST/Alya submissions) on a
49-node system twice — once under static backfill and once under SD-Policy —
using the application-aware runtime and energy models, and reports the
percentage improvements the paper plots in Figure 9 (makespan, average
response time, average slowdown, energy).  The static/SD pair is expressed
as a declarative scenario and fans out through the parallel sweep runner
(both runs hit the on-disk result cache when one is configured).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.metrics.aggregates import WorkloadMetrics
from repro.metrics.energy import LinearPowerModel
from repro.simulator.job import Job
from repro.workloads.job_record import Workload
from repro.workloads.presets import workload_5


@dataclass
class RealRunOutcome:
    """Results of the static-vs-SD comparison on the emulated system."""

    improvements: Dict[str, float]
    static_metrics: WorkloadMetrics
    sd_metrics: WorkloadMetrics
    better_runtime_jobs: int
    malleable_scheduled: int
    static_jobs: List[Job] = field(default_factory=list)
    sd_jobs: List[Job] = field(default_factory=list)
    wall_clock_seconds: float = 0.0


class RealRunEmulator:
    """Run the real-run experiment at a configurable scale.

    Parameters
    ----------
    scale:
        Fraction of the paper's 2000-job / 49-node configuration.
    sharing_factor / max_slowdown:
        SD-Policy configuration (paper: SharingFactor 0.5).
    contention_coefficient:
        Strength of the memory-contention term of the interference model.
    seed:
        Workload generation seed.
    """

    def __init__(
        self,
        scale: float = 1.0,
        sharing_factor: float = 0.5,
        max_slowdown: Union[float, str] = "dynamic",
        contention_coefficient: float = 0.15,
        power_model: Optional[LinearPowerModel] = None,
        seed: int = 5005,
        workload: Optional[Workload] = None,
    ) -> None:
        self.scale = scale
        self.sharing_factor = sharing_factor
        self.max_slowdown = max_slowdown
        self.contention_coefficient = contention_coefficient
        self.power_model = power_model or LinearPowerModel()
        self.seed = seed
        self.workload = workload if workload is not None else workload_5(scale=scale, seed=seed)

    @staticmethod
    def _better_runtime_jobs(jobs: List[Job]) -> int:
        """Count malleable-scheduled jobs whose runtime, proportioned to the
        resources they actually used, beats the static execution.

        This is the paper's "449 jobs out of 539 scheduled with malleability
        have a better runtime compared to the static execution, if we
        proportionate it to the number of used resources" statistic.
        """
        better = 0
        for job in jobs:
            if not job.scheduled_malleable or job.actual_runtime is None:
                continue
            # CPU-seconds actually consumed versus the static execution.
            consumed = sum(
                slot.total_cpus * slot.duration
                for slot in job.resource_history
                if slot.duration > 0 and slot.duration != float("inf")
            )
            static_consumption = job.static_runtime * job.requested_cpus
            if consumed < static_consumption:
                better += 1
        return better

    # ------------------------------------------------------------------ #
    def scenario_spec(self):
        """The declarative scenario describing this emulation's run pair."""
        from repro.experiments.scenario import builtin_scenario
        from repro.realrun.interference import DEFAULT_CONTENTION_COEFFICIENT

        spec = builtin_scenario(
            "figure9",
            scale=self.scale,
            seed=self.seed,
            sharing_factor=self.sharing_factor,
            max_slowdown=self.max_slowdown,
        )
        if self.contention_coefficient != DEFAULT_CONTENTION_COEFFICIENT:
            spec.base["contention_coefficient"] = self.contention_coefficient
            spec.baseline["kwargs"]["contention_coefficient"] = self.contention_coefficient
        return spec

    def compare(self, runner=None) -> RealRunOutcome:
        """Run static backfill and SD-Policy and compute the improvements.

        ``runner`` is an optional :class:`repro.experiments.sweep.SweepRunner`
        controlling the fan-out (worker count, result cache).  A runner with
        a sharded executor is rejected: the comparison needs both runs, so
        finish every shard and pass an unsharded runner (same cache dir).
        """
        from repro.experiments.scenario import realrun_improvements, run_scenario
        from repro.experiments.sweep import ExecutorError

        started = time.perf_counter()
        outcome = run_scenario(self.scenario_spec(), runner=runner, workloads=self.workload)
        if not outcome.complete:
            sweep = outcome.sweep
            raise ExecutorError(
                f"real-run comparison needs the full static/SD pair but the "
                f"sharded runner completed only {len(sweep)}/{sweep.total_tasks} "
                "tasks; run the remaining shards, then compare with an "
                "unsharded runner against the same cache dir"
            )
        stats = realrun_improvements(outcome, power_model=self.power_model)
        return RealRunOutcome(
            improvements=stats["improvements"],
            static_metrics=stats["static_metrics"],
            sd_metrics=stats["sd_metrics"],
            better_runtime_jobs=stats["better_runtime_jobs"],
            malleable_scheduled=stats["malleable_scheduled"],
            static_jobs=stats["static_jobs"],
            sd_jobs=stats["sd_jobs"],
            wall_clock_seconds=time.perf_counter() - started,
        )
