"""The emulated MareNostrum4 real run (Figure 9).

:class:`RealRunEmulator` replays the paper's workload 5 (2000 Cirne-model
jobs converted into PILS/STREAM/CoreNeuron/NEST/Alya submissions) on a
49-node system twice — once under static backfill and once under SD-Policy —
using the application-aware runtime and energy models, and reports the
percentage improvements the paper plots in Figure 9 (makespan, average
response time, average slowdown, energy).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.analysis.comparison import improvement_percent
from repro.core.sd_policy import SDPolicyConfig, SDPolicyScheduler
from repro.metrics.aggregates import WorkloadMetrics, compute_metrics
from repro.metrics.energy import LinearPowerModel
from repro.realrun.apps import get_application
from repro.realrun.energy import real_run_energy
from repro.realrun.interference import ApplicationAwareRuntimeModel
from repro.schedulers.backfill import BackfillScheduler
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job
from repro.simulator.simulation import Simulation
from repro.workloads.job_record import Workload
from repro.workloads.presets import workload_5


@dataclass
class RealRunOutcome:
    """Results of the static-vs-SD comparison on the emulated system."""

    improvements: Dict[str, float]
    static_metrics: WorkloadMetrics
    sd_metrics: WorkloadMetrics
    better_runtime_jobs: int
    malleable_scheduled: int
    static_jobs: List[Job] = field(default_factory=list)
    sd_jobs: List[Job] = field(default_factory=list)
    wall_clock_seconds: float = 0.0


class RealRunEmulator:
    """Run the real-run experiment at a configurable scale.

    Parameters
    ----------
    scale:
        Fraction of the paper's 2000-job / 49-node configuration.
    sharing_factor / max_slowdown:
        SD-Policy configuration (paper: SharingFactor 0.5).
    contention_coefficient:
        Strength of the memory-contention term of the interference model.
    seed:
        Workload generation seed.
    """

    def __init__(
        self,
        scale: float = 1.0,
        sharing_factor: float = 0.5,
        max_slowdown: Union[float, str] = "dynamic",
        contention_coefficient: float = 0.15,
        power_model: Optional[LinearPowerModel] = None,
        seed: int = 5005,
        workload: Optional[Workload] = None,
    ) -> None:
        self.scale = scale
        self.sharing_factor = sharing_factor
        self.max_slowdown = max_slowdown
        self.contention_coefficient = contention_coefficient
        self.power_model = power_model or LinearPowerModel()
        self.seed = seed
        self.workload = workload if workload is not None else workload_5(scale=scale, seed=seed)

    # ------------------------------------------------------------------ #
    def _run(self, scheduler) -> Simulation:
        cluster = Cluster(
            num_nodes=self.workload.system_nodes,
            sockets=2,
            cores_per_socket=max(1, self.workload.cpus_per_node // 2),
        )
        model = ApplicationAwareRuntimeModel(
            contention_coefficient=self.contention_coefficient
        )
        sim = Simulation(cluster, scheduler, runtime_model=model, power_model=None)
        model.bind_cluster(cluster, sim.jobs)
        jobs = self.workload.to_jobs(cpus_per_node=cluster.cpus_per_node)
        sim.submit_jobs(jobs)
        sim.run()
        return sim

    @staticmethod
    def _better_runtime_jobs(jobs: List[Job]) -> int:
        """Count malleable-scheduled jobs whose runtime, proportioned to the
        resources they actually used, beats the static execution.

        This is the paper's "449 jobs out of 539 scheduled with malleability
        have a better runtime compared to the static execution, if we
        proportionate it to the number of used resources" statistic.
        """
        better = 0
        for job in jobs:
            if not job.scheduled_malleable or job.actual_runtime is None:
                continue
            # CPU-seconds actually consumed versus the static execution.
            consumed = sum(
                slot.total_cpus * slot.duration
                for slot in job.resource_history
                if slot.duration > 0 and slot.duration != float("inf")
            )
            static_consumption = job.static_runtime * job.requested_cpus
            if consumed < static_consumption:
                better += 1
        return better

    # ------------------------------------------------------------------ #
    def compare(self) -> RealRunOutcome:
        """Run static backfill and SD-Policy and compute the improvements."""
        started = time.perf_counter()
        static_sim = self._run(BackfillScheduler())
        sd_sim = self._run(
            SDPolicyScheduler(
                SDPolicyConfig(
                    sharing_factor=self.sharing_factor,
                    max_slowdown=self.max_slowdown,
                )
            )
        )
        static_jobs = static_sim.completed
        sd_jobs = sd_sim.completed
        num_nodes = self.workload.system_nodes
        cpus_per_node = self.workload.cpus_per_node
        static_energy = real_run_energy(static_jobs, num_nodes, cpus_per_node, self.power_model)
        sd_energy = real_run_energy(sd_jobs, num_nodes, cpus_per_node, self.power_model)
        static_metrics = compute_metrics(static_jobs, energy_joules=static_energy)
        sd_metrics = compute_metrics(sd_jobs, energy_joules=sd_energy)
        improvements = improvement_percent(sd_metrics, static_metrics)
        return RealRunOutcome(
            improvements=improvements,
            static_metrics=static_metrics,
            sd_metrics=sd_metrics,
            better_runtime_jobs=self._better_runtime_jobs(sd_jobs),
            malleable_scheduled=sd_metrics.malleable_scheduled,
            static_jobs=static_jobs,
            sd_jobs=sd_jobs,
            wall_clock_seconds=time.perf_counter() - started,
        )
