"""Application performance models — compatibility shim.

The profiles were promoted from the real-run emulator into the simulator
core so co-scheduling policies can consult them directly; the single source
of truth is :mod:`repro.core.profiles`.  This module re-exports the
historical names so existing emulator code and external callers keep
working.
"""

from __future__ import annotations

from repro.core.profiles import (
    APPLICATIONS,
    DEFAULT_APPLICATION,
    ApplicationModel,
    get_application,
)

__all__ = [
    "APPLICATIONS",
    "DEFAULT_APPLICATION",
    "ApplicationModel",
    "get_application",
]
