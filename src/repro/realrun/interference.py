"""Node-sharing interference and the application-aware runtime model.

When SD-Policy co-schedules two applications on one node, the node manager
keeps them on separate sockets (Section 3.3), so the remaining interference
is essentially memory-bandwidth contention.  :func:`co_run_slowdown` models
that contention from the applications' memory intensity/sensitivity;
:class:`ApplicationAwareRuntimeModel` combines it with each application's
shrink-scaling curve to produce the speed the simulator integrates, playing
the role that real hardware played in the paper's Section 4.4 run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.realrun.apps import ApplicationModel, get_application
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job

#: Strength of the memory-bandwidth contention term when two socket-isolated
#: applications share a node.  0.15 means a fully memory-bound application
#: co-running with another fully memory-bound application loses ~13% speed
#: (1/1.15), in line with the socket-isolated measurements reported for DROM.
DEFAULT_CONTENTION_COEFFICIENT = 0.15


def co_run_slowdown(
    app: ApplicationModel,
    co_runner_intensities: Iterable[float],
    contention_coefficient: float = DEFAULT_CONTENTION_COEFFICIENT,
) -> float:
    """Multiplicative slowdown (>= 1.0) caused by co-runners on the node.

    The dominant co-runner (highest memory intensity) determines the
    contention; the job's own sensitivity scales how much it suffers.
    """
    worst = 0.0
    for intensity in co_runner_intensities:
        worst = max(worst, intensity)
    return 1.0 + contention_coefficient * app.memory_sensitivity * worst


class ApplicationAwareRuntimeModel:
    """Runtime model that honours application scaling and co-run interference.

    Implements the same ``speed(job, cpus_per_node)`` protocol as the
    ideal/worst-case models, so it can be plugged into the simulation driver
    directly.  It needs to see the cluster to know which jobs share nodes;
    attach it with :meth:`bind_cluster` (the emulator does this for you).
    """

    name = "application_aware"

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        contention_coefficient: float = DEFAULT_CONTENTION_COEFFICIENT,
        job_lookup: Optional[Mapping[int, Job]] = None,
    ) -> None:
        self.cluster = cluster
        self.contention_coefficient = contention_coefficient
        self._job_lookup = job_lookup or {}

    def bind_cluster(self, cluster: Cluster, job_lookup: Mapping[int, Job]) -> None:
        """Attach the cluster and the job table used to resolve co-runners."""
        self.cluster = cluster
        self._job_lookup = job_lookup

    # ------------------------------------------------------------------ #
    def _co_runner_intensities(self, job: Job, node_ids: Iterable[int]) -> list:
        intensities = []
        if self.cluster is None:
            return intensities
        for nid in node_ids:
            node = self.cluster.node(nid)
            for other_id in node.jobs:
                if other_id == job.job_id:
                    continue
                other = self._job_lookup.get(other_id)
                other_app = get_application(other.application if other else None)
                intensities.append(other_app.memory_intensity)
        return intensities

    def speed(self, job: Job, cpus_per_node: Dict[int, int]) -> float:
        """Relative progress rate of the job under the given allocation."""
        if not cpus_per_node:
            return 0.0
        app = get_application(job.application)
        # Statically balanced multi-node applications are limited by their
        # most-shrunk node (worst-case structure), but the per-fraction cost
        # follows the application's own scaling curve.
        per_node_request = job.requested_cpus / max(1, job.requested_nodes)
        worst_fraction = min(cpus_per_node.values()) / per_node_request
        worst_fraction = min(1.0, worst_fraction)
        base = app.shrink_speed(worst_fraction)
        interference = co_run_slowdown(
            app,
            self._co_runner_intensities(job, cpus_per_node.keys()),
            self.contention_coefficient,
        )
        return max(0.0, base / interference)
