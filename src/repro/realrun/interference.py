"""Node-sharing interference — compatibility shim.

The interference/contention model was promoted from the real-run emulator
into the simulator core (:mod:`repro.core.contention`) so schedulers can
consult it at decision time; this module re-exports the historical names so
existing emulator code and external callers keep working.
"""

from __future__ import annotations

from repro.core.contention import (
    DEFAULT_CONTENTION_COEFFICIENT,
    ApplicationAwareRuntimeModel,
    ContentionModel,
    co_run_slowdown,
)

__all__ = [
    "DEFAULT_CONTENTION_COEFFICIENT",
    "ApplicationAwareRuntimeModel",
    "ContentionModel",
    "co_run_slowdown",
]
