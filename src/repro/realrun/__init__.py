"""Emulated "real run" (Section 4.4 of the paper).

The paper validates SD-Policy on 49 nodes of MareNostrum4 by replaying a
2000-job Cirne-model workload converted into submissions of real malleable
applications (PILS, STREAM, CoreNeuron, NEST, Alya).  Hardware access is not
available to this reproduction, so the run is *emulated*: the same SD-Policy
code is driven by the simulator with

* per-application performance models (:mod:`repro.realrun.apps`) capturing
  CPU- vs memory-bound scaling behaviour,
* a node-sharing interference model (:mod:`repro.realrun.interference`)
  reflecting socket-isolated co-scheduling, and
* an application-aware energy model (:mod:`repro.realrun.energy`).

:class:`repro.realrun.emulator.RealRunEmulator` reproduces Figure 9:
the percentage improvement of makespan, average response time, average
slowdown and energy of SD-Policy over static backfill.
"""

from repro.realrun.apps import APPLICATIONS, ApplicationModel, get_application
from repro.realrun.emulator import RealRunEmulator, RealRunOutcome
from repro.realrun.interference import ApplicationAwareRuntimeModel, co_run_slowdown

__all__ = [
    "APPLICATIONS",
    "ApplicationAwareRuntimeModel",
    "ApplicationModel",
    "RealRunEmulator",
    "RealRunOutcome",
    "co_run_slowdown",
    "get_application",
]
