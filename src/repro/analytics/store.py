"""Persist per-job run records behind the existing :class:`ResultStore`.

Records ride the same content-addressed store as the cached runs, under a
derived key (``<cache_key>-records``), wrapped in the standard integrity
envelope so ``store verify``/``repair`` cover them.  Each published run
also writes a small *analytics manifest* —
``analytics-<cache_key[:24]>`` — holding the run's metadata (sweep
coordinates, job count, record schema, digests).  Two jobs for that
manifest:

* **Discovery.**  ``repro-sdpolicy query`` lists ``analytics-*`` manifests
  to see every run with records in a store, and resolves a specific task's
  records by recomputing its cache key — no index file to keep in sync.
* **GC pinning.**  The manifest carries a ``"tasks"`` list naming both the
  run's cache blob and the records blob, so the lifecycle layer's
  :func:`~repro.store.lifecycle.collect_references` keeps both alive and
  ``store gc`` never collects records out from under a query.

The cached *run* blob is deliberately left byte-identical with or without
analytics enabled — the records pointer lives only in this manifest — so
enabling ``--analytics`` never splits or invalidates the run cache.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.analytics.records import RECORD_SCHEMA_VERSION, RunRecords
from repro.store import ResultStore, StoreError, unwrap_blob, wrap_blob

__all__ = [
    "ANALYTICS_MANIFEST_FIELDS",
    "ANALYTICS_MANIFEST_PREFIX",
    "AnalyticsError",
    "analytics_manifest_name",
    "iter_analytics_manifests",
    "load_run_records",
    "publish_run_records",
    "records_key",
]

#: Manifest-name namespace of the analytics layer.
ANALYTICS_MANIFEST_PREFIX = "analytics-"

#: Declared key layout of an analytics manifest
#: (:func:`publish_run_records`).  ``repro.devtools.formats`` fingerprints
#: this into ``formats.lock``: changing the manifest shape without bumping
#: ``RECORD_SCHEMA_VERSION`` fails CI.
ANALYTICS_MANIFEST_FIELDS = (
    "kind",
    "schema",
    "cache_key",
    "records_key",
    "records_digest",
    "rows",
    "meta",
    "tasks",
)

#: Blob-key suffix of a run's serialized records.
_RECORDS_KEY_SUFFIX = "-records"


class AnalyticsError(RuntimeError):
    """A records blob or analytics manifest is missing or unreadable."""


def records_key(cache_key: str) -> str:
    """Store key of the records blob belonging to a cached run."""
    return cache_key + _RECORDS_KEY_SUFFIX


def analytics_manifest_name(cache_key: str) -> str:
    """Deterministic manifest name for a run's analytics entry."""
    return ANALYTICS_MANIFEST_PREFIX + cache_key[:24]


def publish_run_records(
    store: ResultStore,
    cache_key: str,
    records: RunRecords,
    run_digest: Optional[str] = None,
) -> str:
    """Publish one run's records blob + analytics manifest; returns digest."""
    key = records_key(cache_key)
    enveloped, digest = wrap_blob(records.to_bytes())
    store.put(key, enveloped)
    run_ref: Dict[str, Any] = {"cache_key": cache_key}
    if run_digest:
        run_ref["digest"] = run_digest
    manifest = {
        "kind": "analytics",
        "schema": records.schema,
        "cache_key": cache_key,
        "records_key": key,
        "records_digest": digest,
        "rows": len(records),
        "meta": records.meta,
        # gc pinning: collect_references keeps every "cache_key" listed
        # under "tasks", covering both the run blob and the records blob.
        "tasks": [run_ref, {"cache_key": key, "digest": digest}],
    }
    store.write_manifest(analytics_manifest_name(cache_key), manifest)
    return digest


def load_run_records(store: ResultStore, cache_key: str) -> RunRecords:
    """Load the records of one cached run; :class:`AnalyticsError` if absent."""
    data = store.get(records_key(cache_key))
    if data is None:
        raise AnalyticsError(
            f"no per-job records for cache key {cache_key[:24]}… — the run was "
            "executed without --analytics (or served from a pre-analytics "
            "cache entry); re-run the sweep with --analytics to publish them"
        )
    try:
        payload, _digest = unwrap_blob(data)
        return RunRecords.from_bytes(payload)
    except StoreError:
        raise
    except Exception as exc:
        raise AnalyticsError(
            f"records blob for cache key {cache_key[:24]}… is unreadable: {exc}"
        ) from exc


def iter_analytics_manifests(
    store: ResultStore,
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield ``(manifest_name, payload)`` for every analytics manifest."""
    for name in store.list_manifests(ANALYTICS_MANIFEST_PREFIX):
        manifest = store.read_manifest(name)
        if manifest is None or manifest.get("kind") != "analytics":
            continue
        if manifest.get("schema") != RECORD_SCHEMA_VERSION:
            continue
        yield name, manifest
