"""Columnar per-job records: the sink, the schema, and (de)serialization.

The analytics layer keeps what :func:`repro.metrics.aggregates
.compute_metrics` throws away: one fixed-width row per completed job, in
completion order, in a NumPy structured array (~100 bytes/job).  A
:class:`JobRecordSink` is attached to the simulation's job-completion
dispatch (``Simulation(..., sinks=[sink])``) and folds each job exactly
once, computing the derived metric columns (response, wait, slowdown,
bounded slowdown, runtime, CPU-seconds) with the *same arithmetic, in the
same order* as :class:`repro.metrics.streaming.StreamingMetrics.fold`.

Storing the derived ``float64`` values verbatim is what makes
:func:`metrics_from_records` bit-identical to both ``StreamingMetrics``
and batch ``compute_metrics``: the NumPy reductions
(``np.mean``/``np.median``/``np.percentile``) see the same values in the
same order, so pairwise summation reproduces exactly.  Recomputing the
columns at query time from submit/start/end would *also* reproduce (the
formulas are single IEEE-754 operations) but storing them keeps the query
layer honest and cheap.

Serialized form (one blob per run)::

    8-byte big-endian header length
    JSON header  {"schema": 1, "rows": N, "meta": {...}}
    the structured array, ``np.save`` format (``allow_pickle=False``)

``meta`` carries the run-level scalars a row-wise schema cannot: the
run's first submit and energy (needed to rebuild
:class:`~repro.metrics.aggregates.WorkloadMetrics` exactly), plus the
sweep coordinates (workload, policy, task key/label, seed, canonical
kwargs) so a store-wide query can filter and group without touching the
cached run blobs.
"""

from __future__ import annotations

import io
import json
import math
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.metrics.aggregates import WorkloadMetrics
from repro.simulator.job import Job

__all__ = [
    "JOB_RECORD_DTYPE",
    "RECORD_SCHEMA_VERSION",
    "JobRecordSink",
    "RunRecords",
    "metrics_from_records",
]

#: Bump when the row layout changes; readers reject unknown schemas.
RECORD_SCHEMA_VERSION = 1

#: One row per completed job.  Derived metric columns hold the exact
#: ``float64`` values ``StreamingMetrics.fold`` computes (see module doc).
JOB_RECORD_DTYPE = np.dtype(
    [
        ("job_id", np.int64),
        ("user", np.int32),
        ("group", np.int32),
        ("submit", np.float64),
        ("start", np.float64),
        ("end", np.float64),
        ("requested_nodes", np.int32),
        ("requested_cpus", np.int32),
        ("requested_time", np.float64),
        ("static_runtime", np.float64),
        ("response", np.float64),
        ("wait", np.float64),
        ("runtime", np.float64),
        ("slowdown", np.float64),
        ("bounded_slowdown", np.float64),
        ("cpu_seconds", np.float64),
        ("malleable", np.int8),
        ("scheduled_malleable", np.int8),
        ("was_mate", np.int8),
    ]
)

#: Bounded-slowdown threshold, matching ``StreamingMetrics``/``compute_metrics``.
_BOUNDED_SLOWDOWN_TAU = 10.0

_HEADER_LEN = struct.Struct(">Q")


class JobRecordSink:
    """A job sink that buffers one structured-array row per completed job.

    Rows are appended into chunks that double from ``min_chunk`` up to
    ``max_chunk`` entries (the :class:`~repro.metrics.streaming
    .ChunkedFloatBuffer` allocation strategy), so a 100-job smoke run costs
    one small chunk while a million-job replay amortises allocation.
    """

    __slots__ = ("_chunks", "_current", "_fill", "_min_chunk", "_max_chunk")

    def __init__(self, min_chunk: int = 1024, max_chunk: int = 65536) -> None:
        if min_chunk <= 0 or max_chunk < min_chunk:
            raise ValueError(f"invalid chunk sizes {min_chunk}/{max_chunk}")
        self._chunks: List[np.ndarray] = []
        self._current: Optional[np.ndarray] = None
        self._fill = 0
        self._min_chunk = min_chunk
        self._max_chunk = max_chunk

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks) + self._fill

    def fold(self, job: Job) -> None:
        """Record one *completed* job (same contract as ``StreamingMetrics``)."""
        if job.end_time is None or job.start_time is None:
            raise ValueError(f"job {job.job_id} is not completed; cannot fold")
        response = job.end_time - job.submit_time
        wait = job.start_time - job.submit_time
        slowdown = response / job.static_runtime
        bounded = max(
            1.0, response / max(job.static_runtime, _BOUNDED_SLOWDOWN_TAU)
        )
        cpu_seconds = 0.0
        for slot in job.resource_history:
            duration = slot.duration
            if duration > 0 and math.isfinite(duration):
                cpu_seconds += slot.total_cpus * duration
        current = self._current
        if current is None or self._fill == len(current):
            if current is not None:
                self._chunks.append(current)
            size = (
                self._min_chunk
                if current is None
                else min(self._max_chunk, 2 * len(current))
            )
            current = self._current = np.empty(size, dtype=JOB_RECORD_DTYPE)
            self._fill = 0
        current[self._fill] = (
            job.job_id,
            int(job.user),
            int(job.group),
            job.submit_time,
            job.start_time,
            job.end_time,
            job.requested_nodes,
            job.requested_cpus,
            job.requested_time,
            job.static_runtime,
            response,
            wait,
            job.end_time - job.start_time,
            slowdown,
            bounded,
            cpu_seconds,
            1 if job.malleable else 0,
            1 if job.scheduled_malleable else 0,
            1 if job.was_mate else 0,
        )
        self._fill += 1

    def to_array(self) -> np.ndarray:
        """The recorded rows, in completion order, as one structured array."""
        parts = list(self._chunks)
        if self._current is not None and self._fill:
            parts.append(self._current[: self._fill])
        if not parts:
            return np.empty(0, dtype=JOB_RECORD_DTYPE)
        if len(parts) == 1:
            return np.ascontiguousarray(parts[0])
        return np.concatenate(parts)

    @property
    def nbytes(self) -> int:
        """Bytes currently allocated (including unfilled chunk headroom)."""
        total = sum(c.nbytes for c in self._chunks)
        if self._current is not None:
            total += self._current.nbytes
        return total


@dataclass
class RunRecords:
    """The per-job records of one run plus its run-level metadata."""

    array: np.ndarray
    meta: Dict[str, Any] = field(default_factory=dict)
    schema: int = RECORD_SCHEMA_VERSION

    def __len__(self) -> int:
        return len(self.array)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize: length-prefixed JSON header + ``np.save`` payload."""
        buf = io.BytesIO()
        np.save(buf, np.ascontiguousarray(self.array), allow_pickle=False)
        header = json.dumps(
            {"schema": self.schema, "rows": len(self.array), "meta": self.meta},
            sort_keys=True,
        ).encode("utf-8")
        return _HEADER_LEN.pack(len(header)) + header + buf.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "RunRecords":
        if len(data) < _HEADER_LEN.size:
            raise ValueError("truncated run-records blob")
        (header_len,) = _HEADER_LEN.unpack_from(data)
        end = _HEADER_LEN.size + header_len
        if len(data) < end:
            raise ValueError("truncated run-records header")
        header = json.loads(data[_HEADER_LEN.size : end].decode("utf-8"))
        schema = int(header.get("schema", -1))
        if schema != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run-records schema {schema} "
                f"(this version reads schema {RECORD_SCHEMA_VERSION})"
            )
        array = np.load(io.BytesIO(data[end:]), allow_pickle=False)
        if array.dtype != JOB_RECORD_DTYPE:
            raise ValueError("run-records array has an unexpected dtype")
        rows = int(header.get("rows", -1))
        if rows != len(array):
            raise ValueError(
                f"run-records header promises {rows} rows, array has {len(array)}"
            )
        return cls(array=array, meta=dict(header.get("meta", {})), schema=schema)

    # ------------------------------------------------------------------ #
    def metrics(self) -> WorkloadMetrics:
        return metrics_from_records(self)


def metrics_from_records(records: RunRecords) -> WorkloadMetrics:
    """Rebuild the run's :class:`WorkloadMetrics` from persisted records.

    Bit-identical to ``StreamingMetrics.workload_metrics`` (and hence to
    batch ``compute_metrics``) for the same run: the derived columns hold
    the exact folded values in completion order, and the reductions below
    are the same NumPy calls over contiguous ``float64`` copies.  The
    run-level makespan origin and energy come from ``records.meta``
    (``first_submit``, ``energy_joules``) because they are not derivable
    from completed-job rows alone.
    """
    arr = records.array
    energy = float(records.meta.get("energy_joules", 0.0))
    if not len(arr):
        return WorkloadMetrics(
            num_jobs=0,
            makespan=0.0,
            avg_response_time=0.0,
            avg_wait_time=0.0,
            avg_slowdown=0.0,
            avg_bounded_slowdown=0.0,
            median_slowdown=0.0,
            p95_slowdown=0.0,
            avg_runtime=0.0,
            malleable_scheduled=0,
            mate_jobs=0,
            energy_joules=energy,
        )
    first_submit = records.meta.get("first_submit")
    origin = (
        float(np.min(arr["submit"])) if first_submit is None else float(first_submit)
    )
    slowdowns = np.ascontiguousarray(arr["slowdown"])
    return WorkloadMetrics(
        num_jobs=len(arr),
        makespan=max(0.0, float(np.max(arr["end"])) - origin),
        avg_response_time=float(np.mean(np.ascontiguousarray(arr["response"]))),
        avg_wait_time=float(np.mean(np.ascontiguousarray(arr["wait"]))),
        avg_slowdown=float(np.mean(slowdowns)),
        avg_bounded_slowdown=float(
            np.mean(np.ascontiguousarray(arr["bounded_slowdown"]))
        ),
        median_slowdown=float(np.median(slowdowns)),
        p95_slowdown=float(np.percentile(slowdowns, 95)),
        avg_runtime=float(np.mean(np.ascontiguousarray(arr["runtime"]))),
        malleable_scheduled=int(np.count_nonzero(arr["scheduled_malleable"])),
        mate_jobs=int(np.count_nonzero(arr["was_mate"])),
        energy_joules=energy,
    )
