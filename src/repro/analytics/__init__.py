"""Job-level analytics: persist per-job records, query them across sweeps.

``records`` defines the columnar schema, the :class:`JobRecordSink` that
captures rows at job completion, and the bit-identical
:func:`metrics_from_records` rebuild; ``store`` publishes/loads record
blobs behind any :class:`repro.store.ResultStore`; ``query`` (imported
explicitly — it pulls in the experiments layer) implements the
``repro-sdpolicy query`` filter/group-by/report engine.
"""

from repro.analytics.records import (
    JOB_RECORD_DTYPE,
    RECORD_SCHEMA_VERSION,
    JobRecordSink,
    RunRecords,
    metrics_from_records,
)
from repro.analytics.store import (
    ANALYTICS_MANIFEST_PREFIX,
    AnalyticsError,
    analytics_manifest_name,
    iter_analytics_manifests,
    load_run_records,
    publish_run_records,
    records_key,
)

__all__ = [
    "ANALYTICS_MANIFEST_PREFIX",
    "AnalyticsError",
    "JOB_RECORD_DTYPE",
    "JobRecordSink",
    "RECORD_SCHEMA_VERSION",
    "RunRecords",
    "analytics_manifest_name",
    "iter_analytics_manifests",
    "load_run_records",
    "metrics_from_records",
    "publish_run_records",
    "records_key",
]
