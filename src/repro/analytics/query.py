"""Cross-sweep queries over persisted per-job records.

Two modes, both reading *only* the store (no simulation):

* **Generic** — :func:`run_query` filters (``--where``), groups
  (``--group-by``) and aggregates (``--metrics col:agg``) the per-job rows
  of every analytics run in a store.  "p99 slowdown of malleable jobs by
  MAX_SLOWDOWN across every workload ever run" is one invocation.
* **Reports** — :func:`render_stored_report` regenerates Figure 1-3,
  Figure 7 and Table 1 *byte-identically* to their sweep-rendered
  versions.  The trick is shared machinery, not parallel reimplementation:
  the same spec builders (:func:`repro.experiments.paper.maxsd_sweep_spec`,
  :func:`~repro.experiments.paper.table_1_tasks`) produce the same tasks,
  :func:`repro.experiments.sweep.task_cache_key` locates each run's
  records, :func:`repro.analytics.metrics_from_records` rebuilds the
  aggregates bit-for-bit, and the stock renderers produce the text.

This module imports the experiments layer, so it is *not* re-exported from
``repro.analytics`` (which the sweep layer imports) — import it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.comparison import normalize_to_baseline
from repro.analysis.figures import render_bar_chart
from repro.analysis.tables import format_table
from repro.analytics.records import (
    JOB_RECORD_DTYPE,
    RunRecords,
    metrics_from_records,
)
from repro.analytics.store import (
    AnalyticsError,
    iter_analytics_manifests,
    load_run_records,
)
from repro.experiments.runner import PolicyRun
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioOutcome,
    ScenarioSpec,
    WorkloadRef,
    builtin_scenario,
    render_report,
    report_figures_1_to_3,
    _resolve_workloads,
)
from repro.experiments.sweep import task_cache_key
from repro.simulator.simulation import SimulationResult
from repro.store import ResultStore
from repro.workloads.job_record import Workload

__all__ = [
    "QueryError",
    "REPORT_CHOICES",
    "list_runs",
    "outcome_from_records",
    "render_stored_report",
    "run_query",
]


class QueryError(RuntimeError):
    """The query cannot be answered from the store's records."""


#: Run-level fields usable in ``--where``/``--group-by`` (from run meta).
_META_FIELDS = ("workload", "policy", "label", "seed", "task_key")

#: Aggregations usable in ``--metrics col:agg``.
_AGGREGATIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.mean(a)),
    "median": lambda a: float(np.median(a)),
    "p50": lambda a: float(np.percentile(a, 50)),
    "p95": lambda a: float(np.percentile(a, 95)),
    "p99": lambda a: float(np.percentile(a, 99)),
    "min": lambda a: float(np.min(a)),
    "max": lambda a: float(np.max(a)),
    "count": len,
}


@dataclass
class _RunSlice:
    """One analytics run, with its (possibly row-filtered) record array."""

    meta: Dict[str, Any]
    array: np.ndarray
    cache_key: str = ""


def _load_slices(
    store: ResultStore, where: Sequence[Tuple[str, str]]
) -> List[_RunSlice]:
    """Every analytics run in the store, filtered by the where clauses."""
    run_filters = [(f, v) for f, v in where if f in _META_FIELDS]
    row_filters = [(f, v) for f, v in where if f not in _META_FIELDS]
    for field_name, _ in row_filters:
        if field_name not in JOB_RECORD_DTYPE.names:
            raise QueryError(
                f"unknown query field {field_name!r}; run-level fields: "
                f"{', '.join(_META_FIELDS)}; record columns: "
                f"{', '.join(JOB_RECORD_DTYPE.names)}"
            )
    slices: List[_RunSlice] = []
    for _name, manifest in sorted(iter_analytics_manifests(store)):
        meta = dict(manifest.get("meta") or {})
        if any(str(meta.get(f)) != v for f, v in run_filters):
            continue
        cache_key = str(manifest.get("cache_key", ""))
        records = load_run_records(store, cache_key)
        arr = records.array
        for field_name, value in row_filters:
            try:
                needle = float(value)
            except ValueError:
                raise QueryError(
                    f"record column filter {field_name}={value!r} needs a "
                    "numeric value"
                ) from None
            arr = arr[arr[field_name] == needle]
        slices.append(_RunSlice(meta=meta, array=arr, cache_key=cache_key))
    return slices


def parse_where(clauses: Sequence[str]) -> List[Tuple[str, str]]:
    """Parse ``field=value`` strings (the ``--where`` arguments)."""
    out: List[Tuple[str, str]] = []
    for clause in clauses:
        if "=" not in clause:
            raise QueryError(f"--where needs field=value, got {clause!r}")
        field_name, _, value = clause.partition("=")
        out.append((field_name.strip(), value.strip()))
    return out


def parse_metrics(spec: str) -> List[Tuple[str, str]]:
    """Parse a ``col:agg,col:agg`` metrics spec."""
    out: List[Tuple[str, str]] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        column, _, agg = item.partition(":")
        column, agg = column.strip(), (agg.strip() or "mean")
        if column not in JOB_RECORD_DTYPE.names:
            raise QueryError(
                f"unknown record column {column!r}; "
                f"columns: {', '.join(JOB_RECORD_DTYPE.names)}"
            )
        if agg not in _AGGREGATIONS:
            raise QueryError(
                f"unknown aggregation {agg!r}; "
                f"aggregations: {', '.join(_AGGREGATIONS)}"
            )
        out.append((column, agg))
    if not out:
        raise QueryError("--metrics selected nothing")
    return out


def list_runs(store: ResultStore) -> str:
    """Table of every analytics run in the store (the ``--list`` mode)."""
    rows: List[List[object]] = []
    for _name, manifest in sorted(iter_analytics_manifests(store)):
        meta = manifest.get("meta") or {}
        rows.append(
            [
                str(meta.get("workload", "?")),
                str(meta.get("task_key", meta.get("label", "?"))),
                str(meta.get("policy", "?")),
                str(meta.get("seed", "?")),
                int(manifest.get("rows", 0)),
                str(manifest.get("cache_key", ""))[:12],
            ]
        )
    if not rows:
        return "no analytics runs in this store (run a sweep with --analytics)"
    rows.sort(key=lambda r: (r[0], r[1]))
    return format_table(
        ["workload", "task", "policy", "seed", "jobs", "cache key"],
        rows,
        title=f"analytics runs ({len(rows)})",
    )


def run_query(
    store: ResultStore,
    where: Sequence[Tuple[str, str]] = (),
    group_by: Optional[str] = None,
    metrics: Sequence[Tuple[str, str]] = (("slowdown", "mean"), ("slowdown", "p95")),
) -> str:
    """Aggregate per-job records across every matching run in the store."""
    if group_by is not None and group_by not in _META_FIELDS + JOB_RECORD_DTYPE.names:
        raise QueryError(
            f"unknown group-by field {group_by!r}; run-level fields: "
            f"{', '.join(_META_FIELDS)}; record columns: "
            f"{', '.join(JOB_RECORD_DTYPE.names)}"
        )
    for column, agg in metrics:
        if column not in JOB_RECORD_DTYPE.names:
            raise QueryError(
                f"unknown record column {column!r}; "
                f"columns: {', '.join(JOB_RECORD_DTYPE.names)}"
            )
        if agg not in _AGGREGATIONS:
            raise QueryError(
                f"unknown aggregation {agg!r}; "
                f"aggregations: {', '.join(_AGGREGATIONS)}"
            )
    slices = _load_slices(store, where)
    if not slices:
        raise QueryError(
            "no analytics runs match (is the store populated? "
            "try 'query --list')"
        )
    # Group: by a run-level meta field (runs partition), a record column
    # (row partition over the concatenated rows), or not at all.
    groups: Dict[str, List[np.ndarray]] = {}
    if group_by in _META_FIELDS:
        for s in slices:
            groups.setdefault(str(s.meta.get(group_by)), []).append(s.array)
    else:
        merged = (
            np.concatenate([s.array for s in slices])
            if len(slices) > 1
            else slices[0].array
        )
        if group_by is None:
            groups["all"] = [merged]
        else:
            for value in np.unique(merged[group_by]):
                groups[str(value)] = [merged[merged[group_by] == value]]
    headers = [group_by or "group"] + [f"{col}:{agg}" for col, agg in metrics]
    rows: List[List[object]] = []
    total_jobs = 0
    for key in sorted(groups):
        arrays = [a for a in groups[key] if len(a)]
        if not arrays:
            continue
        merged = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        total_jobs += len(merged)
        row: List[object] = [key]
        for column, agg in metrics:
            values = np.ascontiguousarray(merged[column], dtype=np.float64)
            row.append(_AGGREGATIONS[agg](values))
        rows.append(row)
    if not rows:
        raise QueryError("the where clauses filtered out every job row")
    title = f"query over {len(slices)} run(s), {total_jobs} job row(s)"
    return format_table(headers, rows, precision=3, title=title)


# --------------------------------------------------------------------- #
# Figure/table regeneration from stored records
# --------------------------------------------------------------------- #
REPORT_CHOICES = ("fig1", "fig2", "fig3", "fig1-3", "fig7", "table1")

_FIGURE_METRICS = {
    "fig1": ("makespan", "Figure 1 - makespan"),
    "fig2": ("avg_response_time", "Figure 2 - average response time"),
    "fig3": ("avg_slowdown", "Figure 3 - average slowdown"),
}


class _RecordJob:
    """Per-job shim over one record row for job-based report machinery.

    Exposes exactly the attributes the time-series helpers read
    (``submit_time``/``end_time``/``slowdown``/``scheduled_malleable`` …)
    with the stored values, so per-job reports over records reproduce the
    retained-run output bit for bit.
    """

    __slots__ = (
        "job_id",
        "submit_time",
        "start_time",
        "end_time",
        "slowdown",
        "malleable",
        "scheduled_malleable",
        "was_mate",
    )

    def __init__(self, row: np.void) -> None:
        self.job_id = int(row["job_id"])
        self.submit_time = float(row["submit"])
        self.start_time = float(row["start"])
        self.end_time = float(row["end"])
        self.slowdown = float(row["slowdown"])
        self.malleable = bool(row["malleable"])
        self.scheduled_malleable = bool(row["scheduled_malleable"])
        self.was_mate = bool(row["was_mate"])


def _stub_run(
    label: str, workload_name: str, records: RunRecords, with_jobs: bool
) -> PolicyRun:
    """A :class:`PolicyRun` reconstructed from stored records (no sim)."""
    metrics = metrics_from_records(records)
    jobs = [_RecordJob(row) for row in records.array] if with_jobs else []
    result = SimulationResult(
        jobs=jobs,
        makespan=metrics.makespan,
        avg_response_time=metrics.avg_response_time,
        avg_slowdown=metrics.avg_slowdown,
        avg_wait_time=metrics.avg_wait_time,
        energy_joules=metrics.energy_joules,
        malleable_scheduled_jobs=metrics.malleable_scheduled,
        mate_jobs=metrics.mate_jobs,
        scheduler_name=str(records.meta.get("policy", label)),
        total_events=0,
        first_submit=float(records.meta.get("first_submit", 0.0)),
        completed_jobs=metrics.num_jobs,
    )
    return PolicyRun(
        label=label,
        workload_name=workload_name,
        result=result,
        metrics=metrics,
        wall_clock_seconds=0.0,
    )


def outcome_from_records(
    spec: ScenarioSpec,
    workloads: Optional[Union[Workload, Mapping[str, Workload]]],
    store: ResultStore,
    with_jobs: Optional[bool] = None,
) -> ScenarioOutcome:
    """Rebuild a scenario outcome purely from stored records.

    Expands the spec to the same tasks the sweep path would run, resolves
    each task's records through its cache key, and assembles stub runs with
    bit-identical metrics — so every aggregate report renderer produces the
    same bytes it would over fresh simulations.  Raises
    :class:`QueryError` naming every task whose records are missing.
    """
    if with_jobs is None:
        with_jobs = spec.report in ("daily", "heatmaps")
    resolved = _resolve_workloads(spec, workloads)
    task_by_key = {t.resolved_key(): t for t in spec.tasks(resolved)}
    missing: List[str] = []

    def load(task_key: str, workload_name: str, label: str) -> Optional[PolicyRun]:
        task = task_by_key[task_key]
        try:
            records = load_run_records(store, task_cache_key(task))
        except AnalyticsError:
            missing.append(task_key)
            return None
        return _stub_run(label, workload_name, records, with_jobs)

    baselines: Dict[str, PolicyRun] = {}
    cells: List[ScenarioCell] = []
    for ref in spec.workloads:
        wkey = ref.key()
        workload_name = resolved[wkey].name
        baseline = None
        if spec.baseline is not None:
            baseline = load(f"{wkey}::baseline", workload_name, "baseline")
            if baseline is not None:
                baselines[wkey] = baseline
        for label, policy, params in spec.cells():
            run = load(f"{wkey}::{label}", workload_name, label)
            if run is None:
                continue
            cells.append(
                ScenarioCell(
                    label=label,
                    workload_key=wkey,
                    policy=policy,
                    params=params,
                    run=run,
                    normalized=(
                        normalize_to_baseline(run.metrics, baseline.metrics)
                        if baseline is not None
                        else None
                    ),
                )
            )
    if missing:
        raise QueryError(
            f"no stored records for task(s) {missing} of scenario "
            f"{spec.name!r} — run the sweep with --analytics first "
            "(query renders from records alone; it never simulates)"
        )
    return ScenarioOutcome(
        spec=spec, workloads=resolved, baselines=baselines, cells=cells, sweep=None
    )


def render_stored_report(
    store: ResultStore,
    report: str,
    workload: Optional[Workload] = None,
    scale: float = 0.05,
    seed: Optional[int] = None,
    sharing_factor: float = 0.5,
    runtime_model: str = "ideal",
    max_slowdown: float = 10.0,
    workload_ids: Sequence[int] = (1, 2, 3, 4, 5),
) -> str:
    """Regenerate one paper report from stored records (no simulation)."""
    from repro.experiments.paper import (
        maxsd_sweep_spec,
        render_table_1,
        table_1_tasks,
    )
    from repro.workloads.presets import build_workload

    if report == "table1":
        workloads = {
            wid: build_workload(wid, scale=scale, seed=seed) for wid in workload_ids
        }
        metrics = {}
        missing: List[str] = []
        for (wid, _wl), task in zip(workloads.items(), table_1_tasks(workloads)):
            try:
                records = load_run_records(store, task_cache_key(task))
            except AnalyticsError:
                missing.append(task.resolved_key())
                continue
            metrics[wid] = metrics_from_records(records)
        if missing:
            raise QueryError(
                f"no stored records for task(s) {missing} of Table 1 — run "
                "'repro-sdpolicy table --table 1' through a sweep with "
                "--analytics first"
            )
        return render_table_1(scale, tuple(workload_ids), workloads, metrics).text
    if workload is None:
        raise QueryError(f"report {report!r} needs a workload (--workload/--swf)")
    if report in _FIGURE_METRICS or report == "fig1-3":
        spec = maxsd_sweep_spec(
            workload.name,
            sharing_factor=sharing_factor,
            runtime_model=runtime_model,
        )
        outcome = outcome_from_records(spec, workload, store)
        if report == "fig1-3":
            return report_figures_1_to_3(outcome)
        metric, figure_name = _FIGURE_METRICS[report]
        normalized = outcome.normalized()
        return render_bar_chart(
            {label: vals[metric] for label, vals in normalized.items()},
            title=(
                f"{figure_name} ({outcome.workload.name}, "
                "normalised to static backfill)"
            ),
        )
    if report == "fig7":
        spec = builtin_scenario(
            "figure7", max_slowdown=max_slowdown, runtime_model=runtime_model
        )
        spec.workloads = [WorkloadRef(name=workload.name)]
        outcome = outcome_from_records(spec, workload, store, with_jobs=True)
        return render_report(outcome)
    raise QueryError(
        f"unknown report {report!r}; choices: {', '.join(REPORT_CHOICES)}"
    )
