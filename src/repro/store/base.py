"""The :class:`ResultStore` protocol shared by every cache backend.

A result store holds two kinds of typed objects for the sweep subsystem
(:mod:`repro.experiments.sweep` / :mod:`repro.experiments.executors`):

* **blobs** — pickled :class:`~repro.experiments.runner.PolicyRun` cache
  entries, addressed by their opaque content-hash key (the task cache key);
* **manifests** — small JSON documents (shard progress manifests), addressed
  by name and written atomically so a concurrent reader never observes a
  torn document.

Backends implement five *object-name* primitives (``_read`` / ``_write`` /
``_delete`` / ``_names`` / ``_stat``); the typed public API — ``get`` /
``put`` / ``exists`` / ``list`` / ``delete`` over blob keys, quarantine
handling, and the manifest helpers — is defined once here in terms of the
object-name layout of the historical on-disk cache (``<key>.pkl``,
``manifests/<name>.json``, ``<key>.pkl.corrupt``), so every backend is
byte-compatible with every other and :class:`~repro.store.localfs
.LocalFSStore` is byte-compatible with caches written before stores
existed.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Object-name suffix of a result blob.
BLOB_SUFFIX = ".pkl"

#: Object-name prefix of the manifest namespace.
MANIFEST_PREFIX = "manifests/"

#: Object-name suffix of a manifest document.
MANIFEST_SUFFIX = ".json"

#: Suffix appended to a blob's object name when it is quarantined.
QUARANTINE_SUFFIX = ".corrupt"

#: Suffix of stray temporary objects left behind by a crashed atomic write
#: (``LocalFSStore._write``'s mkstemp files); ``store gc`` sweeps them.
TMP_SUFFIX = ".tmp"


class StoreError(RuntimeError):
    """A result-store operation failed (I/O, transport, bad document…)."""


@dataclass(frozen=True)
class ObjectStat:
    """Metadata of one stored object.

    ``size`` is ``None`` when the backend cannot report it (an HTTP
    endpoint answering without a usable ``Content-Length``); byte
    accounting must then report the size as unknown rather than ``0``.
    """

    size: Optional[int]
    mtime: Optional[float] = None


@dataclass(frozen=True)
class StoreStats:
    """Aggregate contents of a store (the ``store stats`` command).

    ``unknown_size`` counts objects the backend reported no size for —
    the byte totals exclude them, so a nonzero count flags the totals as
    a lower bound rather than silently folding the objects in as 0 bytes.
    """

    blobs: int
    blob_bytes: int
    manifests: int
    manifest_bytes: int
    quarantined: int
    unknown_size: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "blobs": self.blobs,
            "blob_bytes": self.blob_bytes,
            "manifests": self.manifests,
            "manifest_bytes": self.manifest_bytes,
            "quarantined": self.quarantined,
            "unknown_size": self.unknown_size,
        }


def _check_key(key: str, what: str = "key") -> str:
    if not key or "/" in key:
        raise StoreError(f"invalid store {what} {key!r}: must be non-empty, no '/'")
    return key


class ResultStore(abc.ABC):
    """Abstract result store: blobs + atomic JSON manifests over opaque keys.

    Subclasses provide the five object-name primitives; everything public is
    implemented here on top of them.  ``_write`` must publish atomically —
    a concurrent ``_read`` of the same name sees either the old bytes, the
    new bytes, or absence, never a torn object.
    """

    #: Human-readable URL identifying this store (``file://…``,
    #: ``memory://…``, ``s3+http://…``).
    url: str = ""

    # ------------------------------------------------------------------ #
    # Object-name primitives (implemented per backend)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _read(self, name: str) -> Optional[bytes]:
        """Bytes of one object, or ``None`` when it does not exist."""

    @abc.abstractmethod
    def _write(self, name: str, data: bytes) -> None:
        """Atomically create or replace one object."""

    @abc.abstractmethod
    def _delete(self, name: str) -> bool:
        """Delete one object; ``False`` when it did not exist."""

    @abc.abstractmethod
    def _names(self, prefix: str = "") -> List[str]:
        """All object names starting with ``prefix``, sorted."""

    @abc.abstractmethod
    def _stat(self, name: str) -> Optional[ObjectStat]:
        """Size/mtime of one object, or ``None`` when it does not exist."""

    def _entries(self, prefix: str = "") -> List[Tuple[str, Optional[ObjectStat]]]:
        """Name + stat of every object starting with ``prefix``, sorted.

        The default costs one ``_stat`` per object; backends whose listing
        already carries metadata (the S3 ``list-type=2`` document's
        ``<Size>``/``<LastModified>``) override this so aggregate
        operations (``stats``, ``prune``, ``gc``) take one listing
        round-trip instead of one HEAD per object.
        """
        return [(name, self._stat(name)) for name in self._names(prefix)]

    # ------------------------------------------------------------------ #
    # Blobs
    # ------------------------------------------------------------------ #
    @staticmethod
    def _blob_name(key: str) -> str:
        return _check_key(key, "blob key") + BLOB_SUFFIX

    def get(self, key: str) -> Optional[bytes]:
        """The blob stored under ``key``, or ``None`` on a miss."""
        return self._read(self._blob_name(key))

    def put(self, key: str, data: bytes) -> None:
        """Atomically publish a blob under ``key``."""
        self._write(self._blob_name(key), data)

    def exists(self, key: str) -> bool:
        return self._stat(self._blob_name(key)) is not None

    def delete(self, key: str) -> bool:
        return self._delete(self._blob_name(key))

    def list(self, prefix: str = "") -> List[str]:
        """All blob keys starting with ``prefix``, sorted."""
        return [
            name[: -len(BLOB_SUFFIX)]
            for name in self._names(prefix)
            if name.endswith(BLOB_SUFFIX) and "/" not in name
        ]

    def stat(self, key: str) -> Optional[ObjectStat]:
        return self._stat(self._blob_name(key))

    def blob_entries(self, prefix: str = "") -> List[Tuple[str, Optional[ObjectStat]]]:
        """``(key, stat)`` of every blob starting with ``prefix``, sorted.

        One listing round-trip where the backend supports it — the bulk
        sibling of :meth:`stat` that ``prune``/``gc``/``stats`` iterate.
        """
        return [
            (name[: -len(BLOB_SUFFIX)], stat)
            for name, stat in self._entries(prefix)
            if name.endswith(BLOB_SUFFIX) and "/" not in name
        ]

    # ------------------------------------------------------------------ #
    # Quarantine (corrupt blobs are moved aside, never retried)
    # ------------------------------------------------------------------ #
    def quarantine(self, key: str) -> None:
        """Move a corrupt blob out of the blob namespace, idempotently.

        The default implementation copies the bytes to the quarantine name
        and deletes the original; backends with a cheaper atomic rename
        override this.  Copy-then-delete is not atomic, so a crash (or a
        failed delete) can leave both the live blob and its quarantine
        copy behind; re-quarantining finishes the job — an existing
        quarantine copy is never rewritten (the first capture is the
        evidence) and only the delete is retried.  A failed delete raises
        :class:`StoreError` so callers know the corrupt blob is still
        visible to readers.  Quarantining an already-missing blob is a
        no-op.
        """
        name = self._blob_name(key)
        data = self._read(name)
        if data is not None and self._stat(name + QUARANTINE_SUFFIX) is None:
            self._write(name + QUARANTINE_SUFFIX, data)
        try:
            self._delete(name)
        except StoreError as exc:
            raise StoreError(
                f"quarantined blob {key!r} in {self.url} but could not delete "
                f"the original, which stays visible to readers: {exc}"
            ) from exc

    def list_quarantined(self, prefix: str = "") -> List[str]:
        """Blob keys with a quarantined entry, sorted."""
        suffix = BLOB_SUFFIX + QUARANTINE_SUFFIX
        return [
            name[: -len(suffix)]
            for name in self._names(prefix)
            if name.endswith(suffix) and "/" not in name
        ]

    def delete_quarantined(self, key: str) -> bool:
        return self._delete(self._blob_name(key) + QUARANTINE_SUFFIX)

    def get_quarantined(self, key: str) -> Optional[bytes]:
        """Bytes of a quarantined blob (corruption evidence), or ``None``."""
        return self._read(self._blob_name(key) + QUARANTINE_SUFFIX)

    def put_quarantined(self, key: str, data: bytes) -> None:
        """Publish a quarantined entry verbatim (mirroring evidence)."""
        self._write(self._blob_name(key) + QUARANTINE_SUFFIX, data)

    # ------------------------------------------------------------------ #
    # Manifests (atomic JSON documents)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _manifest_object(name: str) -> str:
        return MANIFEST_PREFIX + _check_key(name, "manifest name") + MANIFEST_SUFFIX

    def read_manifest(self, name: str) -> Optional[Dict[str, Any]]:
        """Parse one manifest; ``None`` on a miss, StoreError on bad JSON."""
        data = self._read(self._manifest_object(name))
        if data is None:
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise StoreError(f"unreadable manifest {name!r} in {self.url}: {exc}") from exc
        if not isinstance(payload, dict):
            raise StoreError(
                f"manifest {name!r} in {self.url} is {type(payload).__name__}, not an object"
            )
        return payload

    def write_manifest(self, name: str, payload: Dict[str, Any]) -> None:
        """Atomically publish one manifest as canonical indented JSON."""
        data = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._write(self._manifest_object(name), data)

    def delete_manifest(self, name: str) -> bool:
        return self._delete(self._manifest_object(name))

    def list_manifests(self, prefix: str = "") -> List[str]:
        """All manifest names starting with ``prefix``, sorted."""
        start = MANIFEST_PREFIX + prefix
        return [
            name[len(MANIFEST_PREFIX) : -len(MANIFEST_SUFFIX)]
            for name in self._names(start)
            if name.endswith(MANIFEST_SUFFIX)
            and "/" not in name[len(MANIFEST_PREFIX) :]
        ]

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def stats(self) -> StoreStats:
        """Count blobs/manifests/quarantined entries and their sizes.

        One bulk ``_entries`` pass (a single listing round-trip on
        backends whose listing carries metadata).  A blob whose quarantine
        copy also exists — an interrupted :meth:`quarantine` — is counted
        once, as quarantined, not double-counted as a live blob too.
        """
        blobs = blob_bytes = manifests = manifest_bytes = quarantined = 0
        unknown_size = 0
        entries = self._entries()
        quarantine_names = {
            name
            for name, _ in entries
            if name.endswith(BLOB_SUFFIX + QUARANTINE_SUFFIX)
        }
        for name, stat in entries:
            if name in quarantine_names:
                quarantined += 1
                continue
            size = stat.size if stat is not None else None
            if name.startswith(MANIFEST_PREFIX) and name.endswith(MANIFEST_SUFFIX):
                manifests += 1
                manifest_bytes += size or 0
                if size is None:
                    unknown_size += 1
            elif name.endswith(BLOB_SUFFIX) and "/" not in name:
                if name + QUARANTINE_SUFFIX in quarantine_names:
                    continue  # half-quarantined: already counted as evidence
                blobs += 1
                blob_bytes += size or 0
                if size is None:
                    unknown_size += 1
        return StoreStats(
            blobs=blobs,
            blob_bytes=blob_bytes,
            manifests=manifests,
            manifest_bytes=manifest_bytes,
            quarantined=quarantined,
            unknown_size=unknown_size,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.url!r})"
