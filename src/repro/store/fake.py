"""An in-process S3-compatible object server (tests, CI, local fan-out).

``ObjectStoreServer`` is a :mod:`http.server`-based endpoint implementing
exactly the protocol :class:`repro.store.http_store.HTTPObjectStore`
speaks: ``GET``/``PUT``/``HEAD``/``DELETE`` on object paths and the S3 v2
listing (``GET /?list-type=2&prefix=…`` → ``ListBucketResult`` XML).
Objects live in one process-wide dict guarded by a lock, so a server
started once serves shard, merge and mirror commands alike.

Tests use the :class:`ObjectStoreServer` context manager for an ephemeral
port; ``repro-sdpolicy store serve`` (and ``python -m repro.store.fake``)
runs a blocking instance so CI can exercise the multi-machine recipe
against ``s3+http://127.0.0.1:<port>/…`` without any external service.
"""

from __future__ import annotations

import argparse
import datetime
import threading
import time
from email.utils import formatdate
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, unquote, urlsplit
from xml.sax.saxutils import escape


def _iso8601(epoch: float) -> str:
    """Epoch seconds as the ISO 8601 UTC stamp S3 listings use."""
    stamp = datetime.datetime.fromtimestamp(epoch, tz=datetime.timezone.utc)
    return stamp.strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "Z"


class _ObjectState:
    """The shared object map of one server instance."""

    def __init__(self) -> None:
        self.objects: Dict[str, Tuple[bytes, float]] = {}
        self.lock = threading.Lock()


class _Handler(BaseHTTPRequestHandler):
    server_version = "ReproObjectStore/1.0"
    protocol_version = "HTTP/1.1"

    # The state is attached to the server object by ObjectStoreServer.
    @property
    def _state(self) -> _ObjectState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    def _object_name(self) -> str:
        return unquote(urlsplit(self.path).path).lstrip("/")

    def _reply(
        self, status: int, body: bytes = b"", headers: Optional[Dict[str, str]] = None
    ) -> None:
        self.send_response(status)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _list(self, prefix: str, token: str) -> None:
        page_size = getattr(self.server, "page_size", 1000)
        with self._state.lock:
            keys = sorted(k for k in self._state.objects if k.startswith(prefix))
            meta = {k: (len(self._state.objects[k][0]), self._state.objects[k][1])
                    for k in keys}
        if token:  # continuation token: the last key of the previous page
            keys = [k for k in keys if k > token]
        page, rest = keys[:page_size], keys[page_size:]
        contents = "".join(
            f"<Contents><Key>{escape(key)}</Key>"
            f"<Size>{meta[key][0]}</Size>"
            # ISO 8601, as real S3 listings (HEAD answers HTTP-dates).
            f"<LastModified>{_iso8601(meta[key][1])}</LastModified>"
            "</Contents>"
            for key in page
        )
        truncation = f"<IsTruncated>{'true' if rest else 'false'}</IsTruncated>"
        if rest:
            truncation += (
                f"<NextContinuationToken>{escape(page[-1])}</NextContinuationToken>"
            )
        body = (
            '<?xml version="1.0" encoding="UTF-8"?>'
            f"<ListBucketResult><Prefix>{escape(prefix)}</Prefix>"
            f"<KeyCount>{len(page)}</KeyCount>{truncation}{contents}"
            "</ListBucketResult>"
        ).encode("utf-8")
        self._reply(200, body, {"Content-Type": "application/xml"})

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        split = urlsplit(self.path)
        query = parse_qs(split.query)
        if "list-type" in query:
            self._list(
                query.get("prefix", [""])[0],
                query.get("continuation-token", [""])[0],
            )
            return
        name = self._object_name()
        with self._state.lock:
            entry = self._state.objects.get(name)
        if entry is None:
            self._reply(404)
            return
        data, mtime = entry
        self._reply(
            200,
            data,
            {
                "Content-Type": "application/octet-stream",
                "Last-Modified": formatdate(mtime, usegmt=True),
            },
        )

    def do_HEAD(self) -> None:  # noqa: N802
        name = self._object_name()
        with self._state.lock:
            entry = self._state.objects.get(name)
        if entry is None:
            self._reply(404)
            return
        data, mtime = entry
        self._reply(
            200, data, {"Last-Modified": formatdate(mtime, usegmt=True)}
        )

    def do_PUT(self) -> None:  # noqa: N802
        name = self._object_name()
        if not name:
            self._reply(400)
            return
        length = int(self.headers.get("Content-Length", 0))
        data = self.rfile.read(length) if length else b""
        with self._state.lock:
            self._state.objects[name] = (data, time.time())
        self._reply(200)

    def do_DELETE(self) -> None:  # noqa: N802
        name = self._object_name()
        with self._state.lock:
            existed = self._state.objects.pop(name, None) is not None
        self._reply(204 if existed else 404)


class ObjectStoreServer:
    """A threaded in-process object endpoint (context manager).

    >>> with ObjectStoreServer() as server:
    ...     store = open_store(server.store_url("bucket"))
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        page_size: int = 1000,
    ) -> None:
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.state = _ObjectState()  # type: ignore[attr-defined]
        self._server.verbose = verbose  # type: ignore[attr-defined]
        self._server.page_size = page_size  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def store_url(self, prefix: str = "") -> str:
        """The ``s3+http://`` URL clients should use (optional key prefix)."""
        url = f"s3+http://{self.host}:{self.port}"
        return f"{url}/{prefix.strip('/')}" if prefix.strip("/") else url

    # ------------------------------------------------------------------ #
    def start(self) -> "ObjectStoreServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-object-store", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def serve_forever(self) -> None:
        """Run in the calling thread (the ``store serve`` command)."""
        try:
            self._server.serve_forever()
        finally:
            self._server.server_close()

    def __enter__(self) -> "ObjectStoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Blocking entry point: ``python -m repro.store.fake --port 9317``."""
    parser = argparse.ArgumentParser(
        description="In-process S3-compatible object store (testing/CI only: "
        "no auth, no persistence)."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9317)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    server = ObjectStoreServer(host=args.host, port=args.port, verbose=args.verbose)
    print(
        f"serving object store on {server.store_url()} (in-memory, Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    # repro: allow[exc-swallow] Ctrl-C is the documented way to stop the
    # dev server; exiting 0 on interrupt is the behaviour, not a bug
    except KeyboardInterrupt:  # pragma: no cover
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
