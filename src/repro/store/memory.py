"""In-memory result store (tests, dry runs).

``memory://<name>`` URLs resolve to one shared process-wide instance per
name, so two :class:`~repro.experiments.sweep.SweepRunner` invocations in
the same process (a shard and a merge in one test, say) see the same
objects — mirroring how two machines would share a remote store.  The store
vanishes with the process and is never visible to pool *workers* (cache I/O
happens in the parent), which is exactly what the sweep runner needs.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.store.base import ObjectStat, ResultStore

_Entry = Tuple[str, Optional[ObjectStat]]


class MemoryStore(ResultStore):
    """A dict-backed result store with the full protocol semantics."""

    _registry: Dict[str, "MemoryStore"] = {}
    _registry_lock = threading.Lock()

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.url = f"memory://{name}"
        self._objects: Dict[str, Tuple[bytes, float]] = {}
        self._lock = threading.Lock()

    @classmethod
    def named(cls, name: str) -> "MemoryStore":
        """The shared instance behind ``memory://<name>`` (process-wide)."""
        with cls._registry_lock:
            store = cls._registry.get(name)
            if store is None:
                store = cls._registry[name] = cls(name)
            return store

    @classmethod
    def reset(cls, name: Optional[str] = None) -> None:
        """Drop one named instance (or all of them); test isolation."""
        with cls._registry_lock:
            if name is None:
                cls._registry.clear()
            else:
                cls._registry.pop(name, None)

    # ------------------------------------------------------------------ #
    def _read(self, name: str) -> Optional[bytes]:
        with self._lock:
            entry = self._objects.get(name)
        return entry[0] if entry is not None else None

    def _write(self, name: str, data: bytes) -> None:
        with self._lock:
            self._objects[name] = (bytes(data), time.time())

    def _delete(self, name: str) -> bool:
        with self._lock:
            return self._objects.pop(name, None) is not None

    def _names(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(n for n in self._objects if n.startswith(prefix))

    def _stat(self, name: str) -> Optional[ObjectStat]:
        with self._lock:
            entry = self._objects.get(name)
        if entry is None:
            return None
        return ObjectStat(size=len(entry[0]), mtime=entry[1])

    def _entries(self, prefix: str = "") -> List[_Entry]:
        with self._lock:
            return [
                (name, ObjectStat(size=len(data), mtime=mtime))
                for name, (data, mtime) in sorted(self._objects.items())
                if name.startswith(prefix)
            ]
