"""S3-compatible HTTP object-store backend (stdlib only).

``HTTPObjectStore`` speaks plain object semantics against any endpoint that
accepts ``GET``/``PUT``/``HEAD``/``DELETE`` on object URLs and answers the
S3 ``GET /?list-type=2&prefix=…`` listing with a ``ListBucketResult`` XML
document — MinIO, an S3 bucket behind a signing proxy, or the in-process
test fake in :mod:`repro.store.fake`.  The client is deliberately
stdlib-``urllib`` only (no boto, no requests): this repo's container images
stay dependency-free and the protocol surface the sweep subsystem needs is
four verbs and a list.

URLs use the ``s3+http://`` / ``s3+https://`` schemes; everything after the
authority is a key prefix (the "bucket/path"), so several sweeps can share
one endpoint::

    s3+http://127.0.0.1:9000/repro-sweeps/projectA

Unauthenticated endpoints only — credential signing (SigV4) is out of
scope; front a real bucket with a signing proxy.  Listings follow the
``IsTruncated``/``NextContinuationToken`` pagination protocol, so caches
beyond one page (1000 keys on real S3) enumerate completely.
"""

from __future__ import annotations

import datetime
import logging
import time
import urllib.error
import urllib.parse
import urllib.request
import xml.etree.ElementTree as ET
from email.utils import parsedate_to_datetime
from typing import Callable, List, Optional, Tuple

from repro.store.base import ObjectStat, ResultStore, StoreError

#: Transient failures are retried this many times with a short backoff.
DEFAULT_RETRIES = 2

_log = logging.getLogger(__name__)

_SCHEMES = {"s3+http": "http", "s3+https": "https"}


class HTTPObjectStore(ResultStore):
    """Result store over an S3-compatible HTTP object endpoint."""

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in _SCHEMES:
            raise StoreError(
                f"HTTPObjectStore needs an s3+http(s):// URL, got {url!r}"
            )
        if not parsed.netloc:
            raise StoreError(f"object-store URL {url!r} has no host")
        self.url = url.rstrip("/")
        self.base = f"{_SCHEMES[parsed.scheme]}://{parsed.netloc}"
        prefix = parsed.path.strip("/")
        self.prefix = prefix + "/" if prefix else ""
        self.timeout = timeout
        self.retries = max(0, int(retries))
        #: Optional observer ``(method, url, attempt)`` called before each
        #: retry sleep — the instrumentation hook
        #: :class:`repro.telemetry.InstrumentedStore` counts retries with.
        self.on_retry: Optional[Callable[[str, str, int], None]] = None

    # ------------------------------------------------------------------ #
    def _object_url(self, name: str) -> str:
        return f"{self.base}/{urllib.parse.quote(self.prefix + name, safe='/')}"

    def _request(
        self,
        method: str,
        url: str,
        data: Optional[bytes] = None,
    ) -> Optional[Tuple[bytes, dict]]:
        """One HTTP round-trip; ``None`` on 404, StoreError otherwise."""
        last_exc: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, data=data, method=method)
            if data is not None:
                request.add_header("Content-Type", "application/octet-stream")
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    return resp.read(), dict(resp.headers)
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return None
                # 5xx may be transient; 4xx (other than 404) never is.
                if exc.code < 500 or attempt == self.retries:
                    raise StoreError(
                        f"{method} {url} failed: HTTP {exc.code} {exc.reason}"
                    ) from exc
                last_exc = exc
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                if attempt == self.retries:
                    raise StoreError(f"{method} {url} failed: {exc}") from exc
                last_exc = exc
            _log.warning(
                "retrying %s %s (attempt %d/%d): %s",
                method,
                url,
                attempt + 1,
                self.retries,
                last_exc,
            )
            if self.on_retry is not None:
                self.on_retry(method, url, attempt)
            time.sleep(0.1 * (attempt + 1))
        raise StoreError(f"{method} {url} failed: {last_exc}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def _read(self, name: str) -> Optional[bytes]:
        response = self._request("GET", self._object_url(name))
        return response[0] if response is not None else None

    def _write(self, name: str, data: bytes) -> None:
        if self._request("PUT", self._object_url(name), data=bytes(data)) is None:
            raise StoreError(f"PUT {self._object_url(name)} answered 404")

    def _delete(self, name: str) -> bool:
        return self._request("DELETE", self._object_url(name)) is not None

    def _stat(self, name: str) -> Optional[ObjectStat]:
        response = self._request("HEAD", self._object_url(name))
        if response is None:
            return None
        _, headers = response
        headers = {k.lower(): v for k, v in headers.items()}
        # A missing or unparsable Content-Length means the size is unknown,
        # not zero — zero would silently corrupt prune/stats byte totals.
        size: Optional[int] = None
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                size = None
            else:
                if size < 0:
                    size = None
        mtime: Optional[float] = None
        modified = headers.get("last-modified")
        if modified:
            try:
                mtime = parsedate_to_datetime(modified).timestamp()
            except (TypeError, ValueError):
                mtime = None
        return ObjectStat(size=size, mtime=mtime)

    @staticmethod
    def _listing_mtime(text: str) -> Optional[float]:
        """Parse a listing ``<LastModified>`` (ISO 8601 on S3) to an epoch."""
        text = text.strip()
        if not text:
            return None
        try:
            return datetime.datetime.fromisoformat(
                text.replace("Z", "+00:00")
            ).timestamp()
        except ValueError:
            try:  # not ISO 8601 — some proxies emit HTTP-dates here
                return parsedate_to_datetime(text).timestamp()
            except (TypeError, ValueError):
                return None  # unknown format: the entry has no usable mtime

    def _entries(self, prefix: str = "") -> List[Tuple[str, Optional[ObjectStat]]]:
        """One listing enumeration, metadata included.

        The ``list-type=2`` document already carries ``<Size>`` and
        ``<LastModified>`` per ``<Contents>`` entry, so aggregate
        operations (``stats``/``prune``/``gc``) cost one round-trip per
        page instead of one HEAD per object.
        """
        entries: List[Tuple[str, Optional[ObjectStat]]] = []
        token: Optional[str] = None
        while True:
            params = {"list-type": "2", "prefix": self.prefix + prefix}
            if token:
                params["continuation-token"] = token
            response = self._request(
                "GET", f"{self.base}/?{urllib.parse.urlencode(params)}"
            )
            if response is None:
                raise StoreError(f"list on {self.base} answered 404")
            body, _ = response
            try:
                root = ET.fromstring(body)
            except ET.ParseError as exc:
                raise StoreError(
                    f"list on {self.base} returned invalid XML: {exc}"
                ) from exc
            truncated = False
            token = None
            # Both namespaced (real S3) and bare (the fake) documents are fine.
            for element in root.iter():
                tag = element.tag.rsplit("}", 1)[-1]
                if tag == "Contents":
                    key = None
                    size: Optional[int] = None
                    mtime: Optional[float] = None
                    for child in element:
                        child_tag = child.tag.rsplit("}", 1)[-1]
                        text = child.text or ""
                        if child_tag == "Key":
                            key = text
                        elif child_tag == "Size":
                            try:
                                size = int(text.strip())
                            except ValueError:
                                size = None
                        elif child_tag == "LastModified":
                            mtime = self._listing_mtime(text)
                    if key and key.startswith(self.prefix):
                        stat = (
                            ObjectStat(size=size, mtime=mtime)
                            if size is not None or mtime is not None
                            else None
                        )
                        entries.append((key[len(self.prefix) :], stat))
                elif tag == "IsTruncated":
                    truncated = (element.text or "").strip().lower() == "true"
                elif tag == "NextContinuationToken":
                    token = (element.text or "").strip() or None
            if not truncated:
                break
            if token is None:
                raise StoreError(
                    f"list on {self.base} is truncated but carries no "
                    "NextContinuationToken; refusing a partial listing"
                )
        return sorted(entries, key=lambda entry: entry[0])

    def _names(self, prefix: str = "") -> List[str]:
        return [name for name, _ in self._entries(prefix)]
