"""Store lifecycle: blob integrity envelopes, manifest-aware gc, verify, repair.

The sweep cache has no intrinsic notion of "still needed": blobs are
content-addressed and shard manifests (:mod:`repro.experiments.executors`)
are the only record of which blobs a resumable ``sweep merge`` still
depends on.  This module is the lifecycle layer on top of the
:class:`~repro.store.base.ResultStore` protocol:

* **Envelopes** — :func:`wrap_blob`/:func:`unwrap_blob` frame a cache
  payload with a versioned header carrying a SHA-256 content digest, so a
  truncated or bit-rotted blob is detected on every read instead of
  silently skewing a reproduced figure.  Envelope-less blobs written
  before the envelope existed still load (and verify reports them as
  *legacy* — re-runnable but not checkable).
* **References** — :func:`collect_references` walks every shard manifest
  in a store (format v2 records already carry ``cache_key``; v3 adds the
  blob ``digest``) and returns the *live* blob set.
* **gc** — :func:`gc` deletes only blobs no manifest references, with a
  ``grace`` age floor protecting in-flight writes, and sweeps ``*.tmp``
  debris a crashed atomic write left behind.  Unlike ``prune`` it trusts
  manifests, not age: blobs of purely unsharded sweeps (which write no
  manifest) count as unreferenced, so use ``prune`` for age-based
  retention of those.
* **verify** — :func:`verify` re-hashes every blob, quarantines envelope
  mismatches, and reports drift between stored blobs and the digests shard
  manifests recorded (informational: a legitimately recomputed blob may
  differ byte-wise through nondeterministic timing fields).
* **repair** — :func:`repair` re-fetches quarantined blobs from a mirror
  store, verifies their integrity, and republishes them.

Everything here is backend-agnostic; like :mod:`repro.store.tools` this is
a friend module of :mod:`repro.store.base` and may use the object-name
primitives directly (the temp-debris sweep has no blob-level spelling).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.store.base import BLOB_SUFFIX, TMP_SUFFIX, ResultStore

#: Leading bytes of an enveloped blob.  Pickles start with ``\x80``, so an
#: envelope can never be mistaken for a pre-envelope payload (or vice
#: versa) and back-compat detection is a prefix check.
ENVELOPE_MAGIC = b"repro-blob/"

#: Bump when the envelope *header* layout changes.  The header is
#: self-describing (``repro-blob/<version> …``), so readers reject
#: envelopes from the future instead of misparsing them.
ENVELOPE_VERSION = 1


class BlobIntegrityError(ValueError):
    """An enveloped blob failed its integrity check (digest/size/header).

    Deliberately *not* a :class:`~repro.store.base.StoreError`: transport
    failures must propagate out of cache probes, while integrity failures
    mean the bytes arrived fine but are wrong — the caller quarantines
    them like any other corrupt entry.
    """


def blob_digest(payload: bytes) -> str:
    """SHA-256 content digest (hex) of an unwrapped blob payload."""
    return hashlib.sha256(payload).hexdigest()


def wrap_blob(payload: bytes) -> Tuple[bytes, str]:
    """Frame a payload in the integrity envelope; returns ``(blob, digest)``.

    Layout: one ASCII header line —
    ``repro-blob/1 sha256=<hex> size=<bytes>\\n`` — followed by the raw
    payload.  The recorded size detects truncation even when the torn tail
    happens to re-hash consistently (it cannot, but the check is free and
    fails faster).
    """
    digest = blob_digest(payload)
    header = f"repro-blob/{ENVELOPE_VERSION} sha256={digest} size={len(payload)}\n"
    return header.encode("ascii") + payload, digest


def unwrap_blob(data: bytes) -> Tuple[bytes, Optional[str]]:
    """Unframe a blob; returns ``(payload, digest)`` — digest verified.

    A blob without the envelope magic is a pre-envelope (legacy) payload:
    returned verbatim with ``digest=None`` (nothing recorded to verify
    against).  An enveloped blob is verified — recorded size and SHA-256
    against the actual payload — and :class:`BlobIntegrityError` is raised
    on any mismatch, truncation, or unparsable/future header.
    """
    if not data.startswith(ENVELOPE_MAGIC):
        return data, None
    newline = data.find(b"\n")
    if newline < 0:
        raise BlobIntegrityError("truncated blob envelope: no header terminator")
    try:
        header = data[:newline].decode("ascii")
    except UnicodeDecodeError as exc:
        raise BlobIntegrityError(f"undecodable blob envelope header: {exc}") from exc
    fields = header.split()
    version_text = fields[0][len(ENVELOPE_MAGIC) :]
    try:
        version = int(version_text)
    except ValueError as exc:
        raise BlobIntegrityError(
            f"unparsable blob envelope version {version_text!r}"
        ) from exc
    if version != ENVELOPE_VERSION:
        raise BlobIntegrityError(
            f"blob envelope version {version} is not supported "
            f"(this build reads version {ENVELOPE_VERSION})"
        )
    attrs = dict(
        part.split("=", 1) for part in fields[1:] if "=" in part
    )
    digest = attrs.get("sha256", "")
    if len(digest) != 64:
        raise BlobIntegrityError(f"blob envelope carries no sha256 digest: {header!r}")
    payload = data[newline + 1 :]
    size_text = attrs.get("size")
    if size_text is not None:
        try:
            size = int(size_text)
        except ValueError as exc:
            raise BlobIntegrityError(
                f"unparsable blob envelope size {size_text!r}"
            ) from exc
        if size != len(payload):
            raise BlobIntegrityError(
                f"blob truncated: envelope records {size} payload bytes, "
                f"got {len(payload)}"
            )
    actual = blob_digest(payload)
    if actual != digest:
        raise BlobIntegrityError(
            f"blob digest mismatch: envelope records sha256 {digest}, "
            f"payload hashes to {actual}"
        )
    return payload, digest


# --------------------------------------------------------------------- #
# Manifest reference tracking
# --------------------------------------------------------------------- #
@dataclass
class ManifestReferences:
    """The live blob set one store's shard manifests pin.

    ``digests`` maps a referenced cache key to the blob digest the
    owning manifest recorded (v3 manifests only); ``manifests`` counts the
    shard manifests walked (documents without a task list — not shard
    manifests — contribute no references and are not counted).
    """

    live_keys: Set[str] = field(default_factory=set)
    digests: Dict[str, str] = field(default_factory=dict)
    manifests: int = 0


def collect_references(store: ResultStore) -> ManifestReferences:
    """Walk every shard manifest of ``store`` and return the live blob set.

    An unreadable manifest raises :class:`StoreError` — a lifecycle
    operation must not guess which blobs a manifest it cannot parse was
    pinning.  Delete the bad manifest (``delete_manifest``) to proceed.
    """
    refs = ManifestReferences()
    for name in store.list_manifests():
        manifest = store.read_manifest(name)  # StoreError on bad JSON
        if manifest is None:  # deleted between list and read
            continue
        tasks = manifest.get("tasks")
        if not isinstance(tasks, list):
            continue  # not a shard manifest: pins nothing
        refs.manifests += 1
        for record in tasks:
            if not isinstance(record, dict):
                continue
            key = record.get("cache_key")
            if not isinstance(key, str) or not key:
                continue
            refs.live_keys.add(key)
            digest = record.get("digest")
            if isinstance(digest, str) and digest:
                refs.digests[key] = digest
    return refs


# --------------------------------------------------------------------- #
# gc
# --------------------------------------------------------------------- #
@dataclass
class GCStats:
    """Outcome of one :func:`gc` call."""

    blobs_deleted: int = 0
    blob_bytes_freed: int = 0
    kept_referenced: int = 0
    kept_young: int = 0
    unknown_age: int = 0
    temp_deleted: int = 0
    manifests_walked: int = 0


#: Default gc/--grace age floor: young enough to protect a sweep that
#: published a blob but has not yet (re)written its manifest.
DEFAULT_GRACE_SECONDS = 3600.0


def gc(
    store: ResultStore,
    grace_seconds: float = DEFAULT_GRACE_SECONDS,
    now: Optional[float] = None,
    dry_run: bool = False,
) -> GCStats:
    """Delete blobs no shard manifest references, plus stale temp debris.

    Manifest-referenced blobs are never deleted, whatever their age — a
    half-finished sharded sweep keeps every completed result until its
    manifests are deleted.  Unreferenced blobs younger than
    ``grace_seconds`` are kept (a racing sweep publishes the blob before
    the manifest naming it), as are blobs whose age the backend cannot
    report.  Stray ``*.tmp`` objects from crashed atomic writes are swept
    once they are older than the grace period.  Quarantined entries are
    corruption *evidence* and left alone (``prune`` clears them).
    """
    if grace_seconds < 0:
        raise ValueError(f"grace_seconds must be >= 0, got {grace_seconds}")
    refs = collect_references(store)
    cutoff = (time.time() if now is None else now) - grace_seconds
    stats = GCStats(manifests_walked=refs.manifests)
    # One bulk enumeration feeds both the blob and the temp-debris pass —
    # on the HTTP backend a second full paginated listing would double the
    # round-trips the _entries() API exists to avoid.
    for name, stat in store._entries():
        if name.endswith(BLOB_SUFFIX) and "/" not in name:
            key = name[: -len(BLOB_SUFFIX)]
            if key in refs.live_keys:
                stats.kept_referenced += 1
                continue
            if stat is None or stat.mtime is None:
                stats.unknown_age += 1
                continue
            if stat.mtime >= cutoff:
                stats.kept_young += 1
                continue
            if not dry_run:
                store.delete(key)
            stats.blobs_deleted += 1
            stats.blob_bytes_freed += stat.size or 0
        elif name.endswith(TMP_SUFFIX):
            if stat is None or stat.mtime is None or stat.mtime >= cutoff:
                continue
            if not dry_run:
                store._delete(name)
            stats.temp_deleted += 1
    return stats


# --------------------------------------------------------------------- #
# verify
# --------------------------------------------------------------------- #
@dataclass
class VerifyReport:
    """Outcome of one :func:`verify` pass (machine-readable via ``as_dict``).

    ``corrupt`` entries failed their own envelope check and were
    quarantined (unless ``dry_run``); ``drift`` entries verify against
    their envelope but differ from the digest a shard manifest recorded
    (informational — a re-computed blob legitimately differs through its
    embedded timing field); ``missing_referenced`` are manifest-pinned
    keys with no blob behind them (a pruned or foreign store).
    """

    store: str
    checked: int = 0
    ok: int = 0
    legacy: int = 0
    corrupt: List[Dict[str, str]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    drift: List[Dict[str, str]] = field(default_factory=list)
    missing_referenced: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No integrity failures (legacy blobs and drift do not count)."""
        return not self.corrupt

    def as_dict(self) -> Dict[str, Any]:
        return {
            "store": self.store,
            "checked": self.checked,
            "ok": self.ok,
            "legacy": self.legacy,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "drift": self.drift,
            "missing_referenced": self.missing_referenced,
            "clean": self.clean,
        }


def verify(store: ResultStore, dry_run: bool = False) -> VerifyReport:
    """Re-hash every blob of ``store``; quarantine integrity failures.

    Every enveloped blob is checked against its own recorded SHA-256 and
    size; failures are quarantined (kept live under ``dry_run``) and
    listed in the report.  Envelope-less (pre-envelope) blobs cannot be
    verified and are counted as ``legacy``.  Digests recorded by v3 shard
    manifests are cross-checked where available — mismatches are reported
    as ``drift``, never quarantined, because a legitimately re-computed
    blob differs byte-wise from what the manifest saw.
    """
    refs = collect_references(store)
    report = VerifyReport(store=store.url)
    seen: Set[str] = set()
    for key in store.list():
        data = store.get(key)
        if data is None:  # deleted between list and get
            continue
        report.checked += 1
        seen.add(key)
        try:
            _, digest = unwrap_blob(data)
        except BlobIntegrityError as exc:
            report.corrupt.append({"key": key, "error": str(exc)})
            if not dry_run:
                store.quarantine(key)
                report.quarantined.append(key)
            continue
        if digest is None:
            report.legacy += 1
            continue
        report.ok += 1
        recorded = refs.digests.get(key)
        if recorded is not None and recorded != digest:
            report.drift.append(
                {"key": key, "manifest": recorded, "blob": digest}
            )
    report.missing_referenced = sorted(refs.live_keys - seen)
    return report


# --------------------------------------------------------------------- #
# repair
# --------------------------------------------------------------------- #
@dataclass
class RepairStats:
    """Outcome of one :func:`repair` call."""

    repaired: int = 0
    missing_in_source: int = 0
    still_corrupt: int = 0
    repaired_keys: List[str] = field(default_factory=list)


def repair(
    store: ResultStore,
    source: ResultStore,
    dry_run: bool = False,
) -> RepairStats:
    """Re-fetch every quarantined blob of ``store`` from a mirror.

    For each quarantined key, the mirror's copy is fetched, its envelope
    verified (a legacy envelope-less copy is accepted — there is nothing
    recorded to check), republished under the live key, and the
    quarantined entry dropped.  Keys the mirror lacks, or whose mirror
    copy fails its own integrity check, are left quarantined.
    """
    stats = RepairStats()
    for key in store.list_quarantined():
        data = source.get(key)
        if data is None:
            stats.missing_in_source += 1
            continue
        try:
            unwrap_blob(data)
        except BlobIntegrityError:
            stats.still_corrupt += 1
            continue
        if not dry_run:
            store.put(key, data)
            store.delete_quarantined(key)
        stats.repaired += 1
        stats.repaired_keys.append(key)
    return stats
