"""Pluggable result stores for the sweep subsystem.

A :class:`ResultStore` holds the sweep cache's *blobs* (pickled runs,
addressed by content-hash key) and *manifests* (atomic JSON shard state).
Three backends ship:

* :class:`LocalFSStore` — a local/shared directory, byte-compatible with
  the pre-store ``<cache-dir>/*.pkl`` + ``manifests/`` layout
  (``file:///shared/cache`` or a bare path);
* :class:`MemoryStore` — process-local, for tests and dry runs
  (``memory://name``);
* :class:`HTTPObjectStore` — any S3-compatible object endpoint over
  stdlib ``urllib`` (``s3+http://host:port/prefix``,
  ``s3+https://…``).

:func:`open_store` dispatches a URL to its backend; :func:`resolve_store`
adds the ``SweepRunner`` conveniences (``cache_dir`` back-compat, the
``REPRO_STORE_URL`` environment default).  :mod:`repro.store.lifecycle`
adds the lifecycle layer — blob integrity envelopes, manifest-aware
``gc``, ``verify`` and ``repair``.  ``repro-sdpolicy store`` exposes
:mod:`repro.store.tools` and :mod:`repro.store.lifecycle` (stats / prune /
gc / verify / repair / push / pull) and the in-process test endpoint of
:mod:`repro.store.fake` from the shell.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.store.base import (
    BLOB_SUFFIX,
    MANIFEST_PREFIX,
    MANIFEST_SUFFIX,
    ObjectStat,
    QUARANTINE_SUFFIX,
    ResultStore,
    StoreError,
    StoreStats,
)
from repro.store.http_store import HTTPObjectStore
from repro.store.lifecycle import (
    BlobIntegrityError,
    GCStats,
    ManifestReferences,
    RepairStats,
    VerifyReport,
    blob_digest,
    collect_references,
    gc,
    repair,
    unwrap_blob,
    verify,
    wrap_blob,
)
from repro.store.localfs import LocalFSStore, default_cache_dir
from repro.store.memory import MemoryStore
from repro.store.tools import MirrorStats, PruneStats, mirror, parse_age, prune

__all__ = [
    "BLOB_SUFFIX",
    "MANIFEST_PREFIX",
    "MANIFEST_SUFFIX",
    "QUARANTINE_SUFFIX",
    "BlobIntegrityError",
    "GCStats",
    "HTTPObjectStore",
    "LocalFSStore",
    "ManifestReferences",
    "MemoryStore",
    "MirrorStats",
    "ObjectStat",
    "PruneStats",
    "RepairStats",
    "ResultStore",
    "StoreError",
    "StoreStats",
    "VerifyReport",
    "blob_digest",
    "collect_references",
    "default_cache_dir",
    "gc",
    "mirror",
    "open_store",
    "parse_age",
    "prune",
    "repair",
    "resolve_store",
    "unwrap_blob",
    "verify",
    "wrap_blob",
]

#: URL schemes accepted by :func:`open_store` (a bare path is file://).
STORE_SCHEMES = ("file://", "memory://", "s3+http://", "s3+https://")


def open_store(url: Union[str, os.PathLike]) -> ResultStore:
    """Open a result store by URL (``file://``, ``memory://``, ``s3+http(s)://``).

    A plain path (no scheme) is a local directory, so ``--store`` accepts
    everything ``--cache-dir`` did.  ``file://auto`` and the bare string
    ``auto`` select :func:`default_cache_dir`.
    """
    text = os.fspath(url)
    if text.startswith("memory://"):
        return MemoryStore.named(text[len("memory://") :].strip("/") or "default")
    if text.startswith(("s3+http://", "s3+https://")):
        return HTTPObjectStore(text)
    if text.startswith("file://"):
        text = text[len("file://") :] or "/"
    elif "://" in text:
        scheme = text.split("://", 1)[0]
        raise StoreError(
            f"unknown store scheme {scheme!r}; expected one of {STORE_SCHEMES} "
            "or a plain directory path"
        )
    if text == "auto":
        return LocalFSStore(default_cache_dir())
    return LocalFSStore(Path(text))


def resolve_store(
    store: Optional[Union[str, os.PathLike, ResultStore]] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
) -> Optional[ResultStore]:
    """Resolve ``SweepRunner``'s store/cache-dir configuration to a backend.

    Precedence: an explicit ``store`` (instance or URL) wins; then the
    back-compat ``cache_dir`` (a directory path, or ``"auto"``); then the
    ``REPRO_STORE_URL`` environment variable.  All unset means caching is
    disabled (``None``), exactly as before stores existed.
    """
    if store is not None:
        if isinstance(store, ResultStore):
            return store
        return open_store(store)
    if cache_dir is not None:
        if cache_dir == "auto":
            return LocalFSStore(default_cache_dir())
        return LocalFSStore(Path(cache_dir))
    env = os.environ.get("REPRO_STORE_URL")
    if env:
        return open_store(env)
    return None
