"""Local-filesystem result store: the historical ``<cache-dir>`` layout.

``LocalFSStore(root)`` is byte-compatible with caches written before the
store subsystem existed: blobs live as ``<root>/<key>.pkl``, shard manifests
as ``<root>/manifests/<name>.json`` and quarantined blobs as
``<root>/<key>.pkl.corrupt``.  Writes publish atomically (``mkstemp`` +
``os.replace``), so concurrent sweeps sharing one directory never observe a
torn entry, and quarantine is a single rename.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.store.base import (
    BLOB_SUFFIX,
    MANIFEST_PREFIX,
    ObjectStat,
    QUARANTINE_SUFFIX,
    ResultStore,
    StoreError,
)


def default_cache_dir() -> Path:
    """Default on-disk cache location.

    ``REPRO_SWEEP_CACHE_DIR`` wins outright; otherwise the XDG base
    directory spec is honoured (``$XDG_CACHE_HOME/repro/sweeps``) before
    falling back to ``~/.cache/repro/sweeps``.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg).expanduser() / "repro" / "sweeps"
    return Path.home() / ".cache" / "repro" / "sweeps"


class LocalFSStore(ResultStore):
    """Result store over a local directory (or any mounted shared FS).

    Parameters
    ----------
    root:
        The cache directory; created lazily on first write.
    manifest_dir:
        Optional override for the manifest directory (the CLI's
        ``--manifest DIR``); defaults to ``<root>/manifests``.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        manifest_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.manifest_dir = (
            Path(manifest_dir).expanduser()
            if manifest_dir is not None
            else self.root / MANIFEST_PREFIX.rstrip("/")
        )
        self.url = f"file://{self.root}"

    # ------------------------------------------------------------------ #
    def _path(self, name: str) -> Path:
        if name.startswith(MANIFEST_PREFIX):
            return self.manifest_dir / name[len(MANIFEST_PREFIX) :]
        return self.root / name

    def blob_path(self, key: str) -> Path:
        """Local path of one blob (introspection/tests; LocalFS only)."""
        return self.root / (key + BLOB_SUFFIX)

    # ------------------------------------------------------------------ #
    def _read(self, name: str) -> Optional[bytes]:
        try:
            return self._path(name).read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read {name!r} from {self.url}: {exc}") from exc

    def _write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        except OSError as exc:
            raise StoreError(f"cannot write {name!r} to {self.url}: {exc}") from exc
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp_name, path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            # repro: allow[exc-swallow] best-effort tmp cleanup; the
            # original write failure re-raises just below
            except OSError:
                pass
            if isinstance(exc, OSError):  # ENOSPC, EACCES… keep the contract
                raise StoreError(
                    f"cannot write {name!r} to {self.url}: {exc}"
                ) from exc
            raise

    def _delete(self, name: str) -> bool:
        try:
            self._path(name).unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise StoreError(f"cannot delete {name!r} from {self.url}: {exc}") from exc

    def _names(self, prefix: str = "") -> List[str]:
        names: List[str] = []
        if self.root.is_dir():
            names.extend(p.name for p in self.root.iterdir() if p.is_file())
        if self.manifest_dir.is_dir():
            names.extend(
                MANIFEST_PREFIX + p.name
                for p in self.manifest_dir.iterdir()
                if p.is_file()
            )
        return sorted(name for name in names if name.startswith(prefix))

    def _stat(self, name: str) -> Optional[ObjectStat]:
        try:
            st = self._path(name).stat()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot stat {name!r} in {self.url}: {exc}") from exc
        return ObjectStat(size=st.st_size, mtime=st.st_mtime)

    def _entries(self, prefix: str = "") -> List[Tuple[str, Optional[ObjectStat]]]:
        entries: List[Tuple[str, Optional[ObjectStat]]] = []

        def scan(directory: Path, name_prefix: str) -> None:
            if not directory.is_dir():
                return
            for path in directory.iterdir():
                name = name_prefix + path.name
                if not name.startswith(prefix):
                    continue
                try:
                    st = path.stat()
                # repro: allow[exc-swallow] entry vanished between iterdir
                # and stat (concurrent prune/gc); skipping it is correct
                except OSError:
                    continue
                if not path.is_file():
                    continue
                entries.append((name, ObjectStat(size=st.st_size, mtime=st.st_mtime)))

        scan(self.root, "")
        scan(self.manifest_dir, MANIFEST_PREFIX)
        return sorted(entries, key=lambda entry: entry[0])

    # ------------------------------------------------------------------ #
    def quarantine(self, key: str) -> None:
        """Rename the blob aside atomically (single ``os.replace``).

        Honours the base-class contract: existing quarantine evidence is
        never rewritten (the first capture wins), and a failure that
        leaves the corrupt blob visible to readers raises
        :class:`StoreError` instead of passing silently.
        """
        path = self.blob_path(key)
        quarantined = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            if quarantined.exists():
                # Evidence already captured (an interrupted quarantine, or
                # mirrored in): just finish deleting the live blob.
                try:
                    path.unlink()
                # repro: allow[exc-swallow] delete is idempotent; a
                # concurrently-removed blob is success, not an error
                except FileNotFoundError:
                    pass
                return
            os.replace(path, quarantined)
        # repro: allow[exc-swallow] the blob is already gone — there is
        # nothing left to quarantine and no evidence to capture
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise StoreError(
                f"cannot quarantine blob {key!r} in {self.url}; the corrupt "
                f"blob stays visible to readers: {exc}"
            ) from exc
