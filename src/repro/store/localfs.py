"""Local-filesystem result store: the historical ``<cache-dir>`` layout.

``LocalFSStore(root)`` is byte-compatible with caches written before the
store subsystem existed: blobs live as ``<root>/<key>.pkl``, shard manifests
as ``<root>/manifests/<name>.json`` and quarantined blobs as
``<root>/<key>.pkl.corrupt``.  Writes publish atomically (``mkstemp`` +
``os.replace``), so concurrent sweeps sharing one directory never observe a
torn entry, and quarantine is a single rename.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import List, Optional, Union

from repro.store.base import (
    BLOB_SUFFIX,
    MANIFEST_PREFIX,
    ObjectStat,
    QUARANTINE_SUFFIX,
    ResultStore,
    StoreError,
)


def default_cache_dir() -> Path:
    """Default on-disk cache location.

    ``REPRO_SWEEP_CACHE_DIR`` wins outright; otherwise the XDG base
    directory spec is honoured (``$XDG_CACHE_HOME/repro/sweeps``) before
    falling back to ``~/.cache/repro/sweeps``.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg).expanduser() / "repro" / "sweeps"
    return Path.home() / ".cache" / "repro" / "sweeps"


class LocalFSStore(ResultStore):
    """Result store over a local directory (or any mounted shared FS).

    Parameters
    ----------
    root:
        The cache directory; created lazily on first write.
    manifest_dir:
        Optional override for the manifest directory (the CLI's
        ``--manifest DIR``); defaults to ``<root>/manifests``.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        manifest_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.manifest_dir = (
            Path(manifest_dir).expanduser()
            if manifest_dir is not None
            else self.root / MANIFEST_PREFIX.rstrip("/")
        )
        self.url = f"file://{self.root}"

    # ------------------------------------------------------------------ #
    def _path(self, name: str) -> Path:
        if name.startswith(MANIFEST_PREFIX):
            return self.manifest_dir / name[len(MANIFEST_PREFIX) :]
        return self.root / name

    def blob_path(self, key: str) -> Path:
        """Local path of one blob (introspection/tests; LocalFS only)."""
        return self.root / (key + BLOB_SUFFIX)

    # ------------------------------------------------------------------ #
    def _read(self, name: str) -> Optional[bytes]:
        try:
            return self._path(name).read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read {name!r} from {self.url}: {exc}") from exc

    def _write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        except OSError as exc:
            raise StoreError(f"cannot write {name!r} to {self.url}: {exc}") from exc
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp_name, path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(exc, OSError):  # ENOSPC, EACCES… keep the contract
                raise StoreError(
                    f"cannot write {name!r} to {self.url}: {exc}"
                ) from exc
            raise

    def _delete(self, name: str) -> bool:
        try:
            self._path(name).unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise StoreError(f"cannot delete {name!r} from {self.url}: {exc}") from exc

    def _names(self, prefix: str = "") -> List[str]:
        names: List[str] = []
        if self.root.is_dir():
            names.extend(p.name for p in self.root.iterdir() if p.is_file())
        if self.manifest_dir.is_dir():
            names.extend(
                MANIFEST_PREFIX + p.name
                for p in self.manifest_dir.iterdir()
                if p.is_file()
            )
        return sorted(name for name in names if name.startswith(prefix))

    def _stat(self, name: str) -> Optional[ObjectStat]:
        try:
            st = self._path(name).stat()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot stat {name!r} in {self.url}: {exc}") from exc
        return ObjectStat(size=st.st_size, mtime=st.st_mtime)

    # ------------------------------------------------------------------ #
    def quarantine(self, key: str) -> None:
        """Rename the blob aside atomically (falls back to deletion)."""
        path = self.blob_path(key)
        quarantined = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(path, quarantined)
        except FileNotFoundError:
            pass
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
