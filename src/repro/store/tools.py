"""Store maintenance operations behind ``repro-sdpolicy store``.

``mirror`` copies one store into another (push/pull between a laptop cache
and a remote object store); ``prune`` evicts blobs older than a cutoff —
never ones a shard manifest still references (the lifecycle layer in
:mod:`repro.store.lifecycle` adds manifest-driven ``gc``/``verify``/
``repair`` on top).  All of it is backend-agnostic: only the
:class:`repro.store.base.ResultStore` protocol is used, so any pairing of
local, memory and HTTP stores works.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.store.base import ResultStore
from repro.store.lifecycle import collect_references

_AGE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([smhdw]?)\s*$", re.IGNORECASE)

_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_age(value: str) -> float:
    """Parse a human age (``90s``, ``45m``, ``12h``, ``30d``, ``2w``) to seconds.

    A bare number means days — ``--older-than 30`` is thirty days, the
    natural unit for cache retention.
    """
    match = _AGE_RE.match(str(value))
    if not match:
        raise ValueError(
            f"invalid age {value!r}: expected <number>[s|m|h|d|w], e.g. 30d"
        )
    number, unit = match.groups()
    return float(number) * _AGE_UNITS[unit.lower() or "d"]


@dataclass
class MirrorStats:
    """Outcome of one :func:`mirror` call."""

    blobs_copied: int = 0
    blobs_skipped: int = 0
    blob_bytes_copied: int = 0
    manifests_copied: int = 0
    quarantined_copied: int = 0
    quarantined_skipped: int = 0


def mirror(
    source: ResultStore,
    target: ResultStore,
    overwrite: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> MirrorStats:
    """Copy every blob, manifest and quarantined entry of ``source``.

    Blobs are content-addressed (the key *is* the content hash), so an
    existing target blob is skipped unless ``overwrite`` is set; manifests
    are mutable shard state and always overwritten with the source copy.
    Quarantined entries are corruption *evidence* and travel too — a
    ``store push`` must not silently launder a corrupt cache.
    """
    stats = MirrorStats()
    # One listing instead of a per-key exists() probe: a remote target
    # would otherwise cost one HEAD round-trip per blob.
    present = set() if overwrite else set(target.list())
    for key in source.list():
        if key in present:
            stats.blobs_skipped += 1
            continue
        data = source.get(key)
        if data is None:  # deleted between list and get
            continue
        target.put(key, data)
        stats.blobs_copied += 1
        stats.blob_bytes_copied += len(data)
        if progress is not None:
            progress(f"blob {key}")
    quarantined_present = set() if overwrite else set(target.list_quarantined())
    for key in source.list_quarantined():
        if key in quarantined_present:
            stats.quarantined_skipped += 1
            continue
        data = source.get_quarantined(key)
        if data is None:
            continue
        target.put_quarantined(key, data)
        stats.quarantined_copied += 1
        if progress is not None:
            progress(f"quarantined {key}")
    for name in source.list_manifests():
        payload = source.read_manifest(name)
        if payload is None:
            continue
        target.write_manifest(name, payload)
        stats.manifests_copied += 1
        if progress is not None:
            progress(f"manifest {name}")
    return stats


@dataclass
class PruneStats:
    """Outcome of one :func:`prune` call."""

    blobs_removed: int = 0
    blob_bytes_freed: int = 0
    quarantined_removed: int = 0
    kept: int = 0
    kept_referenced: int = 0
    unknown_age: int = 0


def prune(
    store: ResultStore,
    older_than_seconds: float,
    now: Optional[float] = None,
    dry_run: bool = False,
) -> PruneStats:
    """Delete *unreferenced* blobs older than the cutoff.

    Blobs a shard manifest still references are never evicted, whatever
    their age — deleting one would break the sweep's ``merge``/resume
    (the manifests report every task done but the cache cannot serve it).
    An *unreadable* manifest therefore aborts the blob pass with
    :class:`~repro.store.base.StoreError` (pruning must not guess what it
    was pinning); quarantined entries — corrupt by definition, removed
    regardless of age and independent of any reference — are cleared
    first, so that cleanup still happens.  Blobs without a modification
    time (a backend that cannot report one) are never deleted either.
    Manifests are left alone: they are tiny, and deleting a manifest is
    the deliberate act that releases its blobs to ``gc``.
    """
    cutoff = (time.time() if now is None else now) - older_than_seconds
    stats = PruneStats()
    for key in store.list_quarantined():
        if not dry_run:
            store.delete_quarantined(key)
        stats.quarantined_removed += 1
    live = collect_references(store).live_keys
    for key, stat in store.blob_entries():
        if key in live:
            stats.kept_referenced += 1
            continue
        if stat is None or stat.mtime is None:
            stats.unknown_age += 1
            continue
        if stat.mtime < cutoff:
            if not dry_run:
                store.delete(key)
            stats.blobs_removed += 1
            stats.blob_bytes_freed += stat.size or 0
        else:
            stats.kept += 1
    return stats
