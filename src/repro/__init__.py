"""repro — reproduction of the ICPP 2019 SD-Policy paper.

"Holistic Slowdown Driven Scheduling and Resource Management for Malleable
Jobs" (D'Amico, Jokanovic, Corbalan).

The package provides:

* a discrete-event HPC cluster simulator (:mod:`repro.simulator`) standing
  in for the BSC SLURM simulator;
* the static backfill baseline and FCFS (:mod:`repro.schedulers`);
* SD-Policy itself — malleable backfill, mate selection, slowdown penalties
  and runtime models (:mod:`repro.core`);
* a DROM-like node manager with socket-aware CPU distribution
  (:mod:`repro.nodemanager`);
* workload infrastructure: SWF parsing, the Cirne model, RICC/CEA-Curie-like
  synthetic generators (:mod:`repro.workloads`);
* metrics, analysis, and figure/table regeneration helpers
  (:mod:`repro.metrics`, :mod:`repro.analysis`);
* the emulated MareNostrum4 "real run" with application performance models
  (:mod:`repro.realrun`);
* a command-line driver (:mod:`repro.cli`) and the experiment harness used
  by the benchmarks (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        Cluster, Simulation, BackfillScheduler, SDPolicyScheduler, SDPolicyConfig,
    )
    from repro.workloads import CirneWorkloadModel

    workload = CirneWorkloadModel(num_jobs=500, system_nodes=128, seed=1).generate()
    cluster = Cluster(num_nodes=128, sockets=2, cores_per_socket=24)
    sim = Simulation(cluster, SDPolicyScheduler(SDPolicyConfig(max_slowdown=10)))
    sim.submit_jobs(workload.to_jobs(cpus_per_node=cluster.cpus_per_node))
    result = sim.run()
    print(result.avg_slowdown)
"""

from repro.core import (
    DynamicAverageMaxSlowdown,
    IdealRuntimeModel,
    MateSelection,
    MateSelector,
    SDPolicyConfig,
    SDPolicyScheduler,
    StaticMaxSlowdown,
    WorstCaseRuntimeModel,
)
from repro.schedulers import BackfillScheduler, FCFSScheduler, Scheduler
from repro.simulator import Cluster, Job, JobState, Node, Simulation, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "BackfillScheduler",
    "Cluster",
    "DynamicAverageMaxSlowdown",
    "FCFSScheduler",
    "IdealRuntimeModel",
    "Job",
    "JobState",
    "MateSelection",
    "MateSelector",
    "Node",
    "SDPolicyConfig",
    "SDPolicyScheduler",
    "Scheduler",
    "Simulation",
    "SimulationResult",
    "StaticMaxSlowdown",
    "WorstCaseRuntimeModel",
    "__version__",
]
