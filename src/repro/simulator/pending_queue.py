"""Pending-job queue.

SLURM keeps submitted-but-not-started jobs in a priority queue; the paper's
workloads use FIFO priority (priority = submission order) with backfill
allowed to start lower-priority jobs out of order when they do not delay the
highest-priority waiting job.  This module provides that queue with stable
ordering and O(1) membership checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.simulator.job import Job


class PendingQueue:
    """Priority-ordered collection of pending jobs.

    Jobs are ordered by ``(-priority, submit_time, job_id)``.  With the
    default priority (negative submit time) this is plain FIFO order.
    """

    def __init__(self) -> None:
        self._jobs: Dict[int, Job] = {}
        # Fast path: with default (FIFO) priorities and time-ordered
        # insertion, the dict's insertion order already is the scheduling
        # order, so ``ordered()`` can skip the sort.  The flag is cleared
        # the moment the invariant stops holding: a job with a custom
        # priority, or an insertion behind the current tail (e.g. a
        # ``remove()`` + re-``add()`` of an earlier-submitted job, which
        # appends it at the end of the dict and out of FIFO order).
        self._fifo_only = True

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def add(self, job: Job) -> None:
        """Insert a job; re-inserting the same job id is an error."""
        if job.job_id in self._jobs:
            raise ValueError(f"job {job.job_id} already pending")
        if job.priority != -job.submit_time:
            self._fifo_only = False
        elif self._fifo_only and self._jobs:
            # Appending behind a later-submitted tail breaks "insertion
            # order == FIFO order"; fall back to sorting from here on.
            tail = self._jobs[next(reversed(self._jobs))]
            if (job.submit_time, job.job_id) < (tail.submit_time, tail.job_id):
                self._fifo_only = False
        self._jobs[job.job_id] = job

    def remove(self, job_id: int) -> Job:
        """Remove and return the job with the given id."""
        return self._jobs.pop(job_id)

    def get(self, job_id: int) -> Optional[Job]:
        """Return the pending job with the given id, or ``None``."""
        return self._jobs.get(job_id)

    def ordered(self) -> List[Job]:
        """Jobs in scheduling priority order (highest priority first)."""
        if self._fifo_only:
            return list(self._jobs.values())
        return sorted(
            self._jobs.values(),
            key=lambda j: (-j.priority, j.submit_time, j.job_id),
        )

    def __iter__(self) -> Iterator[Job]:
        return iter(self.ordered())

    def head(self) -> Optional[Job]:
        """The highest-priority pending job, or ``None`` if empty."""
        order = self.ordered()
        return order[0] if order else None
