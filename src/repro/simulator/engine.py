"""Discrete-event engine: event types, the event and the event queue.

The engine is intentionally tiny — a binary heap keyed by ``(time, priority,
serial)`` — because the complexity of the reproduction lives in the
schedulers, not in the event plumbing.  Events are never removed from the
heap; instead, components that reschedule work (e.g. a job whose end time
moved because it was shrunk) bump a *serial* number on the job and stale
events are discarded when popped.

The queue additionally deduplicates superseded ``JOB_END`` events itself: it
remembers the newest validity token pushed per payload, so stale end events
are dropped at the heap boundary instead of surfacing into the simulation's
per-instant batches.  On malleable-heavy runs every reconfiguration leaves
one stale end event behind, so this keeps batch collection and sorting
proportional to the *live* event count.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class EventType(enum.IntEnum):
    """Kinds of events the simulation processes.

    The integer values double as tie-break priorities for events that share
    a timestamp: ends are processed before submits so that resources freed
    at time *t* are visible to jobs arriving at *t*, and explicit schedule
    triggers run last once the system state for the instant is settled.
    """

    JOB_END = 0
    JOB_SUBMIT = 1
    SCHEDULE = 2


@dataclass(order=True, slots=True)
class Event:
    """A single simulation event.

    Events order by ``(time, type priority, serial)``; the payload is not
    part of the ordering.
    """

    time: float
    type_priority: int
    serial: int
    event_type: EventType = field(compare=False)
    payload: Any = field(compare=False, default=None)
    # For JOB_END events: the job's ``end_event_serial`` at scheduling time.
    # A mismatch at pop time means the job was reconfigured and this event is
    # stale.
    validity_token: int = field(compare=False, default=0)


class EventQueue:
    """A time-ordered queue of :class:`Event` objects.

    ``JOB_END`` events are deduplicated by validity token: pushing an end
    event for a payload supersedes any previously pushed end event of that
    payload with a lower token, and superseded events are silently dropped
    when they reach the top of the heap.  ``len()`` and truthiness reflect
    only the live (non-superseded) events.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        # payload -> newest validity token pushed for that payload's end.
        self._end_tokens: Dict[Any, int] = {}
        # (payload, token) -> number of such JOB_END events currently in the
        # heap.  Needed so that superseding an end event that was already
        # popped (e.g. reconfigured while its old event sits in the current
        # batch) does not count phantom stale events.
        self._end_counts: Dict[Tuple[Any, int], int] = {}
        # Number of superseded JOB_END events still sitting in the heap.
        self._stale = 0

    def __len__(self) -> int:
        return max(0, len(self._heap) - self._stale)

    def __bool__(self) -> bool:
        return len(self._heap) > self._stale

    def _is_stale(self, event: Event) -> bool:
        return (
            event.event_type is EventType.JOB_END
            and self._end_tokens.get(event.payload, event.validity_token)
            != event.validity_token
        )

    def _forget(self, event: Event) -> None:
        """Bookkeeping for a JOB_END event leaving the heap."""
        if event.event_type is not EventType.JOB_END:
            return
        key = (event.payload, event.validity_token)
        remaining = self._end_counts.get(key, 0) - 1
        if remaining > 0:
            self._end_counts[key] = remaining
        else:
            self._end_counts.pop(key, None)

    def _discard_stale(self) -> None:
        heap = self._heap
        while heap and self._is_stale(heap[0]):
            self._forget(heapq.heappop(heap))
            self._stale = max(0, self._stale - 1)

    def push(
        self,
        time: float,
        event_type: EventType,
        payload: Any = None,
        validity_token: int = 0,
    ) -> Event:
        """Add an event; returns the created :class:`Event`."""
        if time != time or time < 0:  # NaN or negative
            raise ValueError(f"invalid event time {time!r}")
        event = Event(
            time=time,
            type_priority=int(event_type),
            serial=next(self._counter),
            event_type=event_type,
            payload=payload,
            validity_token=validity_token,
        )
        if event_type is EventType.JOB_END:
            prev = self._end_tokens.get(payload)
            if prev is None:
                self._end_tokens[payload] = validity_token
            elif validity_token > prev:
                # Events carrying the previous token that are *still in the
                # heap* become stale (ones already popped contribute zero).
                self._end_tokens[payload] = validity_token
                self._stale += self._end_counts.get((payload, prev), 0)
            elif validity_token < prev:
                # Pushed already-superseded: stale from birth.
                self._stale += 1
            key = (payload, validity_token)
            self._end_counts[key] = self._end_counts.get(key, 0) + 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        self._discard_stale()
        event = heapq.heappop(self._heap)
        self._forget(event)
        return event

    def pop_batch(self) -> List[Event]:
        """Pop every live event sharing the earliest timestamp, in order.

        The heap already yields ``(time, type priority, serial)`` order, so
        the returned batch needs no re-sort: within one instant, ends come
        first, then submits, then schedule markers, FIFO within each kind.
        Returns an empty list when no live events remain.
        """
        self._discard_stale()
        heap = self._heap
        if not heap:
            return []
        first_time = heap[0].time
        batch: List[Event] = []
        while heap and heap[0].time == first_time:
            event = heapq.heappop(heap)
            self._forget(event)
            batch.append(event)
            self._discard_stale()
        return batch

    def peek(self) -> Optional[Event]:
        """Return the earliest live event without removing it (or ``None``)."""
        self._discard_stale()
        return self._heap[0] if self._heap else None

    def drain(self) -> Iterator[Event]:
        """Pop every remaining live event in order (used by tests)."""
        while self:
            yield self.pop()
