"""Discrete-event engine: event types, the event and the event queue.

The engine is intentionally tiny — a binary heap keyed by ``(time, priority,
serial)`` — because the complexity of the reproduction lives in the
schedulers, not in the event plumbing.  Events are never removed from the
heap; instead, components that reschedule work (e.g. a job whose end time
moved because it was shrunk) bump a *serial* number on the job and stale
events are discarded when popped.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple


class EventType(enum.IntEnum):
    """Kinds of events the simulation processes.

    The integer values double as tie-break priorities for events that share
    a timestamp: ends are processed before submits so that resources freed
    at time *t* are visible to jobs arriving at *t*, and explicit schedule
    triggers run last once the system state for the instant is settled.
    """

    JOB_END = 0
    JOB_SUBMIT = 1
    SCHEDULE = 2


@dataclass(order=True)
class Event:
    """A single simulation event.

    Events order by ``(time, type priority, serial)``; the payload is not
    part of the ordering.
    """

    time: float
    type_priority: int
    serial: int
    event_type: EventType = field(compare=False)
    payload: Any = field(compare=False, default=None)
    # For JOB_END events: the job's ``end_event_serial`` at scheduling time.
    # A mismatch at pop time means the job was reconfigured and this event is
    # stale.
    validity_token: int = field(compare=False, default=0)


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        event_type: EventType,
        payload: Any = None,
        validity_token: int = 0,
    ) -> Event:
        """Add an event; returns the created :class:`Event`."""
        if time != time or time < 0:  # NaN or negative
            raise ValueError(f"invalid event time {time!r}")
        event = Event(
            time=time,
            type_priority=int(event_type),
            serial=next(self._counter),
            event_type=event_type,
            payload=payload,
            validity_token=validity_token,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it (or ``None``)."""
        return self._heap[0] if self._heap else None

    def drain(self) -> Iterator[Event]:
        """Pop every remaining event in order (used by tests)."""
        while self._heap:
            yield self.pop()
