"""Job model for the cluster simulator.

A :class:`Job` carries both the *static* description of a job (what the user
submitted: node count, requested wall-clock time, malleability flag) and the
*dynamic* execution state maintained by the simulator (allocated nodes, the
per-interval resource history used by the runtime models of Section 3.4 of
the paper, progress accounting, and the timing fields from which slowdown and
response time are derived).

Progress accounting
-------------------

The paper's runtime models (Eq. 5 ideal, Eq. 6 worst case) express the
*increase* in runtime of a job whose per-node CPU allocation changes over
time.  We implement the equivalent progress formulation: a job carries an
amount of remaining *work* expressed in seconds-at-full-allocation
("static seconds").  While the job runs at ``speed`` (1.0 = the speed of the
original static allocation) the work decreases at that rate.  The speed of a
given resource configuration is computed by the runtime model
(:mod:`repro.core.runtime_model`); the job object only integrates it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional


class JobState(enum.Enum):
    """Lifecycle states of a job inside the simulator."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


@dataclass(frozen=True, slots=True)
class ResourceSlot:
    """One interval of a job's resource history.

    Attributes
    ----------
    start:
        Simulation time at which this configuration became active.
    end:
        Simulation time at which it stopped being active (``math.inf`` while
        it is the current configuration).
    cpus_per_node:
        Mapping ``node_id -> number of CPUs`` assigned in this interval.
    speed:
        Relative progress rate of the job in this interval (1.0 = static
        allocation speed), as computed by the active runtime model.
    """

    start: float
    end: float
    cpus_per_node: Dict[int, int]
    speed: float

    @property
    def total_cpus(self) -> int:
        """Total CPUs assigned across all nodes in this interval."""
        return sum(self.cpus_per_node.values())

    @property
    def duration(self) -> float:
        """Wall-clock length of the interval (may be ``inf`` if open)."""
        return self.end - self.start


class Job:
    """A single job submitted to the simulated cluster.

    Parameters
    ----------
    job_id:
        Unique integer identifier.
    submit_time:
        Simulation time (seconds) at which the job enters the system.
    requested_nodes:
        Number of whole nodes the job asks for (the paper's ``W`` /
        ``req_nodes``).  Node-exclusive allocation is the static baseline.
    requested_time:
        User-requested wall-clock limit in seconds (``req_time``).  The
        scheduler only ever sees this value.
    static_runtime:
        The *actual* runtime the job would take on its full static
        allocation.  Only the simulator uses it; scheduling estimates use
        ``requested_time``.
    cpus_per_node:
        CPUs per node of the target system (defines the full allocation
        width ``requested_cpus = requested_nodes * cpus_per_node``).
    malleable:
        Whether the job can shrink/expand at runtime (DROM-enabled).
    tasks_per_node:
        Number of MPI ranks per node; a malleable job can never shrink below
        one CPU per rank (Section 3.3 of the paper).
    user / group / application:
        Optional metadata carried through from workload logs.
    """

    __slots__ = (
        "job_id",
        "submit_time",
        "requested_nodes",
        "requested_time",
        "static_runtime",
        "cpus_per_node",
        "malleable",
        "tasks_per_node",
        "user",
        "group",
        "application",
        "state",
        "start_time",
        "end_time",
        "allocated_nodes",
        "assigned_cpus",
        "work_remaining",
        "current_speed",
        "last_progress_update",
        "resource_history",
        "guest_of",
        "mates",
        "scheduled_malleable",
        "was_mate",
        "end_event_serial",
        "priority",
        "metadata",
    )

    def __init__(
        self,
        job_id: int,
        submit_time: float,
        requested_nodes: int,
        requested_time: float,
        static_runtime: float,
        cpus_per_node: int = 48,
        malleable: bool = True,
        tasks_per_node: int = 1,
        user: int = 0,
        group: int = 0,
        application: Optional[str] = None,
        priority: Optional[float] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if requested_nodes <= 0:
            raise ValueError(f"job {job_id}: requested_nodes must be > 0")
        if requested_time <= 0:
            raise ValueError(f"job {job_id}: requested_time must be > 0")
        if static_runtime <= 0:
            raise ValueError(f"job {job_id}: static_runtime must be > 0")
        if cpus_per_node <= 0:
            raise ValueError(f"job {job_id}: cpus_per_node must be > 0")
        if tasks_per_node <= 0:
            raise ValueError(f"job {job_id}: tasks_per_node must be > 0")

        self.job_id = job_id
        self.submit_time = float(submit_time)
        self.requested_nodes = int(requested_nodes)
        self.requested_time = float(requested_time)
        self.static_runtime = float(static_runtime)
        self.cpus_per_node = int(cpus_per_node)
        self.malleable = bool(malleable)
        self.tasks_per_node = int(tasks_per_node)
        self.user = user
        self.group = group
        self.application = application
        self.priority = priority if priority is not None else -submit_time
        self.metadata = metadata or {}

        # Dynamic state.
        self.state = JobState.PENDING
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.allocated_nodes: List[int] = []
        # node_id -> cpus currently assigned on that node.
        self.assigned_cpus: Dict[int, int] = {}
        # Remaining work in "static seconds".
        self.work_remaining: float = float(static_runtime)
        self.current_speed: float = 0.0
        self.last_progress_update: float = float(submit_time)
        self.resource_history: List[ResourceSlot] = []
        # Malleable bookkeeping: if this job was started as a guest on shrunk
        # mates, ``guest_of`` lists the mate job ids; conversely ``mates``
        # is unused for guests.  For a mate, ``mates`` lists the guests it
        # currently hosts.
        self.guest_of: List[int] = []
        self.mates: List[int] = []
        self.scheduled_malleable: bool = False
        self.was_mate: bool = False
        # Serial number used to invalidate stale end events after
        # reconfiguration.
        self.end_event_serial: int = 0

    # ------------------------------------------------------------------ #
    # Derived request quantities
    # ------------------------------------------------------------------ #
    @property
    def requested_cpus(self) -> int:
        """Total CPUs of the full static allocation."""
        return self.requested_nodes * self.cpus_per_node

    @property
    def min_cpus_per_node(self) -> int:
        """Smallest CPU count per node the job can shrink to.

        The paper assigns a minimum of one computing resource per MPI rank
        (Section 3.3), so a job with ``tasks_per_node`` ranks per node can
        never hold fewer CPUs than that on any of its nodes.
        """
        return max(1, self.tasks_per_node)

    # ------------------------------------------------------------------ #
    # Timing metrics
    # ------------------------------------------------------------------ #
    @property
    def wait_time(self) -> Optional[float]:
        """Seconds spent in the queue, or ``None`` if not yet started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> Optional[float]:
        """End minus submit time, or ``None`` if not yet finished."""
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    @property
    def actual_runtime(self) -> Optional[float]:
        """Wall-clock execution time, or ``None`` if not yet finished."""
        if self.end_time is None or self.start_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def slowdown(self) -> Optional[float]:
        """Response time normalised by the *static* execution time.

        This follows the paper's definition (Section 4): ``slowdown =
        response_time / static execution time``, i.e. the denominator is the
        runtime the job would have had on its exclusive static allocation,
        not the possibly-dilated malleable runtime.
        """
        if self.end_time is None:
            return None
        return (self.end_time - self.submit_time) / self.static_runtime

    def bounded_slowdown(self, tau: float = 10.0) -> Optional[float]:
        """Bounded slowdown with threshold ``tau`` seconds.

        ``max(1, response / max(static_runtime, tau))`` — the classic
        Feitelson bounded-slowdown metric, provided for completeness of the
        metrics suite (not used by the paper's headline numbers).
        """
        if self.end_time is None:
            return None
        resp = self.end_time - self.submit_time
        return max(1.0, resp / max(self.static_runtime, tau))

    # ------------------------------------------------------------------ #
    # Progress accounting
    # ------------------------------------------------------------------ #
    def advance_progress(self, now: float) -> None:
        """Integrate work done since the last update at the current speed."""
        if self.state is not JobState.RUNNING:
            self.last_progress_update = now
            return
        elapsed = now - self.last_progress_update
        if elapsed < 0:
            raise ValueError(
                f"job {self.job_id}: time went backwards "
                f"({self.last_progress_update} -> {now})"
            )
        self.work_remaining = max(0.0, self.work_remaining - elapsed * self.current_speed)
        self.last_progress_update = now

    def reconfigure(
        self,
        now: float,
        cpus_per_node: Dict[int, int],
        speed: float,
    ) -> None:
        """Switch to a new resource configuration at time ``now``.

        Progress under the previous configuration is integrated first, then
        the open interval of the resource history is closed and a new one is
        opened with the given per-node CPU map and speed.
        """
        if speed < 0:
            raise ValueError(f"job {self.job_id}: negative speed {speed}")
        self.advance_progress(now)
        if self.resource_history and math.isinf(self.resource_history[-1].end):
            last = self.resource_history[-1]
            self.resource_history[-1] = ResourceSlot(
                start=last.start,
                end=now,
                cpus_per_node=last.cpus_per_node,
                speed=last.speed,
            )
        self.resource_history.append(
            ResourceSlot(start=now, end=math.inf, cpus_per_node=dict(cpus_per_node), speed=speed)
        )
        self.assigned_cpus = dict(cpus_per_node)
        self.current_speed = float(speed)
        self.end_event_serial += 1

    def predicted_end_time(self, now: Optional[float] = None) -> float:
        """Completion time if the current configuration persists.

        Returns ``inf`` for a running job whose current speed is zero and for
        jobs that have not started.
        """
        if self.state is not JobState.RUNNING:
            return math.inf
        ref = self.last_progress_update if now is None else now
        if now is not None and now > self.last_progress_update:
            remaining = max(
                0.0, self.work_remaining - (now - self.last_progress_update) * self.current_speed
            )
        else:
            remaining = self.work_remaining
        if remaining <= 0:
            return ref
        if self.current_speed <= 0:
            return math.inf
        return ref + remaining / self.current_speed

    # ------------------------------------------------------------------ #
    # Lifecycle helpers used by the simulation driver
    # ------------------------------------------------------------------ #
    def mark_started(self, now: float, nodes: List[int]) -> None:
        """Transition PENDING -> RUNNING on the given nodes."""
        if self.state is not JobState.PENDING:
            raise RuntimeError(f"job {self.job_id}: cannot start from state {self.state}")
        self.state = JobState.RUNNING
        self.start_time = now
        self.allocated_nodes = list(nodes)
        self.last_progress_update = now

    def mark_finished(self, now: float) -> None:
        """Transition RUNNING -> COMPLETED and close the resource history."""
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"job {self.job_id}: cannot finish from state {self.state}")
        self.advance_progress(now)
        self.state = JobState.COMPLETED
        self.end_time = now
        if self.resource_history and math.isinf(self.resource_history[-1].end):
            last = self.resource_history[-1]
            self.resource_history[-1] = ResourceSlot(
                start=last.start,
                end=now,
                cpus_per_node=last.cpus_per_node,
                speed=last.speed,
            )

    def mark_cancelled(self, now: float) -> None:
        """Transition to CANCELLED (job withdrawn before completion)."""
        self.state = JobState.CANCELLED
        self.end_time = now

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, state={self.state.value}, "
            f"nodes={self.requested_nodes}, req_time={self.requested_time}, "
            f"runtime={self.static_runtime}, malleable={self.malleable})"
        )
