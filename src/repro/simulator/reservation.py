"""Future-availability profile ("reservation map").

The scheduler needs two forward-looking quantities:

* ``estimate_start_time`` — when would a job of ``W`` nodes be able to start,
  given the *predicted* end times of the jobs currently running (SLURM, like
  the paper, predicts with the user-requested wall time)?  SD-Policy uses
  this to compute ``static_end`` (Listing 1).
* a *shadow* reservation for every waiting job examined by the backfill
  pass, so lower-priority jobs can only start now when they do not delay a
  higher-priority one (conservative backfill, SLURM ``sched/backfill``
  style).

Both are answered by :class:`ReservationMap`, a step-function profile of
free-node counts over future time built from the running jobs plus any
explicit reservations added during a backfill pass.  The profile arithmetic
is vectorised with NumPy because ``earliest_start`` sits on the simulator's
hottest path (it runs once per examined job per scheduling pass).
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.simulator.job import Job, JobState


class ReservationMap:
    """Step-function profile of future node availability.

    Parameters
    ----------
    total_nodes:
        Number of nodes in the cluster.
    now:
        Current simulation time; the profile starts at this instant.
    free_now:
        Number of nodes free at ``now``.
    releases:
        Iterable of ``(time, nodes)`` pairs: at ``time``, ``nodes`` nodes are
        expected to become free (a running job's predicted end).
    """

    def __init__(
        self,
        total_nodes: int,
        now: float,
        free_now: int,
        releases: Iterable[Tuple[float, int]] = (),
    ) -> None:
        if free_now < 0 or free_now > total_nodes:
            raise ValueError(f"free_now={free_now} out of range 0..{total_nodes}")
        self.total_nodes = total_nodes
        self.now = now
        # Sorted list of (time, delta_free_nodes) change points.
        self._changes: List[Tuple[float, int]] = []
        self._free_now = free_now
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        for time, nodes in releases:
            self.add_release(time, nodes)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_running_jobs(
        cls,
        total_nodes: int,
        now: float,
        free_now: int,
        running_jobs: Iterable[Job],
        use_requested_time: bool = True,
    ) -> "ReservationMap":
        """Build the profile from the currently running jobs.

        ``use_requested_time=True`` predicts each running job's end as
        ``start + requested_time`` (what a real scheduler can know);
        ``False`` uses the simulator's exact predicted end (oracle mode,
        useful for experiments on prediction accuracy such as the paper's
        Workload 2).
        """
        releases: List[Tuple[float, int]] = []
        for job in running_jobs:
            if job.state is not JobState.RUNNING or job.start_time is None:
                continue
            if use_requested_time:
                end = job.start_time + job.requested_time
            else:
                end = job.predicted_end_time(now)
            if not math.isfinite(end):
                end = job.start_time + job.requested_time
            end = max(end, now)
            releases.append((end, len(job.allocated_nodes)))
        return cls(total_nodes, now, free_now, releases)

    # ------------------------------------------------------------------ #
    def copy(self) -> "ReservationMap":
        """Cheap copy sharing the (immutable) step-function arrays.

        The simulation driver caches the base profile built from the running
        jobs and hands each scheduling pass a copy, so the pass can add its
        own reservations without corrupting the cache.  Mutators rebind
        ``_cache`` rather than mutating the arrays, so sharing is safe.
        """
        clone = ReservationMap.__new__(ReservationMap)
        clone.total_nodes = self.total_nodes
        clone.now = self.now
        clone._changes = list(self._changes)
        clone._free_now = self._free_now
        clone._cache = self._cache
        return clone

    def add_release(self, time: float, nodes: int) -> None:
        """Record that ``nodes`` nodes become free at ``time``."""
        if nodes <= 0:
            return
        insort(self._changes, (max(time, self.now), nodes))
        self._cache = None

    def add_reservation(self, start: float, duration: float, nodes: int) -> None:
        """Reserve ``nodes`` nodes in ``[start, start+duration)``.

        Used during a backfill pass to account for jobs the current pass has
        already decided to start (or reserved a future slot for), so later
        candidates in the same pass see a consistent picture.
        """
        if nodes <= 0:
            return
        start = max(start, self.now)
        insort(self._changes, (start, -nodes))
        if math.isfinite(duration):
            insort(self._changes, (start + duration, nodes))
        self._cache = None

    # ------------------------------------------------------------------ #
    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, free_nodes) arrays of the step function, first point = now."""
        if self._cache is None:
            if self._changes:
                times = np.fromiter((t for t, _ in self._changes), dtype=float,
                                    count=len(self._changes))
                deltas = np.fromiter((d for _, d in self._changes), dtype=float,
                                     count=len(self._changes))
                free = np.clip(self._free_now + np.cumsum(deltas), 0, self.total_nodes)
                times = np.concatenate(([self.now], times))
                free = np.concatenate(([float(self._free_now)], free))
                # Collapse duplicate timestamps (keep the last value at a time).
                keep = np.ones(len(times), dtype=bool)
                keep[:-1] = times[1:] != times[:-1]
                times, free = times[keep], free[keep]
            else:
                times = np.array([self.now])
                free = np.array([float(self._free_now)])
            self._cache = (times, free)
        return self._cache

    def free_nodes_at(self, time: float) -> int:
        """Free-node count at a given future time (according to the profile)."""
        times, free = self._arrays()
        idx = int(np.searchsorted(times, time, side="right")) - 1
        idx = max(0, idx)
        return int(free[idx])

    def profile(self) -> List[Tuple[float, int]]:
        """The availability step function as ``[(time, free_nodes), ...]``.

        The first entry is at :attr:`now`; subsequent entries are change
        points in increasing time order.
        """
        times, free = self._arrays()
        return [(float(t), int(f)) for t, f in zip(times, free)]

    def earliest_start(self, nodes_needed: int, duration: Optional[float] = None) -> float:
        """Earliest time at which ``nodes_needed`` nodes are simultaneously free.

        If ``duration`` is given, the availability must hold for the whole
        interval ``[t, t + duration)`` (needed to honour reservations that
        temporarily take nodes away).  Returns ``math.inf`` when the request
        can never be satisfied (more nodes than the cluster has, or the
        profile never frees enough).
        """
        if nodes_needed > self.total_nodes:
            return math.inf
        if nodes_needed <= 0:
            return self.now
        times, free = self._arrays()
        n = len(times)
        ok = free >= nodes_needed
        if duration is None or not math.isfinite(duration):
            hits = np.flatnonzero(ok)
            return float(times[hits[0]]) if hits.size else math.inf
        idx = 0
        while idx < n:
            if not ok[idx]:
                idx += 1
                continue
            end = times[idx] + duration
            j = int(np.searchsorted(times, end, side="left"))
            bad = np.flatnonzero(~ok[idx:j])
            if bad.size == 0:
                return float(times[idx])
            # Every start up to the last violation also fails; jump past it.
            idx = idx + int(bad[-1]) + 1
        return math.inf

    def estimate_wait(self, job: Job, duration: Optional[float] = None) -> float:
        """Estimated queue wait for the job (0 if it could start now)."""
        dur = duration if duration is not None else job.requested_time
        start = self.earliest_start(job.requested_nodes, dur)
        if not math.isfinite(start):
            return math.inf
        return max(0.0, start - self.now)
