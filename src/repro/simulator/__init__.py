"""Discrete-event HPC cluster simulator.

This package is the substrate on which the SD-Policy reproduction runs.  It
plays the role of the BSC SLURM simulator used in the paper: it models a
cluster of multi-socket nodes, a priority job queue, a pluggable scheduler,
and an event-driven clock, and it records per-job timing needed for the
paper's metrics (wait time, response time, slowdown, makespan, energy).

The public entry point is :class:`repro.simulator.simulation.Simulation`.
"""

from repro.simulator.cluster import Cluster
from repro.simulator.engine import Event, EventQueue, EventType
from repro.simulator.job import Job, JobState, ResourceSlot
from repro.simulator.node import Node
from repro.simulator.pending_queue import PendingQueue
from repro.simulator.reservation import ReservationMap
from repro.simulator.simulation import Simulation, SimulationResult

__all__ = [
    "Cluster",
    "Event",
    "EventQueue",
    "EventType",
    "Job",
    "JobState",
    "Node",
    "PendingQueue",
    "ReservationMap",
    "ResourceSlot",
    "Simulation",
    "SimulationResult",
]
