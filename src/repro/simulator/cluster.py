"""Cluster model: a homogeneous collection of compute nodes.

The cluster tracks which nodes are free, which are exclusively allocated and
which are shared, and provides the whole-node allocation primitives the
schedulers use (the paper's SLURM *select/linear* plug-in allocates whole
nodes; CPU-level splitting within a node is decided by the node manager).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.simulator.job import Job
from repro.simulator.node import Node, NodeAllocationError


class Cluster:
    """A homogeneous cluster of :class:`Node` objects.

    Parameters
    ----------
    num_nodes:
        Number of compute nodes.
    sockets / cores_per_socket / memory_gb:
        Per-node hardware description (defaults model MareNostrum4).
    """

    def __init__(
        self,
        num_nodes: int,
        sockets: int = 2,
        cores_per_socket: int = 24,
        memory_gb: float = 96.0,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("cluster must have at least one node")
        self.nodes: Dict[int, Node] = {
            i: Node(i, sockets=sockets, cores_per_socket=cores_per_socket, memory_gb=memory_gb)
            for i in range(num_nodes)
        }
        self._free_nodes: Set[int] = set(self.nodes)
        self._used_cpus: int = 0

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def cpus_per_node(self) -> int:
        """CPUs per node (homogeneous cluster)."""
        return next(iter(self.nodes.values())).total_cpus

    @property
    def total_cpus(self) -> int:
        """Total CPU count of the cluster."""
        return self.num_nodes * self.cpus_per_node

    @property
    def free_node_ids(self) -> List[int]:
        """Ids of completely free nodes, in ascending order."""
        return sorted(self._free_nodes)

    @property
    def num_free_nodes(self) -> int:
        """Number of completely free nodes."""
        return len(self._free_nodes)

    @property
    def used_cpus(self) -> int:
        """CPUs currently assigned to jobs across the whole cluster.

        Maintained incrementally so the per-event energy integration stays
        O(1) even for large clusters.
        """
        return self._used_cpus

    @property
    def utilization(self) -> float:
        """Cluster-wide fraction of assigned CPUs."""
        return self.used_cpus / self.total_cpus

    def node(self, node_id: int) -> Node:
        """Return the node with the given id."""
        return self.nodes[node_id]

    # ------------------------------------------------------------------ #
    # Whole-node (select/linear style) allocation
    # ------------------------------------------------------------------ #
    def can_allocate(self, job: Job) -> bool:
        """True if enough free nodes exist for a static allocation."""
        return len(self._free_nodes) >= job.requested_nodes

    def pick_free_nodes(self, count: int) -> List[int]:
        """Choose ``count`` free nodes (lowest ids first, SLURM-like)."""
        if count > len(self._free_nodes):
            raise NodeAllocationError(
                f"requested {count} free nodes, only {len(self._free_nodes)} available"
            )
        return sorted(self._free_nodes)[:count]

    def allocate_static(self, job: Job, node_ids: Optional[Sequence[int]] = None) -> List[int]:
        """Give the job an exclusive, whole-node allocation.

        Returns the list of node ids used.  If ``node_ids`` is omitted the
        lowest-id free nodes are chosen.
        """
        if node_ids is None:
            node_ids = self.pick_free_nodes(job.requested_nodes)
        node_ids = list(node_ids)
        if len(node_ids) != job.requested_nodes:
            raise NodeAllocationError(
                f"job {job.job_id}: expected {job.requested_nodes} nodes, got {len(node_ids)}"
            )
        for nid in node_ids:
            node = self.nodes[nid]
            if not node.is_free:
                raise NodeAllocationError(
                    f"job {job.job_id}: node {nid} is not free for static allocation"
                )
        for nid in node_ids:
            node = self.nodes[nid]
            node.allocate(job.job_id, node.total_cpus, owner=True)
            self._used_cpus += node.total_cpus
            self._free_nodes.discard(nid)
        return node_ids

    def allocate_shared(
        self,
        job: Job,
        cpus_per_node: Dict[int, int],
    ) -> List[int]:
        """Co-schedule the job on already-occupied (or free) nodes.

        ``cpus_per_node`` maps node id to the CPU count the guest receives on
        that node; the CPUs must already have been freed by shrinking the
        owner jobs (or be free CPUs of an idle node).
        """
        for nid, cpus in cpus_per_node.items():
            node = self.nodes[nid]
            if cpus > node.free_cpus:
                raise NodeAllocationError(
                    f"job {job.job_id}: node {nid} has {node.free_cpus} free cpus, "
                    f"needs {cpus}"
                )
        for nid, cpus in cpus_per_node.items():
            node = self.nodes[nid]
            owner = node.is_free
            node.allocate(job.job_id, cpus, owner=owner)
            self._used_cpus += cpus
            self._free_nodes.discard(nid)
        return sorted(cpus_per_node)

    def shrink_job_on_node(self, job_id: int, node_id: int, new_cpus: int) -> None:
        """Reduce (or grow) the CPUs a job holds on one node."""
        node = self.nodes[node_id]
        old = node.cpus_of(job_id)
        node.resize(job_id, new_cpus)
        self._used_cpus += new_cpus - old

    def reconfigure_allocation(self, job_id: int, cpus_per_node: Dict[int, int]) -> None:
        """Replace a job's allocation with a new per-node CPU map.

        Nodes absent from the new map are released, nodes present are
        resized, and new nodes are acquired (their CPUs must be free).  The
        free-node set and the used-CPU counter are kept consistent.
        """
        if not cpus_per_node:
            raise NodeAllocationError(f"job {job_id}: empty allocation map")
        current_nodes = [nid for nid, node in self.nodes.items() if job_id in node.allocations]
        for nid in current_nodes:
            if nid not in cpus_per_node:
                node = self.nodes[nid]
                self._used_cpus -= node.release(job_id)
                if node.is_free:
                    self._free_nodes.add(nid)
        for nid, cpus in cpus_per_node.items():
            node = self.nodes[nid]
            if job_id in node.allocations:
                self.shrink_job_on_node(job_id, nid, cpus)
            else:
                node.allocate(job_id, cpus, owner=node.is_free)
                self._used_cpus += cpus
                self._free_nodes.discard(nid)

    def release_job(self, job: Job) -> None:
        """Release every allocation the job holds and free emptied nodes."""
        for nid in list(job.assigned_cpus):
            node = self.nodes[nid]
            if job.job_id in node.allocations:
                self._used_cpus -= node.release(job.job_id)
            if node.is_free:
                self._free_nodes.add(nid)

    def release_all(self) -> None:
        """Free every allocation in the cluster (used by tests)."""
        for node in self.nodes.values():
            node.allocations.clear()
            node.owner = None
        self._free_nodes = set(self.nodes)
        self._used_cpus = 0

    # ------------------------------------------------------------------ #
    def jobs_on_node(self, node_id: int) -> List[int]:
        """Ids of jobs with CPUs on the given node."""
        return self.nodes[node_id].jobs

    def nodes_of_job(self, job_id: int) -> List[int]:
        """Ids of nodes on which the job currently holds CPUs."""
        return [nid for nid, node in self.nodes.items() if job_id in node.allocations]

    def validate(self) -> None:
        """Internal-consistency check used by tests and property checks."""
        total_used = 0
        for nid, node in self.nodes.items():
            if node.used_cpus > node.total_cpus:
                raise AssertionError(f"node {nid} over-allocated: {node.used_cpus}")
            if node.is_free and nid not in self._free_nodes:
                raise AssertionError(f"node {nid} free but not in free set")
            if not node.is_free and nid in self._free_nodes:
                raise AssertionError(f"node {nid} allocated but in free set")
            total_used += node.used_cpus
        if total_used != self._used_cpus:
            raise AssertionError(
                f"cluster used-cpu counter {self._used_cpus} != actual {total_used}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={self.num_nodes}, cpus_per_node={self.cpus_per_node}, "
            f"free_nodes={self.num_free_nodes})"
        )
