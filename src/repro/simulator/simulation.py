"""Simulation driver: couples workload, cluster, scheduler and metrics.

The driver mirrors the structure of the BSC SLURM simulator used by the
paper: job submission and job end events drive the clock; after every batch
of events at an instant the scheduler (the "controller") runs one scheduling
pass over the pending queue; the scheduler starts jobs through the driver's
allocation primitives, which also maintain each job's resource history and
the cluster-wide energy integration.

The driver is policy-agnostic.  The static backfill baseline and the
malleable co-scheduling family (SD-Policy, UB-Policy) are plugged in
through the :class:`repro.schedulers.base.Scheduler` interface; malleable
execution speeds come from the attached
:class:`repro.core.runtime_model.RuntimeModel`, whose optional
``contention`` model (:class:`repro.core.contention.ContentionModel`)
accounts for memory-bandwidth interference between co-scheduled jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.metrics.streaming import StreamingMetrics
from repro.simulator.cluster import Cluster
from repro.simulator.engine import EventQueue, EventType
from repro.simulator.job import Job, JobState
from repro.simulator.pending_queue import PendingQueue
from repro.simulator.reservation import ReservationMap

try:  # Protocol is structural-typing sugar; degrade gracefully without it.
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]


class JobSink(Protocol):
    """Consumer of completed jobs, invoked once per job at completion time.

    The simulation dispatches every finished :class:`Job` — in completion
    order, while its resource history and CPU maps are still attached — to
    each registered sink.  Aggregation (:class:`StreamingMetrics`), job
    retention (:class:`RetainedJobsSink`) and per-job record capture
    (:class:`repro.analytics.JobRecordSink`) are all sinks behind this one
    dispatch point.  A sink must not mutate the job: later sinks in the
    chain (and the scheduler's ``on_job_end`` hook) see the same object.
    """

    def fold(self, job: Job) -> None:  # pragma: no cover - protocol stub
        ...


class RetainedJobsSink:
    """The ``retain_jobs=True`` mode as a sink: keep every completed job."""

    __slots__ = ("completed",)

    def __init__(self, completed: List[Job]) -> None:
        self.completed = completed

    def fold(self, job: Job) -> None:
        self.completed.append(job)


class _FullAllocationSpeedModel:
    """Default runtime model: speed scales with the worst (most shrunk) node.

    Matches the paper's *worst case* model (Eq. 6): a statically balanced
    job progresses at the pace of the node on which it holds the fewest
    CPUs relative to the per-node width of its static allocation.  With a
    full static allocation the speed is exactly 1.0, so static-only
    simulations behave as a classic rigid-job simulator.
    """

    name = "worst_case"

    def speed(self, job: Job, cpus_per_node: Dict[int, int]) -> float:
        if not cpus_per_node:
            return 0.0
        per_node_request = job.requested_cpus / max(1, job.requested_nodes)
        if per_node_request <= 0:
            return 1.0
        ideal_cap = sum(cpus_per_node.values()) / job.requested_cpus
        worst = min(cpus_per_node.values()) / per_node_request
        return min(1.0, worst, ideal_cap)


class _DefaultPowerModel:
    """Linear node power model: idle + (peak - idle) * utilisation."""

    def __init__(self, idle_watts: float = 120.0, peak_watts: float = 400.0) -> None:
        self.idle_watts = idle_watts
        self.peak_watts = peak_watts

    def power(self, cluster: Cluster) -> float:
        util = cluster.used_cpus / cluster.total_cpus if cluster.total_cpus else 0.0
        return cluster.num_nodes * (
            self.idle_watts + (self.peak_watts - self.idle_watts) * util
        )


def _workload_energy(
    jobs: List[Job],
    num_nodes: int,
    cpus_per_node: int,
    idle_watts: float,
    peak_watts: float,
    first_submit: float,
    last_end: float,
) -> float:
    """Energy to run the workload: idle power of every node over the
    makespan window plus the dynamic power of every assigned CPU-second.

    Computed post-hoc from the completed jobs' resource histories so the
    figure is independent of how simulation events happened to be ordered
    (in particular it is unaffected by stale end events left in the heap
    after reconfigurations).
    """
    if not jobs or last_end <= first_submit:
        return 0.0
    idle_energy = num_nodes * idle_watts * (last_end - first_submit)
    per_cpu = (peak_watts - idle_watts) / cpus_per_node
    dynamic = 0.0
    for job in jobs:
        for slot in job.resource_history:
            duration = slot.duration
            if duration > 0 and math.isfinite(duration):
                dynamic += slot.total_cpus * duration
    return idle_energy + per_cpu * dynamic


@dataclass
class SimulationResult:
    """Summary of one simulation run.

    The per-job detail lives in :attr:`jobs`; the aggregate metrics the
    paper reports (makespan, average response time, average slowdown,
    energy) are computed lazily by :mod:`repro.metrics` from these records,
    but the most common ones are also precomputed here for convenience.
    """

    jobs: List[Job]
    makespan: float
    avg_response_time: float
    avg_slowdown: float
    avg_wait_time: float
    energy_joules: float
    malleable_scheduled_jobs: int
    mate_jobs: int
    scheduler_name: str
    total_events: int
    # Run-level first submission time — the makespan origin.  Downstream
    # metrics must anchor at this value rather than re-deriving it from
    # ``jobs`` (which drifts when the earliest-submitted job never finished).
    first_submit: float = 0.0
    # Completed-job count, independent of whether jobs were retained.  With
    # ``retain_jobs=False`` the :attr:`jobs` list is empty but this still
    # reports the true count.
    completed_jobs: Optional[int] = None
    extra: dict = field(default_factory=dict)

    @property
    def num_jobs(self) -> int:
        """Number of completed jobs in the run."""
        if self.completed_jobs is not None:
            return self.completed_jobs
        return len(self.jobs)


class Simulation:
    """Event-driven simulation of a workload on a cluster under a scheduler.

    Parameters
    ----------
    cluster:
        The cluster to schedule onto.
    scheduler:
        Any object implementing the :class:`repro.schedulers.base.Scheduler`
        protocol.
    runtime_model:
        Object with ``speed(job, cpus_per_node) -> float`` used to translate
        resource configurations into execution speed.  Defaults to the
        paper's worst-case model; pass
        :class:`repro.core.runtime_model.IdealRuntimeModel` for the ideal
        model of Eq. 5.
    power_model:
        Object with ``power(cluster) -> watts``; energy is integrated over
        the run.  Pass ``None`` to disable energy accounting.
    use_requested_time_for_predictions:
        If True (default, like SLURM) the availability profile used for wait
        time estimation predicts running jobs to end at
        ``start + requested_time``; if False the simulator's exact end times
        are used (oracle predictions).
    retain_jobs:
        If True (default) completed :class:`Job` objects are kept in
        :attr:`completed` and returned in ``result().jobs``.  If False each
        job is folded into :attr:`streaming` at completion and then
        discarded, so memory stays near-constant in the job count; the
        aggregate fields of the result are unchanged, but per-job
        post-processing (heatmaps, daily series) is unavailable.
    sinks:
        Extra :class:`JobSink` consumers of completed jobs.  Every job is
        dispatched once, at completion, to :attr:`streaming`, then (when
        retaining) to the retention sink, then to these — so an analytics
        sink observes exactly the jobs, in exactly the order, that the
        metrics fold.
    trace:
        Optional :class:`repro.telemetry.TraceRecorder`.  When set, the
        driver (and the schedulers, via ``sim.trace``) emit typed decision
        events — submit/start/end, backfill holes, mate selection,
        reconfigurations.  ``None`` (the default) keeps the hot loop at a
        single attribute check per potential emission site, so disabled
        tracing costs nothing on million-job runs.  Only simulation-time
        facts are emitted, keeping traces byte-deterministic.
    """

    #: Sentinel so ``power_model=None`` (disable energy accounting) stays
    #: distinguishable from "use the default model".  The default model is
    #: constructed per instance — never share a mutable default across runs.
    _DEFAULT_POWER_MODEL = object()

    def __init__(
        self,
        cluster: Cluster,
        scheduler,
        runtime_model=None,
        power_model=_DEFAULT_POWER_MODEL,
        use_requested_time_for_predictions: bool = True,
        retain_jobs: bool = True,
        sinks: Iterable["JobSink"] = (),
        trace=None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.trace = trace
        self.runtime_model = runtime_model or _FullAllocationSpeedModel()
        if power_model is Simulation._DEFAULT_POWER_MODEL:
            power_model = _DefaultPowerModel()
        self.power_model = power_model
        self.use_requested_time_for_predictions = use_requested_time_for_predictions
        self.retain_jobs = retain_jobs

        self.events = EventQueue()
        self.pending = PendingQueue()
        self.jobs: Dict[int, Job] = {}
        self.running: Dict[int, Job] = {}
        self.completed: List[Job] = []
        #: Online aggregates, folded per job at completion (always kept in
        #: sync with :attr:`completed`, and the only record when
        #: ``retain_jobs=False``).
        self.streaming = StreamingMetrics()
        # The job-completion dispatch chain: metrics first, retention next,
        # extra sinks (analytics, user-supplied) last.  The bound ``fold``
        # methods are cached so the hot loop skips attribute lookups.
        self._sinks: List[JobSink] = [self.streaming]
        if retain_jobs:
            self._sinks.append(RetainedJobsSink(self.completed))
        self._sinks.extend(sinks)
        self._sink_folds = [sink.fold for sink in self._sinks]

        self.now: float = 0.0
        self._total_events: int = 0
        self._first_submit: Optional[float] = None
        self._last_end: float = 0.0
        # Lazy submission stream (see submit_stream): the iterator plus a
        # one-job lookahead, so jobs materialise just before their submit
        # instant instead of all upfront.
        self._submit_source: Optional[Iterator[Job]] = None
        self._next_stream_job: Optional[Job] = None
        self._last_stream_submit: float = -math.inf

        # Availability-profile cache: the base profile derived from the
        # running set is rebuilt only when the allocation state changes
        # (version bump) or time advances; schedulers receive copies.
        self._avail_version: int = 0
        self._profile_cache: Optional[Tuple[float, int, int, ReservationMap]] = None

        if hasattr(self.scheduler, "bind"):
            self.scheduler.bind(self)

    def add_sink(self, sink: "JobSink") -> None:
        """Register an extra completed-job sink (appended to the chain)."""
        self._sinks.append(sink)
        self._sink_folds = [s.fold for s in self._sinks]

    # ------------------------------------------------------------------ #
    # Workload loading
    # ------------------------------------------------------------------ #
    def _register_job(self, job: Job) -> None:
        """Validate one job, record it and queue its submission event."""
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id}")
        if job.requested_nodes > self.cluster.num_nodes:
            raise ValueError(
                f"job {job.job_id} requests {job.requested_nodes} nodes but the "
                f"cluster only has {self.cluster.num_nodes}"
            )
        self.jobs[job.job_id] = job
        self.events.push(job.submit_time, EventType.JOB_SUBMIT, payload=job.job_id)
        if self._first_submit is None or job.submit_time < self._first_submit:
            self._first_submit = job.submit_time

    def submit_jobs(self, jobs: Iterable[Job]) -> None:
        """Register jobs and queue their submission events."""
        for job in jobs:
            self._register_job(job)

    def submit_stream(self, jobs: Iterable[Job]) -> None:
        """Attach a lazy submission stream (jobs sorted by submit time).

        Jobs are pulled from the iterator just in time: before each event
        batch, every job whose submit time is at or before the next batch
        instant is registered, so batch composition is identical to an
        upfront :meth:`submit_jobs` of the same sequence while only a
        one-job lookahead is held in memory.  The stream must yield jobs in
        nondecreasing submit-time order (``Workload.iter_jobs`` does).
        """
        if self._submit_source is not None or self._next_stream_job is not None:
            raise RuntimeError("a submission stream is already attached")
        self._submit_source = iter(jobs)
        self._advance_submissions()

    def _pull_stream_job(self) -> Optional[Job]:
        if self._next_stream_job is not None:
            job, self._next_stream_job = self._next_stream_job, None
            return job
        source = self._submit_source
        if source is None:
            return None
        job = next(source, None)
        if job is None:
            self._submit_source = None
            return None
        if job.submit_time < self._last_stream_submit:
            raise ValueError(
                f"job {job.job_id}: submission stream is not sorted "
                f"({job.submit_time} after {self._last_stream_submit})"
            )
        self._last_stream_submit = job.submit_time
        return job

    def _advance_submissions(self) -> None:
        """Register every streamed job due at or before the next batch instant.

        Keeps the invariant that when a batch at time *t* is popped, all
        submissions with ``submit_time <= t`` are already in the heap —
        exactly the state eager submission would be in.
        """
        if self._submit_source is None and self._next_stream_job is None:
            return
        while True:
            job = self._pull_stream_job()
            if job is None:
                return
            front = self.events.peek()
            if front is not None and front.time < job.submit_time:
                self._next_stream_job = job  # not due yet; keep as lookahead
                return
            self._register_job(job)

    # ------------------------------------------------------------------ #
    # Primitives used by schedulers
    # ------------------------------------------------------------------ #
    def availability_profile(self, extra_running: Iterable[Job] = ()) -> ReservationMap:
        """Build the future free-node profile from the running jobs.

        The profile of the plain running set is cached and invalidated when a
        job starts, ends or is reconfigured (or when time advances), so the
        many profile requests issued within one instant — one per submit hook
        plus one per scheduling pass — rebuild it only once.  Callers always
        receive a private copy they may add reservations to.
        """
        extra = list(extra_running)
        if extra:
            return ReservationMap.from_running_jobs(
                total_nodes=self.cluster.num_nodes,
                now=self.now,
                free_now=self.cluster.num_free_nodes,
                running_jobs=list(self.running.values()) + extra,
                use_requested_time=self.use_requested_time_for_predictions,
            )
        cached = self._profile_cache
        if (
            cached is not None
            and cached[0] == self.now
            and cached[1] == self.cluster.num_free_nodes
            and cached[2] == self._avail_version
        ):
            return cached[3].copy()
        base = ReservationMap.from_running_jobs(
            total_nodes=self.cluster.num_nodes,
            now=self.now,
            free_now=self.cluster.num_free_nodes,
            running_jobs=self.running.values(),
            use_requested_time=self.use_requested_time_for_predictions,
        )
        # Materialise the step-function arrays on the cached instance so
        # every copy shares them instead of each recomputing from scratch.
        base._arrays()
        self._profile_cache = (self.now, self.cluster.num_free_nodes, self._avail_version, base)
        return base.copy()

    def _invalidate_profile(self) -> None:
        """Invalidate the cached availability profile (allocation changed)."""
        self._avail_version += 1

    def start_job_static(self, job: Job, node_ids: Optional[Sequence[int]] = None) -> List[int]:
        """Start a job on an exclusive whole-node allocation."""
        if job.job_id not in self.pending:
            raise RuntimeError(f"job {job.job_id} is not pending")
        nodes = self.cluster.allocate_static(job, node_ids)
        self._invalidate_profile()
        self.pending.remove(job.job_id)
        job.mark_started(self.now, nodes)
        cpus = {nid: self.cluster.node(nid).total_cpus for nid in nodes}
        speed = self.runtime_model.speed(job, cpus)
        job.reconfigure(self.now, cpus, speed)
        self.running[job.job_id] = job
        self._push_end_event(job)
        if self.trace is not None:
            self.trace.emit(
                "job_start",
                self.now,
                job=job.job_id,
                kind="static",
                nodes=len(nodes),
                mates=[],
            )
        return nodes

    def start_job_shared(
        self,
        job: Job,
        cpus_per_node: Dict[int, int],
        mates: Sequence[Job] = (),
    ) -> List[int]:
        """Start a malleable job co-scheduled on (partially) shared nodes.

        The CPUs in ``cpus_per_node`` must already be free — the caller is
        responsible for shrinking the mate jobs first (see
        :meth:`reconfigure_job`).
        """
        if job.job_id not in self.pending:
            raise RuntimeError(f"job {job.job_id} is not pending")
        nodes = self.cluster.allocate_shared(job, cpus_per_node)
        self._invalidate_profile()
        self.pending.remove(job.job_id)
        job.mark_started(self.now, nodes)
        speed = self.runtime_model.speed(job, cpus_per_node)
        job.reconfigure(self.now, cpus_per_node, speed)
        job.scheduled_malleable = True
        job.guest_of = [m.job_id for m in mates]
        for mate in mates:
            if job.job_id not in mate.mates:
                mate.mates.append(job.job_id)
            mate.was_mate = True
        self.running[job.job_id] = job
        self._push_end_event(job)
        if self.trace is not None:
            self.trace.emit(
                "job_start",
                self.now,
                job=job.job_id,
                kind="shared",
                nodes=len(nodes),
                mates=[m.job_id for m in mates],
            )
        return nodes

    def reconfigure_job(self, job: Job, cpus_per_node: Dict[int, int]) -> None:
        """Shrink or expand a running job to a new per-node CPU map.

        The map is the *complete* new allocation of the job: nodes missing
        from the map are released, nodes present are resized (or newly
        acquired if the CPUs are free).
        """
        if job.state is not JobState.RUNNING:
            raise RuntimeError(f"job {job.job_id} is not running")
        if not cpus_per_node:
            raise ValueError(f"job {job.job_id}: cannot reconfigure to an empty allocation")
        trace = self.trace
        cpus_before = sum(job.assigned_cpus.values()) if trace is not None else 0
        self.cluster.reconfigure_allocation(job.job_id, cpus_per_node)
        self._invalidate_profile()
        job.allocated_nodes = sorted(cpus_per_node)
        speed = self.runtime_model.speed(job, cpus_per_node)
        job.reconfigure(self.now, cpus_per_node, speed)
        self._push_end_event(job)
        if trace is not None:
            cpus_after = sum(cpus_per_node.values())
            if cpus_after > cpus_before:
                direction = "grow"
            elif cpus_after < cpus_before:
                direction = "shrink"
            else:
                direction = "same"
            trace.emit(
                "reconfigure",
                self.now,
                job=job.job_id,
                direction=direction,
                cpus_before=cpus_before,
                cpus_after=cpus_after,
            )

    # ------------------------------------------------------------------ #
    # Event processing
    # ------------------------------------------------------------------ #
    def _push_end_event(self, job: Job) -> None:
        end = job.predicted_end_time(self.now)
        if not math.isfinite(end):
            raise RuntimeError(
                f"job {job.job_id}: non-finite predicted end (speed={job.current_speed})"
            )
        self.events.push(
            end, EventType.JOB_END, payload=job.job_id, validity_token=job.end_event_serial
        )

    def _handle_submit(self, job_id: int) -> None:
        job = self.jobs[job_id]
        self.pending.add(job)
        if self.trace is not None:
            self.trace.emit(
                "job_submit",
                self.now,
                job=job.job_id,
                nodes=job.requested_nodes,
                cpus=job.requested_cpus,
                malleable=bool(job.malleable),
            )
        if hasattr(self.scheduler, "on_job_submit"):
            self.scheduler.on_job_submit(self, job)

    def _handle_end(self, job_id: int) -> None:
        job = self.jobs[job_id]
        job.mark_finished(self.now)
        self.cluster.release_job(job)
        self._invalidate_profile()
        self.running.pop(job_id, None)
        self._last_end = max(self._last_end, self.now)
        if self.trace is not None:
            wait = (
                job.start_time - job.submit_time
                if job.start_time is not None
                else None
            )
            self.trace.emit("job_end", self.now, job=job.job_id, wait=wait)
        for fold in self._sink_folds:
            fold(job)
        if hasattr(self.scheduler, "on_job_end"):
            self.scheduler.on_job_end(self, job)
        if not self.retain_jobs:
            # Folded into every sink; drop the per-job state (resource
            # history, CPU maps).
            del self.jobs[job_id]

    def step(self) -> bool:
        """Process the next batch of simultaneous events; returns False when done."""
        self._advance_submissions()
        # The heap yields (time, type priority, serial) order, so the batch
        # arrives already sorted: ends, then submits, then schedule markers.
        batch = self.events.pop_batch()
        if not batch:
            return False
        self.now = batch[0].time
        need_schedule = False
        for event in batch:
            if event.event_type is EventType.JOB_END:
                job = self.jobs.get(event.payload)
                if (
                    job is None
                    or job.state is not JobState.RUNNING
                    or event.validity_token != job.end_event_serial
                ):
                    # Stale end event (job reconfigured earlier in this very
                    # batch) — skipped, and *not* counted as processed.
                    continue
                self._total_events += 1
                self._handle_end(event.payload)
                need_schedule = True
            elif event.event_type is EventType.JOB_SUBMIT:
                self._total_events += 1
                self._handle_submit(event.payload)
                need_schedule = True
            elif event.event_type is EventType.SCHEDULE:
                self._total_events += 1
                need_schedule = True
        if need_schedule and self.pending:
            self.scheduler.schedule(self)
        return True

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run the simulation to completion (or until ``until``)."""
        while True:
            self._advance_submissions()
            nxt = self.events.peek()
            if nxt is None:
                break
            if until is not None and nxt.time > until:
                break
            self.step()
        return self.result()

    # ------------------------------------------------------------------ #
    @property
    def energy_joules(self) -> float:
        """Energy of the workload executed so far (0 without a power model)."""
        if self.power_model is None:
            return 0.0
        idle = getattr(self.power_model, "idle_watts", 0.0)
        peak = getattr(self.power_model, "peak_watts", idle)
        first_submit = self._first_submit if self._first_submit is not None else 0.0
        if not self.retain_jobs:
            # Same integral, accumulated online in fold order.
            return self.streaming.energy_joules(
                num_nodes=self.cluster.num_nodes,
                cpus_per_node=self.cluster.cpus_per_node,
                idle_watts=idle,
                peak_watts=peak,
                first_submit=first_submit,
                last_end=self._last_end,
            )
        if not self.completed:
            return 0.0
        return _workload_energy(
            self.completed,
            num_nodes=self.cluster.num_nodes,
            cpus_per_node=self.cluster.cpus_per_node,
            idle_watts=idle,
            peak_watts=peak,
            first_submit=first_submit,
            last_end=self._last_end,
        )

    def result(self) -> SimulationResult:
        """Build the :class:`SimulationResult` for the jobs completed so far.

        With ``retain_jobs=False`` the aggregates come from the streaming
        accumulator — same values, same summation order — and ``jobs`` is
        empty (``completed_jobs`` still carries the true count).
        """
        first_submit = self._first_submit if self._first_submit is not None else 0.0
        scheduler_name = getattr(self.scheduler, "name", type(self.scheduler).__name__)
        s = self.streaming
        n = s.count
        makespan = max(0.0, self._last_end - first_submit) if n else 0.0
        if n:
            avg_resp = s.sum_response / n
            avg_sd = s.sum_slowdown / n
            avg_wait = s.sum_wait / n
        else:
            avg_resp = avg_sd = avg_wait = 0.0
        return SimulationResult(
            jobs=list(self.completed),
            makespan=makespan,
            avg_response_time=avg_resp,
            avg_slowdown=avg_sd,
            avg_wait_time=avg_wait,
            energy_joules=self.energy_joules,
            malleable_scheduled_jobs=s.malleable_scheduled,
            mate_jobs=s.mate_jobs,
            scheduler_name=scheduler_name,
            total_events=self._total_events,
            first_submit=first_submit,
            completed_jobs=n,
        )
