"""Compute-node model.

A :class:`Node` mirrors a MareNostrum4-style node: two (configurable)
sockets, a fixed number of cores per socket, and a set of per-job CPU
allocations.  In the *static* scheduling baseline a node is either free or
exclusively owned by a single job.  Under SD-Policy a node may be *shared*
between an owner (the original, shrunk "mate" job) and one or more guest
jobs; the node tracks how many CPUs each job currently holds.

Fine-grained core identities (which exact core indices belong to which job,
socket-aware placement) are handled one level below by the node manager
(:mod:`repro.nodemanager`); the scheduler-level node model only needs CPU
counts and ownership.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class NodeAllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied on a node."""


class Node:
    """A single compute node.

    Parameters
    ----------
    node_id:
        Unique integer identifier within the cluster.
    sockets:
        Number of CPU sockets (MareNostrum4 nodes have 2).
    cores_per_socket:
        Cores per socket (MareNostrum4: 24, for 48 cores per node).
    memory_gb:
        Main memory, used by the energy/interference models of the real-run
        emulation; not consulted by the scheduler itself.
    """

    __slots__ = ("node_id", "sockets", "cores_per_socket", "memory_gb", "allocations", "owner")

    def __init__(
        self,
        node_id: int,
        sockets: int = 2,
        cores_per_socket: int = 24,
        memory_gb: float = 96.0,
    ) -> None:
        if sockets <= 0 or cores_per_socket <= 0:
            raise ValueError("sockets and cores_per_socket must be positive")
        self.node_id = node_id
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        self.memory_gb = memory_gb
        # job_id -> number of CPUs held on this node.
        self.allocations: Dict[int, int] = {}
        # The job that "owns" the node (holds the static allocation); guests
        # borrow CPUs from the owner.  ``None`` when the node is free.
        self.owner: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def total_cpus(self) -> int:
        """Total CPU count of the node."""
        return self.sockets * self.cores_per_socket

    @property
    def used_cpus(self) -> int:
        """CPUs currently assigned to jobs on this node."""
        return sum(self.allocations.values())

    @property
    def free_cpus(self) -> int:
        """CPUs not assigned to any job."""
        return self.total_cpus - self.used_cpus

    @property
    def is_free(self) -> bool:
        """True when no job holds any CPUs on the node."""
        return not self.allocations

    @property
    def is_shared(self) -> bool:
        """True when more than one job holds CPUs on the node."""
        return len(self.allocations) > 1

    @property
    def jobs(self) -> List[int]:
        """Ids of the jobs currently holding CPUs on this node."""
        return list(self.allocations)

    @property
    def utilization(self) -> float:
        """Fraction of the node's CPUs currently assigned (0.0–1.0)."""
        return self.used_cpus / self.total_cpus

    # ------------------------------------------------------------------ #
    def allocate(self, job_id: int, cpus: int, owner: bool = True) -> None:
        """Assign ``cpus`` CPUs of this node to ``job_id``.

        ``owner=True`` marks the job as the node owner (static allocation);
        guests co-scheduled by SD-Policy pass ``owner=False``.
        """
        if cpus <= 0:
            raise NodeAllocationError(f"node {self.node_id}: cannot allocate {cpus} cpus")
        if job_id in self.allocations:
            raise NodeAllocationError(
                f"node {self.node_id}: job {job_id} already allocated here"
            )
        if cpus > self.free_cpus:
            raise NodeAllocationError(
                f"node {self.node_id}: requested {cpus} cpus but only "
                f"{self.free_cpus} free"
            )
        self.allocations[job_id] = cpus
        if owner:
            if self.owner is not None:
                raise NodeAllocationError(
                    f"node {self.node_id}: already owned by job {self.owner}"
                )
            self.owner = job_id

    def resize(self, job_id: int, cpus: int) -> None:
        """Change the CPU count held by ``job_id`` (shrink or expand)."""
        if job_id not in self.allocations:
            raise NodeAllocationError(
                f"node {self.node_id}: job {job_id} has no allocation to resize"
            )
        if cpus <= 0:
            raise NodeAllocationError(f"node {self.node_id}: cannot resize to {cpus} cpus")
        delta = cpus - self.allocations[job_id]
        if delta > self.free_cpus:
            raise NodeAllocationError(
                f"node {self.node_id}: resize of job {job_id} to {cpus} cpus "
                f"needs {delta} more cpus but only {self.free_cpus} free"
            )
        self.allocations[job_id] = cpus

    def release(self, job_id: int) -> int:
        """Remove the job's allocation and return the CPUs it held."""
        if job_id not in self.allocations:
            raise NodeAllocationError(
                f"node {self.node_id}: job {job_id} has no allocation to release"
            )
        cpus = self.allocations.pop(job_id)
        if self.owner == job_id:
            self.owner = None
        return cpus

    def cpus_of(self, job_id: int) -> int:
        """CPUs currently held by ``job_id`` (0 if none)."""
        return self.allocations.get(job_id, 0)

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(id={self.node_id}, cpus={self.total_cpus}, "
            f"used={self.used_cpus}, jobs={list(self.allocations)})"
        )
