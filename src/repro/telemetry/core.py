"""Counter/gauge/timer registry with a zero-cost disabled path.

The hot loops this repo cares about (the million-job event loop, the
sweep runner's cache probe) must not pay for instrumentation they are not
using.  The pattern mirrors ``Simulation._sink_folds``: call sites hold a
reference that is either a live :class:`Telemetry` or the shared
:data:`NULL` no-op, so the disabled path is one attribute lookup and a
method call that immediately returns — no dict hashing, no string
formatting, no branching on configuration objects.

Timers keep raw observations (seconds) so :meth:`Telemetry.snapshot` can
report latency percentiles; the snapshot layout is fingerprinted into
``formats.lock`` via :data:`TELEMETRY_SNAPSHOT_FIELDS`, so drift without a
:data:`TELEMETRY_FORMAT_VERSION` bump fails CI.
"""

from __future__ import annotations

import time
from typing import Dict, List

__all__ = [
    "NULL",
    "NullTelemetry",
    "TELEMETRY_FORMAT_VERSION",
    "TELEMETRY_SNAPSHOT_FIELDS",
    "TIMER_STAT_FIELDS",
    "Telemetry",
    "percentile",
]

#: Version of the telemetry snapshot layout (bump on field changes).
TELEMETRY_FORMAT_VERSION = 1

#: Top-level keys of :meth:`Telemetry.snapshot`.
TELEMETRY_SNAPSHOT_FIELDS = ("counters", "gauges", "timers")

#: Per-timer summary keys inside a snapshot's ``"timers"`` mapping.
TIMER_STAT_FIELDS = ("count", "total", "mean", "p50", "p95", "p99", "max")


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty, sorted value list."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    rank = max(0, min(len(values) - 1, int(round(q / 100.0 * len(values))) - 1))
    return values[rank]


class _Timer:
    """Context manager appending one elapsed-seconds observation."""

    __slots__ = ("_observations", "_started")

    def __init__(self, observations: List[float]) -> None:
        self._observations = observations
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._observations.append(time.perf_counter() - self._started)


class Telemetry:
    """In-process registry of named counters, gauges, and timers."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, List[float]] = {}

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        self.timers.setdefault(name, []).append(seconds)

    def time(self, name: str) -> _Timer:
        return _Timer(self.timers.setdefault(name, []))

    def snapshot(self) -> Dict[str, Dict]:
        """Summarize the registry (percentiles per timer) as plain dicts."""
        timers: Dict[str, Dict[str, float]] = {}
        for name, observations in sorted(self.timers.items()):
            ordered = sorted(observations)
            timers[name] = {
                "count": len(ordered),
                "total": sum(ordered),
                "mean": sum(ordered) / len(ordered),
                "p50": percentile(ordered, 50),
                "p95": percentile(ordered, 95),
                "p99": percentile(ordered, 99),
                "max": ordered[-1],
            }
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": timers,
        }


class _NullTimer:
    """Shared do-nothing context manager (no per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullTelemetry(Telemetry):
    """Disabled registry: every operation is an immediate no-op."""

    enabled = False

    def count(self, name: str, delta: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def time(self, name: str) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER


#: Shared no-op instance — hold this instead of ``None`` checks in code
#: that always wants a telemetry object to call into.
NULL = NullTelemetry()
