"""Request-level instrumentation for any :class:`ResultStore` backend.

:class:`InstrumentedStore` wraps a concrete store and re-implements the
five object-name primitives (plus the bulk ``_entries``) as counted,
timed delegations into the wrapped backend; the typed public API it
inherits from :class:`ResultStore` then routes every blob/manifest
operation through the counters for free.  On backends with a retry loop
(:class:`~repro.store.http_store.HTTPObjectStore`), the wrapper hooks
``on_retry`` so transient-failure retries are counted too.

The wrapper is intentionally *not* used on the sweep hot path — it exists
for diagnostics surfaces (``store stats``, tests, benchmarks) where the
question is "how many round-trips and how slow", and wrapping there keeps
``isinstance`` checks against concrete backends elsewhere intact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.store.base import ObjectStat, ResultStore
from repro.telemetry.core import Telemetry

__all__ = ["InstrumentedStore"]


class InstrumentedStore(ResultStore):
    """Counts requests, bytes, retries, and latency per store operation."""

    def __init__(self, inner: ResultStore, telemetry: Optional[Telemetry] = None) -> None:
        self.inner = inner
        self.url = inner.url
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # HTTPObjectStore exposes a retry hook; other backends never retry.
        if hasattr(inner, "on_retry"):
            inner.on_retry = self._record_retry

    def _record_retry(self, method: str, url: str, attempt: int) -> None:
        self.telemetry.count("retries")

    # ------------------------------------------------------------------ #
    def _read(self, name: str) -> Optional[bytes]:
        self.telemetry.count("requests")
        with self.telemetry.time("read"):
            data = self.inner._read(name)
        if data is not None:
            self.telemetry.count("bytes_read", len(data))
        return data

    def _write(self, name: str, data: bytes) -> None:
        self.telemetry.count("requests")
        self.telemetry.count("bytes_written", len(data))
        with self.telemetry.time("write"):
            self.inner._write(name, data)

    def _delete(self, name: str) -> bool:
        self.telemetry.count("requests")
        with self.telemetry.time("delete"):
            return self.inner._delete(name)

    def _names(self, prefix: str = "") -> List[str]:
        self.telemetry.count("requests")
        with self.telemetry.time("list"):
            return self.inner._names(prefix)

    def _stat(self, name: str) -> Optional[ObjectStat]:
        self.telemetry.count("requests")
        with self.telemetry.time("stat"):
            return self.inner._stat(name)

    def _entries(self, prefix: str = "") -> List[Tuple[str, Optional[ObjectStat]]]:
        self.telemetry.count("requests")
        with self.telemetry.time("list"):
            return self.inner._entries(prefix)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Dict]:
        """The wrapped traffic so far (:meth:`Telemetry.snapshot`)."""
        return self.telemetry.snapshot()
