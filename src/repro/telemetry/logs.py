"""Stdlib ``logging`` wiring for the CLI and library modules.

Library code logs through per-module loggers (``logging.getLogger(
__name__)``) under the ``repro`` namespace and never configures handlers
itself; :func:`setup_logging` — called once by the CLI entry point —
attaches a single stderr handler to the ``repro`` root so diagnostics
never contaminate stdout (report output is diffed byte-for-byte in CI).

Precedence: an explicit ``--log-level`` beats the ``REPRO_LOG_LEVEL``
environment variable beats the default (``warning``).  Unknown level
names raise ``ValueError`` so a typo fails loudly instead of silencing
the logs.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

__all__ = ["ENV_LOG_LEVEL", "LOG_LEVELS", "setup_logging"]

#: Environment variable consulted when ``--log-level`` is not given.
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"

#: Accepted level names, lowercase.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def setup_logging(level: Optional[str] = None) -> int:
    """Configure the ``repro`` logger tree; returns the numeric level.

    Idempotent: reconfiguring replaces the previous handler rather than
    stacking duplicates (the CLI main() is re-entrant in tests).
    """
    chosen = level or os.environ.get(ENV_LOG_LEVEL) or "warning"
    chosen = chosen.strip().lower()
    if chosen not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {chosen!r}; expected one of {', '.join(LOG_LEVELS)}"
        )
    numeric = getattr(logging, chosen.upper())
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return numeric
