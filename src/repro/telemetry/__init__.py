"""Telemetry: counters/timers, decision traces, and instrumented stores.

Four pieces, one import surface:

* :mod:`repro.telemetry.core` — the :class:`Telemetry` registry with a
  shared no-op (:data:`NULL`) so disabled instrumentation costs nothing.
* :mod:`repro.telemetry.trace` — byte-deterministic scheduler decision
  traces stored under ``<cache_key>-trace`` with integrity envelopes.
* :mod:`repro.telemetry.instrument` — per-request counting/timing
  wrapper over any :class:`~repro.store.ResultStore`.
* :mod:`repro.telemetry.logs` — stdlib-``logging`` wiring for the CLI
  (``--log-level`` / ``REPRO_LOG_LEVEL``).

Rendering of stored traces lives in :mod:`repro.telemetry.report`, which
is deliberately *not* re-exported here (it imports the store layer's
public API and is a CLI concern).
"""

from repro.telemetry.core import NULL, NullTelemetry, Telemetry
from repro.telemetry.instrument import InstrumentedStore
from repro.telemetry.logs import LOG_LEVELS, setup_logging
from repro.telemetry.trace import (
    PHASE_FIELDS,
    TRACE_FORMAT_VERSION,
    TraceError,
    TraceRecorder,
    iter_trace_manifests,
    load_trace,
    publish_trace,
    trace_key,
    trace_manifest_name,
)

__all__ = [
    "LOG_LEVELS",
    "NULL",
    "NullTelemetry",
    "PHASE_FIELDS",
    "TRACE_FORMAT_VERSION",
    "InstrumentedStore",
    "Telemetry",
    "TraceError",
    "TraceRecorder",
    "iter_trace_manifests",
    "load_trace",
    "publish_trace",
    "setup_logging",
    "trace_key",
    "trace_manifest_name",
]
