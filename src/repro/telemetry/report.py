"""Render stored decision traces for the ``repro-sdpolicy trace`` CLI.

Three views over the same stored artifacts, all answerable from a store
alone (no re-simulation):

* ``summary`` — per-policy decision counts and the phase-timer breakdown;
  every trace blob is re-verified through its integrity envelope first.
* ``grep`` — raw JSONL event lines filtered by event type, job id, or a
  substring/regex, suitable for piping into ``jq``.
* ``timeline`` — a human chronology of one (or every) run; with
  ``--job N`` it collapses to the decisions that touched that job, which
  is the "why did SD-Policy pair these two jobs" view.

Everything here returns strings; printing is the CLI's job.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.store import ResultStore
from repro.telemetry.trace import (
    PHASE_FIELDS,
    TraceError,
    iter_trace_manifests,
    load_trace,
)

__all__ = ["phase_report", "trace_grep", "trace_summary", "trace_timeline"]


def _select_manifests(
    store: ResultStore, key_prefix: Optional[str] = None
) -> List[Tuple[str, Dict[str, Any]]]:
    selected = [
        (name, manifest)
        for name, manifest in iter_trace_manifests(store)
        if not key_prefix or str(manifest.get("cache_key", "")).startswith(key_prefix)
    ]
    if not selected:
        detail = f" matching key prefix {key_prefix!r}" if key_prefix else ""
        raise TraceError(
            f"no decision traces{detail} in {store.url} — run the sweep "
            "with --trace to record them"
        )
    selected.sort(
        key=lambda item: (
            str((item[1].get("meta") or {}).get("label", "")),
            str(item[1].get("cache_key", "")),
        )
    )
    return selected


def _phase_line(phases: Dict[str, float]) -> str:
    parts = [
        f"{name} {phases[name]:.3f}s" for name in PHASE_FIELDS if name in phases
    ]
    for name in sorted(phases):
        if name not in PHASE_FIELDS:
            parts.append(f"{name} {phases[name]:.3f}s")
    return "  ".join(parts) if parts else "(not recorded)"


def trace_summary(store: ResultStore, key_prefix: Optional[str] = None) -> str:
    """Per-policy decision counts + phase breakdown, envelope-verified."""
    selected = _select_manifests(store, key_prefix)
    by_policy: Dict[str, Dict[str, Any]] = {}
    total_events = 0
    for _name, manifest in selected:
        cache_key = str(manifest.get("cache_key", ""))
        meta, events = load_trace(store, cache_key)  # verifies the envelope
        counts: Dict[str, int] = {}
        reasons: Dict[str, int] = {}
        for record in events:
            event = str(record.get("event", "?"))
            counts[event] = counts.get(event, 0) + 1
            if event == "mate_rejected":
                reason = str(record.get("reason", "?"))
                reasons[reason] = reasons.get(reason, 0) + 1
        total_events += len(events)
        policy = str(meta.get("scheduler") or meta.get("policy") or "?")
        bucket = by_policy.setdefault(
            policy,
            {"runs": 0, "counts": {}, "reasons": {}, "phases": {}, "labels": []},
        )
        bucket["runs"] += 1
        bucket["labels"].append(str(meta.get("label", "")))
        for event, count in counts.items():
            bucket["counts"][event] = bucket["counts"].get(event, 0) + count
        for reason, count in reasons.items():
            bucket["reasons"][reason] = bucket["reasons"].get(reason, 0) + count
        for phase, seconds in (manifest.get("phases") or {}).items():
            bucket["phases"][phase] = bucket["phases"].get(phase, 0.0) + float(seconds)
    lines = [f"decision traces ({len(selected)} runs, {total_events} events)", ""]
    for policy in sorted(by_policy):
        bucket = by_policy[policy]
        lines.append(f"policy {policy} ({bucket['runs']} run(s))")
        labels = ", ".join(sorted(set(filter(None, bucket["labels"]))))
        if labels:
            lines.append(f"  labels:    {labels}")
        counts = bucket["counts"]
        ordered = ", ".join(f"{event} {counts[event]}" for event in sorted(counts))
        lines.append(f"  events:    {sum(counts.values())} ({ordered})")
        pairs = counts.get("mate_selected", 0)
        rejections = counts.get("mate_rejected", 0)
        candidates = counts.get("mate_candidate", 0)
        if pairs or rejections or candidates:
            lines.append(
                f"  decisions: {pairs} malleable pairings, "
                f"{rejections} rejections, {candidates} candidates considered"
            )
        reasons = bucket["reasons"]
        if reasons:
            ordered_reasons = ", ".join(
                f"{reason} {reasons[reason]}" for reason in sorted(reasons)
            )
            lines.append(f"  rejected:  {ordered_reasons}")
        lines.append(f"  phases:    {_phase_line(bucket['phases'])}")
        lines.append("")
    return "\n".join(lines).rstrip()


def _mentions_job(record: Dict[str, Any], job_id: int) -> bool:
    for field in ("job", "guest", "mate"):
        if record.get(field) == job_id:
            return True
    mates = record.get("mates")
    return isinstance(mates, list) and job_id in mates


def trace_grep(
    store: ResultStore,
    pattern: Optional[str] = None,
    event: Optional[str] = None,
    job: Optional[int] = None,
    key_prefix: Optional[str] = None,
) -> str:
    """Matching raw JSONL event lines (pipe into ``jq`` for structure)."""
    regex = re.compile(pattern) if pattern else None
    lines: List[str] = []
    for _name, manifest in _select_manifests(store, key_prefix):
        cache_key = str(manifest.get("cache_key", ""))
        _meta, events = load_trace(store, cache_key)
        for record in events:
            if event and record.get("event") != event:
                continue
            if job is not None and not _mentions_job(record, job):
                continue
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            if regex and not regex.search(line):
                continue
            lines.append(line)
    return "\n".join(lines)


def _describe(record: Dict[str, Any]) -> str:
    event = record.get("event")
    if event == "job_submit":
        malleable = "malleable" if record.get("malleable") else "rigid"
        return (
            f"submit    job {record.get('job')} "
            f"({record.get('nodes')} nodes, {record.get('cpus')} cpus, {malleable})"
        )
    if event == "job_start":
        mates = record.get("mates") or []
        shared = f" sharing with {mates}" if mates else ""
        return (
            f"start     job {record.get('job')} {record.get('kind')} "
            f"on {record.get('nodes')} node(s){shared}"
        )
    if event == "job_end":
        return f"end       job {record.get('job')} (waited {record.get('wait')})"
    if event == "backfill_hole":
        return (
            f"backfill  job {record.get('job')} takes a hole on "
            f"{record.get('nodes')} node(s) ahead of {record.get('ahead')} "
            f"reserved job(s), est_start {record.get('est_start')}"
        )
    if event == "mate_candidate":
        verdict = "admitted" if record.get("admitted") else "over cutoff"
        return (
            f"candidate guest {record.get('guest')} vs mate {record.get('mate')}: "
            f"penalty {record.get('penalty')} ({verdict})"
        )
    if event == "mate_rejected":
        return (
            f"reject    guest {record.get('guest')} ({record.get('reason')}: "
            f"static_end {record.get('static_end')} vs "
            f"mall_end {record.get('mall_end')})"
        )
    if event == "mate_selected":
        return (
            f"pair      guest {record.get('guest')} with mates "
            f"{record.get('mates')} (penalty {record.get('penalty')}, "
            f"{record.get('free_nodes')} free node(s), "
            f"est_runtime {record.get('est_runtime')})"
        )
    if event == "reconfigure":
        return (
            f"reconfig  job {record.get('job')} {record.get('direction')} "
            f"{record.get('cpus_before')} -> {record.get('cpus_after')} cpus"
        )
    return f"{event}  {record}"


def trace_timeline(
    store: ResultStore,
    job: Optional[int] = None,
    key_prefix: Optional[str] = None,
) -> str:
    """Human chronology of the stored trace(s), optionally one job's."""
    blocks: List[str] = []
    for _name, manifest in _select_manifests(store, key_prefix):
        cache_key = str(manifest.get("cache_key", ""))
        meta, events = load_trace(store, cache_key)
        selected = [
            record
            for record in events
            if job is None or _mentions_job(record, job)
        ]
        header = (
            f"run {cache_key[:24]}… label={meta.get('label', '?')} "
            f"policy={meta.get('scheduler') or meta.get('policy', '?')} "
            f"({len(selected)}/{len(events)} events)"
        )
        lines = [header]
        for record in selected:
            lines.append(f"  t={record.get('t'):>12}  {_describe(record)}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def phase_report(store: ResultStore, key_prefix: Optional[str] = None) -> str:
    """Per-run phase-timer table from the stored trace manifests."""
    selected = _select_manifests(store, key_prefix)
    header = f"{'label':<20} {'key':<14}"
    for phase in PHASE_FIELDS:
        header += f" {phase:>10}"
    header += f" {'events':>8}"
    lines = [f"phase timers ({len(selected)} runs)", "", header]
    for _name, manifest in selected:
        meta = manifest.get("meta") or {}
        phases = manifest.get("phases") or {}
        row = (
            f"{str(meta.get('label', '?')):<20} "
            f"{str(manifest.get('cache_key', ''))[:12] + '…':<14}"
        )
        for phase in PHASE_FIELDS:
            value = phases.get(phase)
            row += f" {value:>9.3f}s" if value is not None else f" {'-':>10}"
        row += f" {manifest.get('events', 0):>8}"
        lines.append(row)
    return "\n".join(lines)
