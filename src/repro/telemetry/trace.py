"""Structured scheduler decision traces, stored like any other artifact.

A trace is a JSONL document: one header line followed by one line per
decision event, each a canonical JSON object (sorted keys, no whitespace,
non-finite floats mapped to the string tokens ``"inf"``/``"-inf"``/
``"nan"``).  Canonical encoding plus the rule that **only simulation-time
facts go into the blob** (wall-clock phase timings live in the trace
manifest) makes a trace byte-deterministic: the same spec and seed yield
the identical blob from serial, sharded, and ``retain_jobs=False`` runs.

Storage mirrors :mod:`repro.analytics.store`: the blob rides the run's
store under ``<cache_key>-trace`` inside the standard integrity envelope,
and a small ``trace-<cache_key[:24]>`` manifest provides discovery for the
``repro-sdpolicy trace`` CLI plus gc pinning — its ``"tasks"`` list names
both the run blob and the trace blob so
:func:`repro.store.lifecycle.collect_references` keeps them alive.  The
cached run blob stays byte-identical with or without ``--trace``; the
trace pointer lives only in this manifest, so tracing never splits or
invalidates the run cache.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.store import ResultStore, unwrap_blob, wrap_blob
from repro.store.lifecycle import BlobIntegrityError

__all__ = [
    "MATE_REJECTED_REASONS",
    "PHASE_FIELDS",
    "TRACE_EVENT_FIELDS",
    "TRACE_FORMAT_VERSION",
    "TRACE_MANIFEST_FIELDS",
    "TRACE_MANIFEST_PREFIX",
    "TraceError",
    "TraceRecorder",
    "iter_trace_manifests",
    "load_trace",
    "parse_trace",
    "publish_trace",
    "trace_key",
    "trace_manifest_name",
]

#: Version of the trace blob + manifest layout (bump on shape changes).
TRACE_FORMAT_VERSION = 1

#: Manifest-name namespace of the trace layer.
TRACE_MANIFEST_PREFIX = "trace-"

#: Blob-key suffix of a run's serialized trace.
_TRACE_KEY_SUFFIX = "-trace"

#: Declared event vocabulary, ``"<event>:<field,field,…>"`` per entry.
#: ``repro.devtools.formats`` fingerprints this into ``formats.lock``:
#: changing an event's shape without bumping :data:`TRACE_FORMAT_VERSION`
#: fails CI.  Every event also carries ``event`` and ``t`` (sim time).
TRACE_EVENT_FIELDS = (
    "job_submit:job,nodes,cpus,malleable",
    "job_start:job,kind,nodes,mates",
    "job_end:job,wait",
    "backfill_hole:job,nodes,ahead,est_start",
    "mate_candidate:guest,mate,penalty,admitted",
    "mate_rejected:guest,reason,static_end,mall_end",
    "mate_selected:guest,mates,penalty,free_nodes,est_runtime",
    "reconfigure:job,direction,cpus_before,cpus_after",
)

#: Typed vocabulary of the ``mate_rejected`` ``reason`` field, also
#: fingerprinted into ``formats.lock``: ``estimate`` (the malleable end
#: estimate did not beat the static one), ``no_mates`` (no feasible mate
#: combination existed), ``bandwidth`` (UB-Policy refused every candidate
#: because the pairing would oversubscribe a node's memory bandwidth).
#: Extending this tuple without bumping :data:`TRACE_FORMAT_VERSION` fails
#: CI, so readers can rely on the value set per format version.
MATE_REJECTED_REASONS = ("estimate", "no_mates", "bandwidth")

#: Declared key layout of a trace manifest (:func:`publish_trace`).
TRACE_MANIFEST_FIELDS = (
    "kind",
    "schema",
    "cache_key",
    "trace_key",
    "trace_digest",
    "events",
    "counts",
    "meta",
    "phases",
    "tasks",
)

#: Phase-timer names surfaced in ``SweepEntry.phases`` / trace manifests,
#: in pipeline order: simulate → metrics fold → cache serialize → store put.
PHASE_FIELDS = ("simulate", "metrics", "serialize", "store_put")


class TraceError(RuntimeError):
    """A trace blob or trace manifest is missing or unreadable."""


def trace_key(cache_key: str) -> str:
    """Store key of the trace blob belonging to a cached run."""
    return cache_key + _TRACE_KEY_SUFFIX


def trace_manifest_name(cache_key: str) -> str:
    """Deterministic manifest name for a run's trace entry."""
    return TRACE_MANIFEST_PREFIX + cache_key[:24]


def _json_safe(value: Any) -> Any:
    """Map non-finite floats to string tokens; leave everything else alone.

    ``est_start``/``static_end`` are legitimately ``inf`` for jobs with no
    reservation horizon; raw JSON has no spelling for them and ad-hoc ones
    (``Infinity``) are not portable, so they become explicit tokens.
    """
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "nan"
        return "inf" if value > 0 else "-inf"
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    return value


def _canonical_line(record: Dict[str, Any]) -> str:
    return json.dumps(
        _json_safe(record), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class TraceRecorder:
    """Accumulates decision events as canonical JSONL lines.

    Plain lists/dicts of primitives only — recorders cross the process
    boundary from sweep workers back to the parent via pickle.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.counts: Dict[str, int] = {}
        #: Run identity (workload/policy/label/seed) stamped by the runner;
        #: simulation-time determined, so it is safe inside the blob header.
        self.meta: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self.lines)

    def emit(self, event: str, t: float, **fields: Any) -> None:
        record: Dict[str, Any] = {"event": event, "t": t}
        record.update(fields)
        self.lines.append(_canonical_line(record))
        self.counts[event] = self.counts.get(event, 0) + 1

    def to_bytes(self) -> bytes:
        header = _canonical_line(
            {
                "event": "trace_header",
                "format": TRACE_FORMAT_VERSION,
                "meta": self.meta,
            }
        )
        return "\n".join([header] + self.lines).encode("utf-8") + b"\n"


def parse_trace(payload: bytes) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Split a trace blob into its header meta and decoded event records."""
    lines = payload.decode("utf-8").splitlines()
    if not lines:
        raise TraceError("trace blob is empty")
    try:
        header = json.loads(lines[0])
        events = [json.loads(line) for line in lines[1:] if line]
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace blob is not valid JSONL: {exc}") from exc
    if header.get("event") != "trace_header":
        raise TraceError("trace blob does not start with a trace_header line")
    if header.get("format") != TRACE_FORMAT_VERSION:
        raise TraceError(
            f"trace format {header.get('format')!r} is not supported "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    return header.get("meta") or {}, events


def publish_trace(
    store: ResultStore,
    cache_key: str,
    recorder: TraceRecorder,
    run_digest: Optional[str] = None,
    phases: Optional[Dict[str, float]] = None,
) -> str:
    """Publish one run's trace blob + trace manifest; returns the digest."""
    key = trace_key(cache_key)
    enveloped, digest = wrap_blob(recorder.to_bytes())
    store.put(key, enveloped)
    run_ref: Dict[str, Any] = {"cache_key": cache_key}
    if run_digest:
        run_ref["digest"] = run_digest
    manifest = {
        "kind": "trace",
        "schema": TRACE_FORMAT_VERSION,
        "cache_key": cache_key,
        "trace_key": key,
        "trace_digest": digest,
        "events": len(recorder),
        "counts": dict(sorted(recorder.counts.items())),
        "meta": dict(recorder.meta),
        # Wall-clock phase timings stay out of the blob so the blob is
        # byte-deterministic; the manifest is the nondeterministic side.
        "phases": dict(phases or {}),
        # gc pinning: collect_references keeps every "cache_key" listed
        # under "tasks", covering both the run blob and the trace blob.
        "tasks": [run_ref, {"cache_key": key, "digest": digest}],
    }
    store.write_manifest(trace_manifest_name(cache_key), manifest)
    return digest


def load_trace(
    store: ResultStore, cache_key: str
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load + verify one run's trace; ``(meta, events)``.

    :class:`TraceError` if absent, unreadable, or failing its integrity
    envelope (``store verify`` quarantines the corrupt blob).
    """
    data = store.get(trace_key(cache_key))
    if data is None:
        raise TraceError(
            f"no decision trace for cache key {cache_key[:24]}… — the run was "
            "executed without --trace (or served from a pre-trace cache "
            "entry); re-run the sweep with --trace to record one"
        )
    try:
        payload, _digest = unwrap_blob(data)
    except BlobIntegrityError as exc:
        raise TraceError(
            f"decision trace for cache key {cache_key[:24]}… fails its "
            f"integrity envelope ({exc}); run 'store verify' to quarantine it, "
            "then re-run the sweep with --trace"
        ) from exc
    return parse_trace(payload)


def iter_trace_manifests(
    store: ResultStore,
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield ``(manifest_name, payload)`` for every trace manifest."""
    for name in store.list_manifests(TRACE_MANIFEST_PREFIX):
        manifest = store.read_manifest(name)
        if manifest is None or manifest.get("kind") != "trace":
            continue
        if manifest.get("schema") != TRACE_FORMAT_VERSION:
            continue
        yield name, manifest
