"""Workload scaling and subsampling utilities.

The paper scales the Cirne model "to the considered system size"; the
benchmarks of this reproduction additionally need to shrink the very large
CEA-Curie-like workload to a size that regenerates the figures in an
acceptable wall-clock budget.  Both operations are provided here in a form
that preserves the properties the scheduling policies are sensitive to:
relative job sizes, the runtime distribution, and the offered load.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.workloads.job_record import Workload


def scale_to_system(
    workload: Workload,
    target_nodes: int,
    target_cpus_per_node: Optional[int] = None,
    name: Optional[str] = None,
) -> Workload:
    """Rescale per-job node requests to a different system size.

    Every job's node count is scaled by ``target_nodes / source_nodes``
    (keeping at least one node and never exceeding the new system), which
    preserves the *relative* size distribution.  Runtimes and submission
    times are unchanged, so the offered load is preserved as well.
    """
    if target_nodes <= 0:
        raise ValueError("target_nodes must be positive")
    cpus_per_node = target_cpus_per_node or workload.cpus_per_node
    ratio = target_nodes / workload.system_nodes
    records = []
    for r in workload.records:
        nodes = r.requested_nodes(workload.cpus_per_node)
        new_nodes = max(1, min(target_nodes, int(round(nodes * ratio)) or 1))
        records.append(
            replace(
                r,
                requested_procs=new_nodes * cpus_per_node,
                used_procs=new_nodes * cpus_per_node,
            )
        )
    return Workload(
        name=name or f"{workload.name}@{target_nodes}n",
        records=records,
        system_nodes=target_nodes,
        cpus_per_node=cpus_per_node,
    )


def subsample(
    workload: Workload,
    fraction: float,
    seed: int = 0,
    compress_time: bool = True,
    name: Optional[str] = None,
) -> Workload:
    """Keep a random fraction of the jobs, optionally compressing time.

    With ``compress_time`` the inter-arrival gaps are multiplied by the kept
    fraction so the offered load of the subsample matches the original — the
    property that determines queueing behaviour.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return workload
    rng = np.random.default_rng(seed)
    keep_mask = rng.random(len(workload.records)) < fraction
    kept = [r for r, keep in zip(workload.records, keep_mask) if keep]
    if not kept:
        kept = [workload.records[0]]
    if compress_time:
        base = kept[0].submit_time
        kept = [
            replace(r, submit_time=base + (r.submit_time - base) * fraction) for r in kept
        ]
    return Workload(
        name=name or f"{workload.name}~{fraction:g}",
        records=kept,
        system_nodes=workload.system_nodes,
        cpus_per_node=workload.cpus_per_node,
    )
