"""Application mix of the real-run workload (Table 2 of the paper).

Workload 5 is a Cirne-model log converted into submissions of real malleable
applications.  Table 2 lists the mix:

========== =========== ============== ============ ================= =================
Application  % workload  Req. nodes     Req. time    CPU utilisation   Memory utilisation
========== =========== ============== ============ ================= =================
PILS          30.5%      small→high     small/med    high              low
STREAM        30.8%      small→high     small/med    low               high
CoreNeuron    35.5%      small→high     small→high   high              med
NEST           2.6%      small→high     small→high   high              med
Alya           0.6%      small          high         high              med
========== =========== ============== ============ ================= =================

This module assigns an application label to every record of a workload,
following the table's proportions and the size/length preferences, so the
real-run emulation (:mod:`repro.realrun`) can apply the matching
performance and energy models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.job_record import JobRecord, Workload


@dataclass(frozen=True)
class ApplicationShare:
    """One row of Table 2: an application and its share of the workload."""

    name: str
    share: float
    #: Preference weights (small, medium, large) over requested node counts.
    size_preference: Tuple[float, float, float]
    #: Preference weights (short, medium, long) over requested times.
    time_preference: Tuple[float, float, float]


#: The Table 2 mix.  Shares sum to 1.0 (the paper's column sums to 100%).
APPLICATION_MIX: Sequence[ApplicationShare] = (
    ApplicationShare("PILS", 0.305, (0.4, 0.4, 0.2), (0.5, 0.4, 0.1)),
    ApplicationShare("STREAM", 0.308, (0.4, 0.4, 0.2), (0.5, 0.4, 0.1)),
    ApplicationShare("CoreNeuron", 0.355, (0.3, 0.4, 0.3), (0.3, 0.4, 0.3)),
    ApplicationShare("NEST", 0.026, (0.3, 0.4, 0.3), (0.3, 0.4, 0.3)),
    ApplicationShare("Alya", 0.006, (0.8, 0.2, 0.0), (0.0, 0.2, 0.8)),
)


def _tercile_index(value: float, boundaries: Tuple[float, float]) -> int:
    if value <= boundaries[0]:
        return 0
    if value <= boundaries[1]:
        return 1
    return 2


def assign_applications(
    workload: Workload,
    mix: Sequence[ApplicationShare] = APPLICATION_MIX,
    seed: int = 99,
    name: Optional[str] = None,
) -> Workload:
    """Label every record of a workload with an application from the mix.

    The assignment respects the global shares of Table 2 while biasing each
    application towards its preferred job size and duration tercile (e.g.
    Alya only appears on small, long jobs).
    """
    if not workload.records:
        return workload
    rng = np.random.default_rng(seed)
    sizes = np.array([r.requested_procs for r in workload.records], dtype=float)
    times = np.array([r.requested_time for r in workload.records], dtype=float)
    size_bounds = (float(np.quantile(sizes, 1 / 3)), float(np.quantile(sizes, 2 / 3)))
    time_bounds = (float(np.quantile(times, 1 / 3)), float(np.quantile(times, 2 / 3)))

    shares = np.array([m.share for m in mix], dtype=float)
    shares = shares / shares.sum()

    records: List[JobRecord] = []
    for record in workload.records:
        s_idx = _tercile_index(record.requested_procs, size_bounds)
        t_idx = _tercile_index(record.requested_time, time_bounds)
        weights = np.array(
            [
                shares[i] * mix[i].size_preference[s_idx] * mix[i].time_preference[t_idx]
                for i in range(len(mix))
            ]
        )
        if weights.sum() <= 0:
            weights = shares.copy()
        weights = weights / weights.sum()
        app = mix[int(rng.choice(len(mix), p=weights))].name
        records.append(replace(record, application=app))
    return Workload(
        name=name or f"{workload.name}+apps",
        records=records,
        system_nodes=workload.system_nodes,
        cpus_per_node=workload.cpus_per_node,
    )


def application_shares(workload: Workload) -> Dict[str, float]:
    """Observed fraction of jobs per application label (for Table 2 checks)."""
    counts: Dict[str, int] = {}
    for record in workload.records:
        label = record.application or "unlabelled"
        counts[label] = counts.get(label, 0) + 1
    total = max(1, len(workload.records))
    return {k: v / total for k, v in sorted(counts.items())}
