"""Synthetic stand-ins for the RICC and CEA-Curie archive logs.

The paper's workloads 3 and 4 are taken from the Parallel Workloads Archive:

* **Workload 3** — a 10,000-job slice of the RICC installation trace
  (2010): 1024 nodes × 8 cores, a very high share of small jobs requesting
  few nodes, runtimes from minutes up to the 4-day limit, max job 72 nodes.
* **Workload 4** — the cleaned CEA-Curie log (2011), primary partition:
  198,509 jobs on 5040 nodes × 16 cores over roughly eight months, with a
  small number of very large jobs (up to 4988 nodes).

The original traces cannot be bundled or downloaded in this environment, so
this module generates logs that match the published characteristics the
policy is sensitive to — the distribution of node counts, the runtime range,
the request over-estimation behaviour, and the bursty daily arrival pattern
— at the same scale (and at configurable reduced scale for benchmarks).
Real SWF files can be substituted at any time through
:func:`repro.workloads.swf.read_swf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.workloads import distributions as dist
from repro.workloads.job_record import JobRecord, Workload


@dataclass
class RICCLikeModel:
    """Synthetic RICC-2010-like workload (paper workload 3)."""

    num_jobs: int = 10000
    system_nodes: int = 1024
    cpus_per_node: int = 8
    max_job_nodes: int = 72
    target_load: float = 1.0
    median_runtime_s: float = 45.0 * 60.0
    seed: int = 2010
    name: str = "ricc_like"

    def generate(self) -> Workload:
        """Generate the workload."""
        rng = np.random.default_rng(self.seed)
        max_nodes = max(1, min(self.max_job_nodes, self.system_nodes))
        sizes: List[int] = []
        for _ in range(self.num_jobs):
            # RICC is dominated by small jobs: ~60% single node, and sizes
            # fall off quickly; the tail is capped at the max job size.
            u = rng.random()
            if u < 0.60 or max_nodes == 1:
                size = 1
            elif u < 0.85:
                size = int(rng.integers(2, min(9, max_nodes + 1)))
            elif u < 0.97:
                size = int(rng.integers(min(9, max_nodes), min(33, max_nodes + 1)))
            else:
                size = int(rng.integers(min(33, max_nodes), max_nodes + 1))
            sizes.append(max(1, min(size, max_nodes)))
        runtimes = np.array(
            [
                dist.gamma_runtime(rng, self.median_runtime_s, shape=0.55)
                for _ in range(self.num_jobs)
            ]
        )
        factors = np.array(
            [dist.request_overestimation_factor(rng) for _ in range(self.num_jobs)]
        )
        requests = np.clip(runtimes * factors, runtimes, 4 * dist.SECONDS_PER_DAY)

        total_work = float(
            np.sum(np.array(sizes) * self.cpus_per_node * runtimes)
        )
        capacity = self.system_nodes * self.cpus_per_node
        span = total_work / (capacity * self.target_load)
        arrivals = dist.calibrated_arrivals(rng, self.num_jobs, span)

        records = [
            JobRecord(
                job_id=i + 1,
                submit_time=float(arrivals[i]),
                run_time=float(runtimes[i]),
                requested_time=float(requests[i]),
                requested_procs=sizes[i] * self.cpus_per_node,
                user_id=int(rng.integers(1, 300)),
                group_id=int(rng.integers(1, 50)),
            )
            for i in range(self.num_jobs)
        ]
        return Workload(
            name=self.name,
            records=records,
            system_nodes=self.system_nodes,
            cpus_per_node=self.cpus_per_node,
        )


@dataclass
class CEACurieLikeModel:
    """Synthetic CEA-Curie-2011-like workload (paper workload 4).

    The full-scale configuration (198,509 jobs on 5040 nodes) reproduces the
    paper's table-1 row; benchmarks use a proportionally scaled version
    (fewer jobs on fewer nodes at the same offered load) so the regenerating
    run fits in a reasonable wall-clock budget.
    """

    num_jobs: int = 198509
    system_nodes: int = 5040
    cpus_per_node: int = 16
    max_job_nodes: int = 4988
    target_load: float = 0.95
    median_runtime_s: float = 25.0 * 60.0
    seed: int = 2011
    name: str = "cea_curie_like"
    #: Factor applied to sampled job sizes (used by :meth:`scaled` so a
    #: smaller instance keeps the *relative* job-size distribution of the
    #: full log — the property that determines how many jobs run
    #: concurrently and therefore how many mates SD-Policy can find).
    size_scale: float = 1.0

    def scaled(self, fraction: float, name: Optional[str] = None) -> "CEACurieLikeModel":
        """A proportionally smaller instance (same load, same relative job mix)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        nodes = max(16, int(self.system_nodes * fraction))
        return CEACurieLikeModel(
            num_jobs=max(100, int(self.num_jobs * fraction)),
            system_nodes=nodes,
            cpus_per_node=self.cpus_per_node,
            max_job_nodes=max(1, min(int(self.max_job_nodes * fraction), nodes)),
            target_load=self.target_load,
            median_runtime_s=self.median_runtime_s,
            seed=self.seed,
            name=name or f"{self.name}_x{fraction:g}",
            size_scale=self.size_scale * fraction,
        )

    def generate(self) -> Workload:
        """Generate the workload."""
        rng = np.random.default_rng(self.seed)
        max_nodes = min(self.max_job_nodes, self.system_nodes)
        sizes: List[int] = []
        for _ in range(self.num_jobs):
            # Curie's primary partition: a sea of small jobs with a heavy
            # tail — ~45% single node, most below 16 nodes, and a sprinkle
            # of very large (>512 node) jobs.  Sizes are drawn at the scale
            # of the full 5040-node log and then rescaled by ``size_scale``.
            u = rng.random()
            if u < 0.45:
                size = 1
            elif u < 0.75:
                size = int(rng.integers(2, 17))
            elif u < 0.92:
                size = int(rng.integers(17, 129))
            elif u < 0.995:
                size = int(rng.integers(129, 1025))
            else:
                size = int(rng.integers(1024, 4989))
            size = int(round(size * self.size_scale)) or 1
            sizes.append(max(1, min(size, max_nodes)))
        runtimes = np.array(
            [
                dist.gamma_runtime(rng, self.median_runtime_s, shape=0.5,
                                   max_seconds=3 * dist.SECONDS_PER_DAY)
                for _ in range(self.num_jobs)
            ]
        )
        factors = np.array(
            [dist.request_overestimation_factor(rng) for _ in range(self.num_jobs)]
        )
        requests = np.clip(runtimes * factors, runtimes, 3 * dist.SECONDS_PER_DAY)

        total_work = float(np.sum(np.array(sizes) * self.cpus_per_node * runtimes))
        capacity = self.system_nodes * self.cpus_per_node
        span = total_work / (capacity * self.target_load)
        arrivals = dist.calibrated_arrivals(rng, self.num_jobs, span)

        records = [
            JobRecord(
                job_id=i + 1,
                submit_time=float(arrivals[i]),
                run_time=float(runtimes[i]),
                requested_time=float(requests[i]),
                requested_procs=sizes[i] * self.cpus_per_node,
                user_id=int(rng.integers(1, 700)),
                group_id=int(rng.integers(1, 80)),
            )
            for i in range(self.num_jobs)
        ]
        return Workload(
            name=self.name,
            records=records,
            system_nodes=self.system_nodes,
            cpus_per_node=self.cpus_per_node,
        )
