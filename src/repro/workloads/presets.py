"""The five paper workloads (Table 1), plus benchmark-scale variants.

================ ============== ========= ================= ==============
ID                Log/model      # jobs    System (nodes)    Max job (nodes)
================ ============== ========= ================= ==============
1                 Cirne          5000      1024 × 48 cores   128
2                 Cirne_ideal    5000      1024 × 48 cores   128
3                 RICC-sept      10000     1024 × 8 cores    72
4                 CEA-Curie      198509    5040 × 16 cores   4988
5                 Cirne_real_run 2000      49 × 48 cores     16
================ ============== ========= ================= ==============

Each ``workload_N`` factory accepts a ``scale`` in (0, 1]; a scale below 1
shrinks the job count and system proportionally while keeping the offered
load, which is how the benchmarks regenerate the paper's figures in minutes
instead of hours.  ``scale=1.0`` reproduces the full Table 1 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.workloads.applications import assign_applications
from repro.workloads.cirne import CirneWorkloadModel
from repro.workloads.job_record import Workload
from repro.workloads.synthetic import CEACurieLikeModel, RICCLikeModel


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one paper workload (the Table 1 row)."""

    workload_id: int
    label: str
    num_jobs: int
    system_nodes: int
    cpus_per_node: int
    max_job_nodes: int


PAPER_WORKLOADS: Dict[int, WorkloadSpec] = {
    1: WorkloadSpec(1, "Cirne", 5000, 1024, 48, 128),
    2: WorkloadSpec(2, "Cirne_ideal", 5000, 1024, 48, 128),
    3: WorkloadSpec(3, "RICC-sept", 10000, 1024, 8, 72),
    4: WorkloadSpec(4, "CEA-Curie", 198509, 5040, 16, 4988),
    5: WorkloadSpec(5, "Cirne_real_run", 2000, 49, 48, 16),
}


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def workload_1(scale: float = 1.0, seed: int = 1001) -> Workload:
    """Workload 1 — Cirne model, user-requested times over-estimate runtimes."""
    spec = PAPER_WORKLOADS[1]
    nodes = _scaled(spec.system_nodes, scale, 16)
    return CirneWorkloadModel(
        num_jobs=_scaled(spec.num_jobs, scale, 50),
        system_nodes=nodes,
        cpus_per_node=spec.cpus_per_node,
        max_job_nodes=min(nodes, _scaled(spec.max_job_nodes, scale, 4)),
        exact_requests=False,
        seed=seed,
        name="workload1_cirne",
    ).generate()


def workload_2(scale: float = 1.0, seed: int = 1001) -> Workload:
    """Workload 2 — Cirne_ideal: identical to workload 1 but exact requests."""
    spec = PAPER_WORKLOADS[2]
    nodes = _scaled(spec.system_nodes, scale, 16)
    return CirneWorkloadModel(
        num_jobs=_scaled(spec.num_jobs, scale, 50),
        system_nodes=nodes,
        cpus_per_node=spec.cpus_per_node,
        max_job_nodes=min(nodes, _scaled(spec.max_job_nodes, scale, 4)),
        exact_requests=True,
        seed=seed,
        name="workload2_cirne_ideal",
    ).generate()


def workload_3(scale: float = 1.0, seed: int = 2010) -> Workload:
    """Workload 3 — RICC-like log: many small, short-to-long jobs."""
    spec = PAPER_WORKLOADS[3]
    nodes = _scaled(spec.system_nodes, scale, 16)
    return RICCLikeModel(
        num_jobs=_scaled(spec.num_jobs, scale, 100),
        system_nodes=nodes,
        cpus_per_node=spec.cpus_per_node,
        max_job_nodes=min(nodes, _scaled(spec.max_job_nodes, scale, 4)),
        seed=seed,
        name="workload3_ricc_like",
    ).generate()


def workload_4(scale: float = 1.0, seed: int = 2011) -> Workload:
    """Workload 4 — CEA-Curie-like log: the paper's big 198K-job workload."""
    spec = PAPER_WORKLOADS[4]
    model = CEACurieLikeModel(seed=seed, name="workload4_cea_curie_like")
    if scale < 1.0:
        model = model.scaled(scale, name=f"workload4_cea_curie_like_x{scale:g}")
    return model.generate()


def workload_5(scale: float = 1.0, seed: int = 5005, with_applications: bool = True) -> Workload:
    """Workload 5 — the real-run workload: 2000 jobs on a 49-node system."""
    spec = PAPER_WORKLOADS[5]
    nodes = _scaled(spec.system_nodes, scale, 8)
    wl = CirneWorkloadModel(
        num_jobs=_scaled(spec.num_jobs, scale, 50),
        system_nodes=nodes,
        cpus_per_node=spec.cpus_per_node,
        max_job_nodes=min(nodes, _scaled(spec.max_job_nodes, scale, 2)),
        median_runtime_s=30 * 60.0,
        target_load=1.0,
        seed=seed,
        name="workload5_cirne_real_run",
    ).generate()
    if with_applications:
        wl = assign_applications(wl, seed=seed, name=wl.name)
    return wl


_BUILDERS: Dict[int, Callable[..., Workload]] = {
    1: workload_1,
    2: workload_2,
    3: workload_3,
    4: workload_4,
    5: workload_5,
}


def build_workload(workload_id: int, scale: float = 1.0, seed: Optional[int] = None) -> Workload:
    """Build a paper workload by its Table 1 id (1–5)."""
    if workload_id not in _BUILDERS:
        raise ValueError(f"unknown workload id {workload_id}; expected 1..5")
    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return _BUILDERS[workload_id](**kwargs)
