"""Shared statistical building blocks for the workload generators.

All generators draw from a handful of distributions that the workload
modelling literature (Cirne & Berman 2001, Feitelson's archive analyses)
identifies as characteristic of supercomputer logs:

* job sizes concentrated on powers of two, with a heavy tail of large jobs;
* log-uniform-ish runtimes spanning minutes to days;
* user wall-time requests that over-estimate the real runtime by a widely
  varying factor;
* arrivals following a daily (and weekly) cycle on top of a Poisson
  process — the "ANL arrival pattern" the paper configures the Cirne model
  with.

Every sampler takes an explicit :class:`numpy.random.Generator` so workload
generation is reproducible from a single seed.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

#: Hour-of-day relative arrival intensity, normalised to mean 1.0.  The
#: shape follows the archive's ANL/production-system pattern: low activity
#: overnight, ramp-up from 8am, peak during working hours, slow decay in the
#: evening.
ANL_HOURLY_WEIGHTS: Sequence[float] = (
    0.35, 0.30, 0.28, 0.27, 0.28, 0.32,  # 00-05
    0.45, 0.70, 1.10, 1.55, 1.75, 1.80,  # 06-11
    1.70, 1.75, 1.80, 1.70, 1.55, 1.35,  # 12-17
    1.10, 0.95, 0.80, 0.65, 0.50, 0.40,  # 18-23
)

#: Day-of-week relative intensity (Monday..Sunday), normalised to mean 1.0.
WEEKDAY_WEIGHTS: Sequence[float] = (1.25, 1.30, 1.30, 1.25, 1.15, 0.45, 0.30)

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def _normalise(weights: Sequence[float]) -> np.ndarray:
    arr = np.asarray(weights, dtype=float)
    return arr * (len(arr) / arr.sum())


_HOURLY = _normalise(ANL_HOURLY_WEIGHTS)
_DAILY = _normalise(WEEKDAY_WEIGHTS)


def log_uniform(rng: np.random.Generator, low: float, high: float, size: Optional[int] = None):
    """Sample from a log-uniform distribution on ``[low, high]``."""
    if low <= 0 or high <= 0 or high < low:
        raise ValueError("log_uniform needs 0 < low <= high")
    return np.exp(rng.uniform(math.log(low), math.log(high), size))


def power_of_two_size(
    rng: np.random.Generator,
    max_nodes: int,
    mean_log2: float = 2.0,
    std_log2: float = 1.8,
    p_power_of_two: float = 0.75,
    p_serial: float = 0.25,
) -> int:
    """Sample a job node count with the archive's power-of-two emphasis.

    A fraction ``p_serial`` of jobs request a single node; the rest draw a
    log2-normal size, snapped to the nearest power of two with probability
    ``p_power_of_two``, and clipped to ``[1, max_nodes]``.
    """
    if max_nodes < 1:
        raise ValueError("max_nodes must be >= 1")
    if rng.random() < p_serial:
        return 1
    log2_size = rng.normal(mean_log2, std_log2)
    log2_size = min(max(log2_size, 0.0), math.log2(max_nodes))
    if rng.random() < p_power_of_two:
        size = 2 ** int(round(log2_size))
    else:
        size = int(round(2 ** log2_size))
    return int(min(max(size, 1), max_nodes))


def request_overestimation_factor(rng: np.random.Generator) -> float:
    """Ratio requested_time / real runtime drawn from an archive-like mix.

    Roughly a third of users request close to the real runtime, a third
    moderately over-request, and a third request the queue maximum —
    the characteristic "accuracy" histogram of production logs.
    """
    u = rng.random()
    if u < 0.30:
        return 1.0 + rng.random() * 0.2          # accurate requests
    if u < 0.70:
        return 1.2 + rng.random() * 3.0           # moderate over-estimation
    return 4.0 + rng.random() * 16.0              # "ask for the max" users


def arrival_intensity(time_s: float) -> float:
    """Relative arrival intensity at an absolute time (daily+weekly cycle)."""
    hour = int((time_s % SECONDS_PER_DAY) // SECONDS_PER_HOUR) % 24
    day = int((time_s % SECONDS_PER_WEEK) // SECONDS_PER_DAY) % 7
    return float(_HOURLY[hour] * _DAILY[day])


def cyclic_poisson_arrivals(
    rng: np.random.Generator,
    num_jobs: int,
    mean_interarrival: float,
    start_time: float = 8 * SECONDS_PER_HOUR,
) -> List[float]:
    """Arrival times of a non-homogeneous Poisson process (ANL pattern).

    Uses thinning: candidate exponential gaps at the peak rate are accepted
    with probability proportional to the instantaneous intensity.
    """
    if num_jobs <= 0:
        return []
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    peak = float(max(_HOURLY.max() * _DAILY.max(), 1.0))
    lam_peak = peak / mean_interarrival
    times: List[float] = []
    t = start_time
    while len(times) < num_jobs:
        t += rng.exponential(1.0 / lam_peak)
        if rng.random() <= arrival_intensity(t) / peak:
            times.append(t)
    return times


def calibrated_arrivals(
    rng: np.random.Generator,
    num_jobs: int,
    target_span: float,
    start_time: float = 8 * SECONDS_PER_HOUR,
) -> List[float]:
    """Cyclic Poisson arrivals whose overall span matches ``target_span``.

    Workloads much shorter than a week see only the high-intensity part of
    the daily/weekly cycle, so a single thinning pass produces a span (and
    therefore an offered load) noticeably off the target.  A second pass
    with the empirically corrected mean gap fixes that while keeping the
    burst structure of the cycle intact.
    """
    if num_jobs <= 1:
        return [start_time] * max(0, num_jobs)
    if target_span <= 0:
        raise ValueError("target_span must be positive")
    mean_gap = target_span / num_jobs
    arrivals = cyclic_poisson_arrivals(rng, num_jobs, mean_gap, start_time)
    # The correction is iterated because changing the span also changes which
    # part of the daily/weekly cycle the workload covers (e.g. whether it
    # crosses a weekend), so a single proportional fix can over- or
    # under-shoot.
    for _ in range(4):
        actual_span = arrivals[-1] - arrivals[0]
        if actual_span <= 0 or abs(actual_span - target_span) <= 0.05 * target_span:
            break
        mean_gap *= target_span / actual_span
        arrivals = cyclic_poisson_arrivals(rng, num_jobs, mean_gap, start_time)
    return arrivals


def gamma_runtime(
    rng: np.random.Generator,
    median_seconds: float,
    shape: float = 0.45,
    max_seconds: float = 4 * SECONDS_PER_DAY,
    min_seconds: float = 60.0,
) -> float:
    """Heavy-tailed runtime sample (gamma in log-space around a median)."""
    if median_seconds <= 0:
        raise ValueError("median_seconds must be positive")
    # Log-normal-ish: exponentiate a centred gamma for a long right tail.
    draw = rng.gamma(shape, 1.0)
    centre = rng.gamma(shape, 1.0)
    value = median_seconds * math.exp(draw - centre)
    return float(min(max(value, min_seconds), max_seconds))
