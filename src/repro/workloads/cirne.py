"""Reimplementation of the Cirne–Berman supercomputer workload model.

The paper generates workloads 1, 2 and 5 with the "comprehensive model of
the supercomputer workload" of Cirne & Berman (2001), configured with the
ANL arrival pattern and scaled to the target system.  The model's published
structure is:

* arrivals — Poisson process modulated by a daily cycle (here the ANL-style
  hour-of-day / day-of-week weights of
  :mod:`repro.workloads.distributions`);
* job sizes — a mixture of serial jobs and parallel jobs whose log2 size is
  normally distributed with strong emphasis on powers of two;
* runtimes — heavy-tailed, spanning minutes to days;
* requested times — the real runtime multiplied by a user over-estimation
  factor (workload 2, "Cirne_ideal", sets the factor to exactly 1 so the
  scheduler's predictions are perfect).

The arrival rate is calibrated from a target *offered load* (total work /
capacity over the submission window), because the interesting scheduling
regime — queues long enough for slowdown to matter — is a property of the
load rather than of the absolute job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.workloads import distributions as dist
from repro.workloads.job_record import JobRecord, Workload


@dataclass
class CirneWorkloadModel:
    """Generator for Cirne-model workloads.

    Parameters
    ----------
    num_jobs:
        Number of jobs to generate.
    system_nodes / cpus_per_node:
        Target system (the paper's workloads 1-2 use 1024 nodes × 48 cores,
        workload 5 uses 49 nodes × 48 cores).
    max_job_nodes:
        Cap on a single job's node request (128 for workloads 1-2, 16 for
        workload 5).
    target_load:
        Offered load used to calibrate the mean inter-arrival time.  Values
        slightly above 1.0 reproduce the congested regime of the paper's
        logs (their average slowdowns are in the thousands).
    exact_requests:
        If True, requested time equals the real runtime ("Cirne_ideal",
        workload 2).
    median_runtime_s:
        Median of the heavy-tailed runtime distribution.
    seed:
        RNG seed; every run with the same parameters is identical.
    """

    num_jobs: int = 5000
    system_nodes: int = 1024
    cpus_per_node: int = 48
    max_job_nodes: int = 128
    target_load: float = 1.05
    exact_requests: bool = False
    median_runtime_s: float = 2.0 * 3600.0
    mean_size_log2: float = 2.5
    std_size_log2: float = 1.8
    p_serial: float = 0.25
    seed: int = 12345
    name: Optional[str] = None

    def generate(self) -> Workload:
        """Generate the workload."""
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if self.max_job_nodes > self.system_nodes:
            raise ValueError("max_job_nodes cannot exceed system_nodes")
        if self.target_load <= 0:
            raise ValueError("target_load must be positive")
        rng = np.random.default_rng(self.seed)

        sizes = np.array(
            [
                dist.power_of_two_size(
                    rng,
                    self.max_job_nodes,
                    mean_log2=self.mean_size_log2,
                    std_log2=self.std_size_log2,
                    p_serial=self.p_serial,
                )
                for _ in range(self.num_jobs)
            ],
            dtype=int,
        )
        runtimes = np.array(
            [dist.gamma_runtime(rng, self.median_runtime_s) for _ in range(self.num_jobs)]
        )
        if self.exact_requests:
            requests = runtimes.copy()
        else:
            factors = np.array(
                [dist.request_overestimation_factor(rng) for _ in range(self.num_jobs)]
            )
            requests = np.minimum(runtimes * factors, 4 * dist.SECONDS_PER_DAY)
            requests = np.maximum(requests, runtimes)

        # Calibrate the mean inter-arrival time from the target load:
        #   load = total_work / (capacity * span)  with span ≈ N * mean_gap.
        total_work = float(np.sum(sizes * self.cpus_per_node * runtimes))
        capacity = self.system_nodes * self.cpus_per_node
        span = total_work / (capacity * self.target_load)
        arrivals = dist.calibrated_arrivals(rng, self.num_jobs, span)

        records: List[JobRecord] = []
        for i in range(self.num_jobs):
            records.append(
                JobRecord(
                    job_id=i + 1,
                    submit_time=float(arrivals[i]),
                    run_time=float(runtimes[i]),
                    requested_time=float(requests[i]),
                    requested_procs=int(sizes[i]) * self.cpus_per_node,
                    user_id=int(rng.integers(1, 200)),
                    group_id=int(rng.integers(1, 40)),
                )
            )
        label = self.name or ("cirne_ideal" if self.exact_requests else "cirne")
        return Workload(
            name=label,
            records=records,
            system_nodes=self.system_nodes,
            cpus_per_node=self.cpus_per_node,
        )
