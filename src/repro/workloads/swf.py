"""Standard Workload Format (SWF) reader and writer.

The SWF (Feitelson, Parallel Workloads Archive) stores one job per line with
18 whitespace-separated fields; comment/header lines start with ``;``.  The
paper's simulated workloads 3 and 4 come from SWF logs (RICC 2010 and
CEA-Curie 2011).  The reproduction ships synthetic stand-ins for those logs,
but the parser below accepts the real files unchanged, so they can be used
directly when available.

Field order (0-based index → meaning)::

    0  job number                9  requested number of processors
    1  submit time              10  requested time
    2  wait time                11  requested memory
    3  run time                 12  status
    4  allocated processors     13  user id
    5  average cpu time used    14  group id
    6  used memory              15  executable (application) number
    7  requested processors*    16  queue number
    8  ... (see note)           17  partition number

Note: the archive's canonical ordering is (4) allocated processors,
(5) average CPU time, (6) used memory, (7) requested processors,
(8) requested time, (9) requested memory, (10) status, (11) user,
(12) group, (13) executable, (14) queue, (15) partition,
(16) preceding job, (17) think time.  That canonical ordering is what this
module implements.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, Optional, Sequence, TextIO, Union

import numpy as np

from repro.workloads.job_record import JobRecord, Workload

#: Number of data fields in a canonical SWF line.
SWF_FIELDS = 18


class SWFFormatError(ValueError):
    """Raised when a line cannot be parsed as an SWF record."""


def _parse_line(line: str, lineno: int) -> Optional[JobRecord]:
    parts = line.split()
    if len(parts) < SWF_FIELDS:
        raise SWFFormatError(
            f"line {lineno}: expected {SWF_FIELDS} fields, found {len(parts)}"
        )
    values = [float(p) for p in parts[:SWF_FIELDS]]
    (
        job_id,
        submit,
        wait,
        run_time,
        alloc_procs,
        avg_cpu,
        used_mem,
        req_procs,
        req_time,
        req_mem,
        status,
        user,
        group,
        executable,
        queue,
        partition,
        preceding,
        think,
    ) = values
    procs = int(req_procs) if req_procs > 0 else int(alloc_procs)
    if run_time <= 0 or procs <= 0:
        # Cancelled or broken records: the paper's evaluation (and standard
        # practice) drops them.
        return None
    return JobRecord(
        job_id=int(job_id),
        submit_time=max(0.0, submit),
        run_time=run_time,
        requested_time=req_time if req_time > 0 else run_time,
        requested_procs=procs,
        user_id=int(user) if user >= 0 else 0,
        group_id=int(group) if group >= 0 else 0,
        executable=int(executable) if executable >= 0 else 0,
        status=int(status),
        wait_time=wait,
        used_procs=int(alloc_procs),
        extra={
            "avg_cpu_time": avg_cpu,
            "used_memory": used_mem,
            "requested_memory": req_mem,
            "queue": queue,
            "partition": partition,
            "preceding_job": preceding,
            "think_time": think,
        },
    )


def iter_swf(
    source: Union[str, os.PathLike, TextIO],
    max_jobs: Optional[int] = None,
    header: Optional[Dict[str, Optional[int]]] = None,
) -> Iterator[JobRecord]:
    """Stream the job records of an SWF file, one at a time.

    Memory use is constant in the log length (one line and one record at a
    time), so arbitrarily large archive logs can be scanned without
    materialising a :class:`Workload`.  Dropped records (cancelled jobs,
    non-positive run time or processor count) are skipped exactly as
    :func:`read_swf` skips them, and ``max_jobs`` bounds the number of
    records *yielded*, matching ``read_swf``'s bound on records kept.

    ``header``, when given, is filled in place with the ``; MaxNodes: N`` /
    ``; MaxProcs: N`` directive values (keys ``"nodes"`` / ``"procs"``) as
    they are encountered; it is complete once iteration finishes.
    """
    close = False
    if isinstance(source, (str, os.PathLike)):
        fh: TextIO = open(source, "r", encoding="utf-8", errors="replace")
        close = True
    else:
        fh = source
    if header is None:
        header = {}
    yielded = 0
    try:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(";"):
                lowered = line.lower()
                if "maxnodes:" in lowered:
                    header["nodes"] = _header_int(line)
                elif "maxprocs:" in lowered:
                    header["procs"] = _header_int(line)
                continue
            record = _parse_line(line, lineno)
            if record is None:
                continue
            yield record
            yielded += 1
            if max_jobs is not None and yielded >= max_jobs:
                return
    finally:
        if close:
            fh.close()


def _infer_system_nodes(
    header: Dict[str, Optional[int]], cpus_per_node: int, max_procs: int
) -> int:
    """System size fallback chain: MaxNodes → MaxProcs → widest job."""
    header_nodes = header.get("nodes")
    header_procs = header.get("procs")
    if header_nodes:
        return header_nodes
    if header_procs:
        return max(1, header_procs // cpus_per_node)
    return max(1, -(-max_procs // cpus_per_node))


def read_swf(
    source: Union[str, os.PathLike, TextIO],
    name: Optional[str] = None,
    system_nodes: Optional[int] = None,
    cpus_per_node: int = 16,
    max_jobs: Optional[int] = None,
) -> Workload:
    """Read an SWF file (or file-like object) into a :class:`Workload`.

    Header directives of the form ``; MaxNodes: N`` and ``; MaxProcs: N``
    are honoured to infer the system size when ``system_nodes`` is not
    given.
    """
    if isinstance(source, (str, os.PathLike)):
        default_name = os.path.basename(os.fspath(source))
    else:
        default_name = "swf"
    header: Dict[str, Optional[int]] = {}
    records = list(iter_swf(source, max_jobs=max_jobs, header=header))
    if system_nodes is None:
        max_procs = max((r.requested_procs for r in records), default=cpus_per_node)
        system_nodes = _infer_system_nodes(header, cpus_per_node, max_procs)
    return Workload(
        name=name or default_name,
        records=records,
        system_nodes=system_nodes,
        cpus_per_node=cpus_per_node,
    )


def summarize_swf(
    source: Union[str, os.PathLike, TextIO],
    system_nodes: Optional[int] = None,
    cpus_per_node: int = 16,
    max_jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Summary statistics of an SWF log, computed in one streaming pass.

    Returns exactly the dictionary ``read_swf(...).describe()`` would —
    bit-identically, because the means/median run the same NumPy reductions
    over the same values in the same order — without ever materialising the
    record list.  State is a handful of scalar accumulators plus two
    chunked float buffers (node counts and runtimes, needed for the exact
    mean/median), so a 100k-line log summarises in ~1.6 MiB of buffer
    instead of 100k ``JobRecord`` objects with their extra-field dicts.
    """
    from repro.metrics.streaming import ChunkedFloatBuffer

    header: Dict[str, Optional[int]] = {}
    count = 0
    max_procs = 0
    first_submit = 0.0
    last_submit = 0.0
    work = 0.0
    nodes = ChunkedFloatBuffer()
    runtimes = ChunkedFloatBuffer()
    for record in iter_swf(source, max_jobs=max_jobs, header=header):
        if count == 0:
            first_submit = record.submit_time
        last_submit = record.submit_time
        count += 1
        nodes.append(float(record.requested_nodes(cpus_per_node)))
        runtimes.append(record.run_time)
        if record.requested_procs > max_procs:
            max_procs = record.requested_procs
        work += record.area()
    if count == 0:
        return {"jobs": 0}
    if system_nodes is None:
        system_nodes = _infer_system_nodes(
            header, cpus_per_node, max_procs or cpus_per_node
        )
    node_values = nodes.as_array()
    runtime_values = runtimes.as_array()
    span = last_submit - first_submit
    system_cpus = system_nodes * cpus_per_node
    return {
        "jobs": count,
        "system_nodes": system_nodes,
        "system_cpus": system_cpus,
        "max_job_nodes": int(np.max(node_values)),
        "max_job_cpus": max_procs,
        "mean_job_nodes": float(np.mean(node_values)),
        "mean_runtime": float(np.mean(runtime_values)),
        "median_runtime": float(np.median(runtime_values)),
        "span_seconds": span,
        "offered_load": work / (system_cpus * span) if span > 0 else 0.0,
    }


def _header_int(line: str) -> Optional[int]:
    try:
        return int(float(line.split(":", 1)[1].strip().split()[0]))
    except (IndexError, ValueError):
        return None


def _num(value: float) -> str:
    """Compact numeric field: integers without a decimal point, floats exact.

    ``repr`` round-trips floats exactly through the reader's ``float()``, so
    a write → read cycle preserves fractional times and memory figures.
    """
    v = float(value)
    return str(int(v)) if v.is_integer() else repr(v)


def write_swf(
    workload: Workload,
    target: Union[str, os.PathLike, TextIO],
    comments: Sequence[str] = (),
) -> None:
    """Write a workload to SWF (canonical 18-column format).

    The fields the reader preserves in :attr:`JobRecord.extra` — average
    CPU time, used memory, requested memory, queue, partition, preceding
    job, think time — are written back out, so a read → write round-trip is
    lossless for them (missing entries are written as the SWF "unknown"
    value, ``-1``).
    """
    close = False
    if isinstance(target, (str, os.PathLike)):
        fh: TextIO = open(target, "w", encoding="utf-8")
        close = True
    else:
        fh = target
    try:
        fh.write("; Generated by repro (SD-Policy reproduction)\n")
        fh.write(f"; MaxNodes: {workload.system_nodes}\n")
        fh.write(f"; MaxProcs: {workload.system_cpus}\n")
        for comment in comments:
            fh.write(f"; {comment}\n")
        for r in workload.records:
            fields = [
                r.job_id,
                _num(r.submit_time),
                _num(r.wait_time) if r.wait_time >= 0 else -1,
                _num(r.run_time),
                r.used_procs if r.used_procs > 0 else r.requested_procs,
                _num(r.extra.get("avg_cpu_time", -1)),
                _num(r.extra.get("used_memory", -1)),
                r.requested_procs,
                _num(r.requested_time),
                _num(r.extra.get("requested_memory", -1)),
                r.status,
                r.user_id,
                r.group_id,
                r.executable,
                _num(r.extra.get("queue", -1)),
                _num(r.extra.get("partition", -1)),
                _num(r.extra.get("preceding_job", -1)),
                _num(r.extra.get("think_time", -1)),
            ]
            fh.write(" ".join(str(f) for f in fields) + "\n")
    finally:
        if close:
            fh.close()
