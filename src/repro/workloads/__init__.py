"""Workload infrastructure.

* :mod:`repro.workloads.job_record` — the log-level job record (SWF fields)
  and the :class:`Workload` container that converts records into simulator
  jobs;
* :mod:`repro.workloads.swf` — Standard Workload Format parser/writer, so
  real Parallel Workloads Archive logs can be dropped in;
* :mod:`repro.workloads.distributions` — shared samplers (log-uniform,
  power-of-two sizes, daily-cycle arrivals);
* :mod:`repro.workloads.cirne` — reimplementation of the Cirne–Berman
  supercomputer workload model (paper workloads 1, 2 and 5);
* :mod:`repro.workloads.synthetic` — RICC-like and CEA-Curie-like synthetic
  log generators (paper workloads 3 and 4), used because the original logs
  cannot be redistributed / downloaded offline;
* :mod:`repro.workloads.scaling` — utilities to scale a workload to a target
  system size or subsample it;
* :mod:`repro.workloads.applications` — assignment of the Table 2
  application mix to a workload (for the real-run emulation);
* :mod:`repro.workloads.presets` — the five paper workloads with Table 1
  parameters, at full and benchmark-friendly reduced scale.
"""

from repro.workloads.applications import APPLICATION_MIX, assign_applications
from repro.workloads.cirne import CirneWorkloadModel
from repro.workloads.job_record import JobRecord, Workload
from repro.workloads.presets import (
    PAPER_WORKLOADS,
    WorkloadSpec,
    build_workload,
    workload_1,
    workload_2,
    workload_3,
    workload_4,
    workload_5,
)
from repro.workloads.scaling import scale_to_system, subsample
from repro.workloads.swf import iter_swf, read_swf, summarize_swf, write_swf
from repro.workloads.synthetic import CEACurieLikeModel, RICCLikeModel

__all__ = [
    "APPLICATION_MIX",
    "CEACurieLikeModel",
    "CirneWorkloadModel",
    "JobRecord",
    "PAPER_WORKLOADS",
    "RICCLikeModel",
    "Workload",
    "WorkloadSpec",
    "assign_applications",
    "build_workload",
    "iter_swf",
    "read_swf",
    "summarize_swf",
    "scale_to_system",
    "subsample",
    "workload_1",
    "workload_2",
    "workload_3",
    "workload_4",
    "workload_5",
    "write_swf",
]
