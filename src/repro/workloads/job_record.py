"""Log-level job records and the Workload container.

A :class:`JobRecord` mirrors one line of a Standard Workload Format (SWF)
log — what a scheduler sees in its accounting database.  A
:class:`Workload` is an ordered collection of records plus the description
of the system it targets; it converts records into simulator
:class:`repro.simulator.job.Job` objects and computes the summary statistics
reported in Table 1 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.simulator.job import Job


@dataclass
class JobRecord:
    """One job of a workload log (SWF semantics, seconds / processor counts).

    Only the fields the reproduction needs are first-class; the remaining
    SWF columns are preserved in :attr:`extra` when parsing real logs so
    they can be written back out unchanged.
    """

    job_id: int
    submit_time: float
    run_time: float
    requested_time: float
    requested_procs: int
    user_id: int = 0
    group_id: int = 0
    executable: int = 0
    status: int = 1
    wait_time: float = -1.0
    used_procs: int = -1
    application: Optional[str] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.run_time <= 0:
            raise ValueError(f"job {self.job_id}: run_time must be positive")
        if self.requested_time <= 0:
            raise ValueError(f"job {self.job_id}: requested_time must be positive")
        if self.requested_procs <= 0:
            raise ValueError(f"job {self.job_id}: requested_procs must be positive")
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: submit_time must be non-negative")

    def requested_nodes(self, cpus_per_node: int) -> int:
        """Whole nodes needed on a machine with the given node width."""
        return max(1, math.ceil(self.requested_procs / cpus_per_node))

    def area(self) -> float:
        """Processor-seconds of the job (run_time × requested processors)."""
        return self.run_time * self.requested_procs


@dataclass
class Workload:
    """An ordered collection of job records targeting a specific system."""

    name: str
    records: List[JobRecord]
    system_nodes: int
    cpus_per_node: int

    def __post_init__(self) -> None:
        self.records = sorted(self.records, key=lambda r: (r.submit_time, r.job_id))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.records)

    @property
    def system_cpus(self) -> int:
        """Total CPU count of the target system."""
        return self.system_nodes * self.cpus_per_node

    @property
    def span(self) -> float:
        """Time between the first and the last submission (seconds)."""
        if not self.records:
            return 0.0
        return self.records[-1].submit_time - self.records[0].submit_time

    @property
    def max_job_nodes(self) -> int:
        """Largest per-job node request in the workload."""
        if not self.records:
            return 0
        return max(r.requested_nodes(self.cpus_per_node) for r in self.records)

    def offered_load(self) -> float:
        """Total work divided by system capacity over the submission span.

        Values near (or above) 1.0 indicate a saturated system, which is the
        regime in which backfill and SD-Policy differences matter.
        """
        if not self.records or self.span <= 0:
            return 0.0
        work = sum(r.area() for r in self.records)
        return work / (self.system_cpus * self.span)

    # ------------------------------------------------------------------ #
    def iter_jobs(
        self,
        cpus_per_node: Optional[int] = None,
        malleable_fraction: float = 1.0,
        tasks_per_node: int = 1,
        seed: int = 0,
    ) -> Iterator[Job]:
        """Lazily convert the records into simulator jobs, in submit order.

        Yields exactly the jobs :meth:`to_jobs` would return, one at a time
        (one RNG draw per record, in record order, so the malleability
        assignment is identical for the same seed).  Suitable for
        :meth:`repro.simulator.simulation.Simulation.submit_stream`, which
        materialises jobs just before their submit instant.

        Parameters
        ----------
        cpus_per_node:
            Node width of the simulated cluster (defaults to the workload's
            own system description).
        malleable_fraction:
            Probability that a job is malleable (the paper's simulations use
            1.0; mixed workloads are supported by SD-Policy).
        tasks_per_node:
            MPI ranks per node assumed for the minimum-shrink constraint.
        seed:
            Seed for the malleability assignment when the fraction is < 1.
        """
        width = cpus_per_node or self.cpus_per_node
        if not 0.0 <= malleable_fraction <= 1.0:
            raise ValueError("malleable_fraction must be within [0, 1]")

        def generate() -> Iterator[Job]:
            rng = np.random.default_rng(seed)
            for record in self.records:
                malleable = bool(rng.random() < malleable_fraction)
                yield Job(
                    job_id=record.job_id,
                    submit_time=record.submit_time,
                    requested_nodes=record.requested_nodes(width),
                    requested_time=record.requested_time,
                    static_runtime=min(record.run_time, record.requested_time),
                    cpus_per_node=width,
                    malleable=malleable,
                    tasks_per_node=tasks_per_node,
                    user=record.user_id,
                    group=record.group_id,
                    application=record.application,
                )

        return generate()

    def to_jobs(
        self,
        cpus_per_node: Optional[int] = None,
        malleable_fraction: float = 1.0,
        tasks_per_node: int = 1,
        seed: int = 0,
    ) -> List[Job]:
        """Convert the records into simulator jobs (see :meth:`iter_jobs`)."""
        return list(
            self.iter_jobs(
                cpus_per_node=cpus_per_node,
                malleable_fraction=malleable_fraction,
                tasks_per_node=tasks_per_node,
                seed=seed,
            )
        )

    # ------------------------------------------------------------------ #
    def filter(self, predicate: Callable[[JobRecord], bool], name: Optional[str] = None) -> "Workload":
        """A new workload containing only the records matching the predicate."""
        return Workload(
            name=name or f"{self.name}[filtered]",
            records=[r for r in self.records if predicate(r)],
            system_nodes=self.system_nodes,
            cpus_per_node=self.cpus_per_node,
        )

    def head(self, count: int, name: Optional[str] = None) -> "Workload":
        """A new workload with only the first ``count`` records."""
        return Workload(
            name=name or f"{self.name}[:{count}]",
            records=[replace(r) for r in self.records[:count]],
            system_nodes=self.system_nodes,
            cpus_per_node=self.cpus_per_node,
        )

    def describe(self) -> Dict[str, float]:
        """Summary statistics in the spirit of Table 1."""
        if not self.records:
            return {"jobs": 0}
        nodes = [r.requested_nodes(self.cpus_per_node) for r in self.records]
        runtimes = [r.run_time for r in self.records]
        return {
            "jobs": len(self.records),
            "system_nodes": self.system_nodes,
            "system_cpus": self.system_cpus,
            "max_job_nodes": max(nodes),
            "max_job_cpus": max(r.requested_procs for r in self.records),
            "mean_job_nodes": float(np.mean(nodes)),
            "mean_runtime": float(np.mean(runtimes)),
            "median_runtime": float(np.median(runtimes)),
            "span_seconds": self.span,
            "offered_load": self.offered_load(),
        }
