"""Metrics: the quantities the paper's evaluation reports.

* :mod:`repro.metrics.aggregates` — makespan, average response time,
  average slowdown, average/percentile wait times (Section 4's metric
  definitions);
* :mod:`repro.metrics.heatmap` — the (requested nodes × runtime) category
  binning behind Figures 4–6;
* :mod:`repro.metrics.timeseries` — per-day average slowdown and per-day
  malleable-job counts (Figure 7);
* :mod:`repro.metrics.energy` — node power models and workload energy
  (Figure 9's energy metric).
"""

from repro.metrics.aggregates import (
    WorkloadMetrics,
    average_response_time,
    average_slowdown,
    average_wait_time,
    compute_metrics,
    makespan,
)
from repro.metrics.energy import LinearPowerModel, workload_energy
from repro.metrics.heatmap import CategoryGrid, category_heatmap, heatmap_ratio
from repro.metrics.streaming import ChunkedFloatBuffer, StreamingMetrics
from repro.metrics.timeseries import daily_malleable_counts, daily_slowdown

__all__ = [
    "CategoryGrid",
    "ChunkedFloatBuffer",
    "LinearPowerModel",
    "StreamingMetrics",
    "WorkloadMetrics",
    "average_response_time",
    "average_slowdown",
    "average_wait_time",
    "category_heatmap",
    "compute_metrics",
    "daily_malleable_counts",
    "daily_slowdown",
    "heatmap_ratio",
    "makespan",
    "workload_energy",
]
