"""Aggregate scheduling metrics (Section 4 of the paper).

The paper evaluates every experiment with four metrics:

* **Makespan** — last job end time minus first job arrival time.
* **Average response time** — mean of (end − submit) over all jobs.
* **Average slowdown** — mean of (response time / static execution time).
* **Energy consumption** — handled by :mod:`repro.metrics.energy`.

All functions work on plain sequences of completed
:class:`repro.simulator.job.Job` objects so they can be applied both to
simulation results and to the real-run emulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.simulator.job import Job


def _completed(jobs: Iterable[Job]) -> List[Job]:
    done = [j for j in jobs if j.end_time is not None]
    return done


def makespan(jobs: Iterable[Job], first_submit: Optional[float] = None) -> float:
    """Last end time minus the run's first arrival time (0 for an empty set).

    ``first_submit`` anchors the origin at the *run-level* first submission.
    Without it the origin falls back to the earliest submit among the
    completed jobs — which silently drifts late whenever the
    earliest-submitted job was dropped or never finished, disagreeing with
    :meth:`repro.simulator.simulation.Simulation.result`.  Pass the
    simulation's recorded first submit whenever it is available.
    """
    done = _completed(jobs)
    if not done:
        return 0.0
    origin = min(j.submit_time for j in done) if first_submit is None else first_submit
    last_end = max(j.end_time for j in done)
    return max(0.0, last_end - origin)


def average_response_time(jobs: Iterable[Job]) -> float:
    """Mean of end − submit over the completed jobs."""
    done = _completed(jobs)
    if not done:
        return 0.0
    return float(np.mean([j.response_time for j in done]))


def average_wait_time(jobs: Iterable[Job]) -> float:
    """Mean queue wait over the completed jobs."""
    done = _completed(jobs)
    if not done:
        return 0.0
    return float(np.mean([j.wait_time for j in done]))


def average_slowdown(jobs: Iterable[Job]) -> float:
    """Mean of response / static runtime over the completed jobs."""
    done = _completed(jobs)
    if not done:
        return 0.0
    return float(np.mean([j.slowdown for j in done]))


def average_bounded_slowdown(jobs: Iterable[Job], tau: float = 10.0) -> float:
    """Mean bounded slowdown (threshold ``tau``), for completeness."""
    done = _completed(jobs)
    if not done:
        return 0.0
    return float(np.mean([j.bounded_slowdown(tau) for j in done]))


@dataclass
class WorkloadMetrics:
    """All aggregate metrics of one run, plus a few useful extras."""

    num_jobs: int
    makespan: float
    avg_response_time: float
    avg_wait_time: float
    avg_slowdown: float
    avg_bounded_slowdown: float
    median_slowdown: float
    p95_slowdown: float
    avg_runtime: float
    malleable_scheduled: int
    mate_jobs: int
    energy_joules: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary form (used by the report/figure helpers)."""
        out = {
            "num_jobs": self.num_jobs,
            "makespan": self.makespan,
            "avg_response_time": self.avg_response_time,
            "avg_wait_time": self.avg_wait_time,
            "avg_slowdown": self.avg_slowdown,
            "avg_bounded_slowdown": self.avg_bounded_slowdown,
            "median_slowdown": self.median_slowdown,
            "p95_slowdown": self.p95_slowdown,
            "avg_runtime": self.avg_runtime,
            "malleable_scheduled": self.malleable_scheduled,
            "mate_jobs": self.mate_jobs,
            "energy_joules": self.energy_joules,
        }
        out.update(self.extra)
        return out


def compute_metrics(
    jobs: Iterable[Job],
    energy_joules: float = 0.0,
    first_submit: Optional[float] = None,
) -> WorkloadMetrics:
    """Compute the full :class:`WorkloadMetrics` for a set of completed jobs.

    One pass over the jobs collects every per-metric series and counter;
    the NumPy reductions then see the same values in the same order as the
    previous per-metric passes, so the outputs are bit-identical.
    ``first_submit`` anchors the makespan at the run-level first submission
    (see :func:`makespan`).
    """
    responses: List[float] = []
    waits: List[float] = []
    slowdowns_list: List[float] = []
    bounded: List[float] = []
    runtimes: List[float] = []
    malleable_scheduled = 0
    mate_jobs = 0
    min_submit = math.inf
    max_end = -math.inf
    for job in jobs:
        if job.end_time is None:
            continue
        responses.append(job.response_time)
        waits.append(job.wait_time)
        slowdowns_list.append(job.slowdown)
        bounded.append(job.bounded_slowdown(10.0))
        runtimes.append(job.actual_runtime)
        if job.scheduled_malleable:
            malleable_scheduled += 1
        if job.was_mate:
            mate_jobs += 1
        if job.submit_time < min_submit:
            min_submit = job.submit_time
        if job.end_time > max_end:
            max_end = job.end_time
    if not responses:
        return WorkloadMetrics(
            num_jobs=0,
            makespan=0.0,
            avg_response_time=0.0,
            avg_wait_time=0.0,
            avg_slowdown=0.0,
            avg_bounded_slowdown=0.0,
            median_slowdown=0.0,
            p95_slowdown=0.0,
            avg_runtime=0.0,
            malleable_scheduled=0,
            mate_jobs=0,
            energy_joules=energy_joules,
        )
    origin = min_submit if first_submit is None else first_submit
    slowdowns = np.asarray(slowdowns_list, dtype=np.float64)
    return WorkloadMetrics(
        num_jobs=len(responses),
        makespan=max(0.0, max_end - origin),
        avg_response_time=float(np.mean(responses)),
        avg_wait_time=float(np.mean(waits)),
        avg_slowdown=float(np.mean(slowdowns)),
        avg_bounded_slowdown=float(np.mean(bounded)),
        median_slowdown=float(np.median(slowdowns)),
        p95_slowdown=float(np.percentile(slowdowns, 95)),
        avg_runtime=float(np.mean(runtimes)),
        malleable_scheduled=malleable_scheduled,
        mate_jobs=mate_jobs,
        energy_joules=energy_joules,
    )
